"""Unit tests for the affine loop-nest IR."""

import pytest

from repro.loops.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Loop,
    LoopNest,
    const,
    var,
)


class TestAffineExpr:
    def test_var_builds_unit_coefficient(self):
        i = var("i")
        assert i.coeff("i") == 1
        assert i.constant == 0

    def test_const_has_no_indices(self):
        c = const(7)
        assert c.is_constant()
        assert c.constant == 7

    def test_addition_merges_coefficients(self):
        e = var("i") + var("i") + 3
        assert e.coeff("i") == 2
        assert e.constant == 3

    def test_subtraction(self):
        e = var("i") - var("j") - 1
        assert e.coeff("i") == 1
        assert e.coeff("j") == -1
        assert e.constant == -1

    def test_right_subtraction(self):
        e = 10 - var("i")
        assert e.coeff("i") == -1
        assert e.constant == 10

    def test_scalar_multiplication(self):
        e = 3 * (var("i") + 2)
        assert e.coeff("i") == 3
        assert e.constant == 6

    def test_multiplication_by_non_integer_rejected(self):
        with pytest.raises(TypeError):
            var("i") * 1.5

    def test_zero_coefficients_are_dropped(self):
        e = var("i") - var("i")
        assert e.is_constant()
        assert e.coeffs == ()

    def test_evaluate(self):
        e = 2 * var("i") - var("j") + 5
        assert e.evaluate({"i": 3, "j": 4}) == 7

    def test_row_extraction_respects_order(self):
        e = 2 * var("i") - var("j")
        assert e.row(("i", "j")) == (2, -1)
        assert e.row(("j", "i")) == (-1, 2)
        assert e.row(("i", "j", "k")) == (2, -1, 0)

    def test_coerce_int_and_str(self):
        assert AffineExpr.coerce(5).constant == 5
        assert AffineExpr.coerce("k").coeff("k") == 1
        with pytest.raises(TypeError):
            AffineExpr.coerce(3.14)

    def test_equality_and_hash(self):
        assert var("i") + 1 == var("i") + 1
        assert hash(var("i") + 1) == hash(var("i") + 1)
        assert var("i") != var("j")

    def test_str_rendering(self):
        assert str(var("i") - 1) == "i - 1"
        assert str(const(0)) == "0"


class TestArrayDecl:
    def test_size_and_strides_2d(self):
        a = ArrayDecl("a", (4, 8), element_size=2)
        assert a.size_elements == 32
        assert a.size_bytes == 64
        assert a.row_major_strides() == (8, 1)

    def test_strides_3d(self):
        a = ArrayDecl("a", (2, 3, 4))
        assert a.row_major_strides() == (12, 4, 1)

    def test_rank_1(self):
        a = ArrayDecl("v", (16,))
        assert a.rank == 1
        assert a.row_major_strides() == (1,)

    @pytest.mark.parametrize(
        "dims,element",
        [((), 1), ((0,), 1), ((-2, 4), 1), ((4,), 0), ((4,), -1)],
    )
    def test_invalid_declarations_rejected(self, dims, element):
        with pytest.raises(ValueError):
            ArrayDecl("a", dims, element)


class TestArrayRef:
    def test_indices_are_coerced(self):
        r = ArrayRef("a", ("i", 0))
        assert r.indices[0].coeff("i") == 1
        assert r.indices[1].is_constant()

    def test_linear_matrix_and_constants(self):
        i, j = var("i"), var("j")
        r = ArrayRef("a", (i - 1, 2 * j + 3))
        assert r.linear_matrix(("i", "j")) == ((1, 0), (0, 2))
        assert r.constant_vector() == (-1, 3)

    def test_evaluate(self):
        i, j = var("i"), var("j")
        r = ArrayRef("a", (i - 1, j + 1))
        assert r.evaluate({"i": 5, "j": 2}) == (4, 3)

    def test_str_marks_writes(self):
        r = ArrayRef("a", (var("i"),), is_write=True)
        assert "(write)" in str(r)


class TestLoop:
    def test_trip_count_inclusive(self):
        assert Loop("i", 1, 31).trip_count == 31
        assert Loop("i", 0, 0).trip_count == 1
        assert Loop("i", 0, 9, step=2).trip_count == 5

    def test_values(self):
        assert list(Loop("i", 1, 5, 2).values()) == [1, 3, 5]

    def test_empty_or_bad_loops_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 5, 4)
        with pytest.raises(ValueError):
            Loop("i", 0, 4, step=0)
        with pytest.raises(ValueError):
            Loop("i", 0, 4, step=-1)


class TestLoopNest:
    def _nest(self):
        i, j = var("i"), var("j")
        return LoopNest(
            name="t",
            loops=(Loop("i", 0, 3), Loop("j", 0, 4)),
            refs=(
                ArrayRef("a", (i, j)),
                ArrayRef("a", (i, j), is_write=True),
            ),
            arrays=(ArrayDecl("a", (4, 5)),),
        )

    def test_iterations_and_accesses(self):
        nest = self._nest()
        assert nest.iterations == 20
        assert nest.accesses == 40

    def test_reads_writes_split(self):
        nest = self._nest()
        assert len(nest.reads) == 1
        assert len(nest.writes) == 1

    def test_array_lookup(self):
        nest = self._nest()
        assert nest.array("a").dims == (4, 5)
        with pytest.raises(KeyError):
            nest.array("missing")

    def test_loop_lookup(self):
        nest = self._nest()
        assert nest.loop("j").upper == 4
        with pytest.raises(KeyError):
            nest.loop("k")

    def test_undeclared_array_rejected(self):
        with pytest.raises(ValueError, match="undeclared array"):
            LoopNest(
                name="bad",
                loops=(Loop("i", 0, 3),),
                refs=(ArrayRef("b", (var("i"),)),),
                arrays=(ArrayDecl("a", (4,)),),
            )

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            LoopNest(
                name="bad",
                loops=(Loop("i", 0, 3),),
                refs=(ArrayRef("a", (var("i"), var("i"))),),
                arrays=(ArrayDecl("a", (4,)),),
            )

    def test_unknown_index_rejected(self):
        with pytest.raises(ValueError, match="unknown indices"):
            LoopNest(
                name="bad",
                loops=(Loop("i", 0, 3),),
                refs=(ArrayRef("a", (var("k"),)),),
                arrays=(ArrayDecl("a", (4,)),),
            )

    def test_duplicate_loop_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LoopNest(
                name="bad",
                loops=(Loop("i", 0, 3), Loop("i", 0, 3)),
                refs=(),
                arrays=(),
            )

    def test_duplicate_arrays_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LoopNest(
                name="bad",
                loops=(Loop("i", 0, 3),),
                refs=(),
                arrays=(ArrayDecl("a", (4,)), ArrayDecl("a", (4,))),
            )

    def test_index_order_outermost_first(self):
        assert self._nest().index_order == ("i", "j")
