"""Multi-tenant hardening: quotas, fair share, deadlines, breakers.

The load-bearing claims:

* admission control is exact: a token bucket driven by a fake clock
  rejects with the precise seconds until the next token accrues (the
  429 ``Retry-After`` clients sleep on);
* dequeue is weighted fair share (deficit round-robin), so one tenant
  flooding the queue cannot starve another -- under a 10x overload the
  quiet tenant's p95 queue wait stays within 3x its uncontended value;
* an idle client banks no bandwidth: its DRR slot retires with its
  subqueue;
* deadlines cancel cooperatively and long-poll timeout arithmetic never
  goes negative;
* the circuit breaker walks closed -> open -> half-open -> closed
  deterministically under an injected clock.
"""

import threading
import time

import pytest

from repro.engine.resilience import CircuitBreaker, CircuitOpenError
from repro.serve import (
    ClientPolicy,
    JobManager,
    JobSpec,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    TenancyPolicy,
    TokenBucket,
    open_store,
)
from repro.serve.jobs import _DeadlineWatch
from repro.serve.tenancy import DEFAULT_CLIENT, validate_client_id


class FakeClock:
    """A settable monotonic clock shared by policy and manager."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _specs(count):
    """``count`` distinct job specs (distinct spec hashes, no coalescing)."""
    tilings = [(1,), (2,), (4,), (8,), (1, 2), (1, 4), (1, 8), (2, 4),
               (2, 8), (4, 8), (1, 2, 4), (1, 2, 8), (1, 4, 8), (2, 4, 8),
               (1, 2, 4, 8)]
    ways = [(1,), (2,), (4,), (1, 2), (1, 4), (2, 4), (1, 2, 4)]
    specs = []
    for w in ways:
        for t in tilings:
            specs.append(
                JobSpec(kernel="compress", max_size=32, min_size=16,
                        ways=w, tilings=t)
            )
            if len(specs) == count:
                return specs
    raise AssertionError(f"cannot make {count} distinct specs")


@pytest.fixture
def manager_factory(tmp_path):
    stores = []

    def build(tenancy=None, clock=None, max_depth=1000):
        store = open_store(str(tmp_path / f"t{len(stores)}.db"))
        stores.append(store)
        kwargs = {"max_depth": max_depth, "tenancy": tenancy}
        if clock is not None:
            kwargs["clock"] = clock
        return JobManager(store, **kwargs)

    yield build
    for store in stores:
        store.close()


class TestClientId:
    def test_none_maps_to_anonymous(self):
        assert validate_client_id(None) == DEFAULT_CLIENT

    def test_valid_ids_pass_through(self):
        assert validate_client_id("searcher-A_1") == "searcher-A_1"

    @pytest.mark.parametrize("bad", ["", "a b", "x" * 65, "sneaky/../id", 7])
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(ValueError, match="client_id"):
            validate_client_id(bad)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert bucket.acquire() > 0.0

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.acquire() == 0.0
        # The bucket is empty; the next token accrues in exactly 1/4 s.
        assert bucket.acquire() == pytest.approx(0.25)
        clock.advance(0.1)  # 0.4 tokens accrued
        assert bucket.acquire() == pytest.approx((1.0 - 0.4) / 4.0)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)


class TestPolicies:
    def test_default_policy_is_unlimited(self):
        policy = TenancyPolicy()
        policy.check_rate("anyone")
        policy.check_inflight("anyone", 10**6, 1.0)

    def test_rate_limit_carries_exact_retry_after(self):
        clock = FakeClock()
        policy = TenancyPolicy(
            default=ClientPolicy(rate=2.0, burst=1), clock=clock
        )
        policy.check_rate("a")
        with pytest.raises(RateLimitedError) as excinfo:
            policy.check_rate("a")
        assert excinfo.value.retry_after_s == pytest.approx(0.5)
        assert excinfo.value.client_id == "a"

    def test_buckets_are_per_client(self):
        clock = FakeClock()
        policy = TenancyPolicy(
            default=ClientPolicy(rate=1.0, burst=1), clock=clock
        )
        policy.check_rate("a")
        policy.check_rate("b")  # b has its own full bucket
        with pytest.raises(RateLimitedError):
            policy.check_rate("a")

    def test_inflight_quota(self):
        policy = TenancyPolicy(default=ClientPolicy(max_inflight=2))
        policy.check_inflight("a", 1, 3.0)
        with pytest.raises(QuotaExceededError) as excinfo:
            policy.check_inflight("a", 2, 3.0)
        assert excinfo.value.retry_after_s == 3.0

    def test_overrides_win(self):
        policy = TenancyPolicy(
            default=ClientPolicy(weight=1.0),
            overrides={"vip": ClientPolicy(weight=4.0)},
        )
        assert policy.weight("vip") == 4.0
        assert policy.weight("other") == 1.0

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="rate"):
            ClientPolicy(rate=-1.0)
        with pytest.raises(ValueError, match="weight"):
            ClientPolicy(weight=0.0)
        with pytest.raises(ValueError, match="max_inflight"):
            ClientPolicy(max_inflight=0)
        with pytest.raises(ValueError, match="client_id"):
            TenancyPolicy(overrides={"bad id": ClientPolicy()})


class TestAdmissionOrder:
    """Rejections that never admit a job must not debit the bucket."""

    def test_quota_rejection_spares_rate_budget(self, manager_factory):
        clock = FakeClock()
        tenancy = TenancyPolicy(
            default=ClientPolicy(rate=1.0, burst=1, max_inflight=1),
            clock=clock,
        )
        manager = manager_factory(tenancy=tenancy, clock=clock)
        specs = _specs(2)
        job, _ = manager.submit(specs[0], client_id="a")
        clock.advance(1.0)  # exactly one token banked
        with pytest.raises(QuotaExceededError):
            manager.submit(specs[1], client_id="a")
        # The rejection debited nothing: once the quota clears, the same
        # retry is admitted on the banked token, not rate-limited.
        manager.cancel(job.job_id)
        manager.submit(specs[1], client_id="a")

    def test_queue_full_rejection_spares_rate_budget(self, manager_factory):
        clock = FakeClock()
        tenancy = TenancyPolicy(
            default=ClientPolicy(rate=1.0, burst=1), clock=clock
        )
        manager = manager_factory(tenancy=tenancy, clock=clock, max_depth=1)
        specs = _specs(2)
        job, _ = manager.submit(specs[0], client_id="a")
        clock.advance(1.0)  # exactly one token banked
        with pytest.raises(QueueFullError):
            manager.submit(specs[1], client_id="a")
        manager.cancel(job.job_id)
        manager.submit(specs[1], client_id="a")


class TestFairShare:
    def test_equal_weights_interleave(self, manager_factory):
        manager = manager_factory()
        specs = _specs(8)
        for spec in specs[:4]:
            manager.submit(spec, client_id="a")
        for spec in specs[4:]:
            manager.submit(spec, client_id="b")
        order = [manager.next_job(timeout_s=0).client_id for _ in range(8)]
        # Strict alternation: neither client runs two in a row while the
        # other has queued work.
        assert order == ["a", "b"] * 4

    def test_weights_shape_the_ratio(self, manager_factory):
        tenancy = TenancyPolicy(
            overrides={"heavy": ClientPolicy(weight=2.0)}
        )
        manager = manager_factory(tenancy=tenancy)
        specs = _specs(30)
        for spec in specs[:15]:
            manager.submit(spec, client_id="heavy")
        for spec in specs[15:]:
            manager.submit(spec, client_id="light")
        first_nine = [
            manager.next_job(timeout_s=0).client_id for _ in range(9)
        ]
        # Weight 2 buys two dequeues per round-robin visit.
        assert first_nine.count("heavy") == 6
        assert first_nine.count("light") == 3

    def test_fractional_weight_accrues(self, manager_factory):
        tenancy = TenancyPolicy(
            overrides={"slow": ClientPolicy(weight=0.5)}
        )
        manager = manager_factory(tenancy=tenancy)
        specs = _specs(12)
        for spec in specs[:6]:
            manager.submit(spec, client_id="slow")
        for spec in specs[6:]:
            manager.submit(spec, client_id="fast")
        first_six = [
            manager.next_job(timeout_s=0).client_id for _ in range(6)
        ]
        # weight 0.5 needs two visits per job: fast gets 2 of every 3.
        assert first_six.count("fast") == 4
        assert first_six.count("slow") == 2

    def test_idle_client_banks_nothing(self, manager_factory):
        manager = manager_factory()
        specs = _specs(6)
        manager.submit(specs[0], client_id="a")
        assert manager.next_job(timeout_s=0).client_id == "a"
        # a's subqueue drained; its DRR slot (and credit) retired.
        for spec in specs[1:3]:
            manager.submit(spec, client_id="b")
        manager.submit(specs[3], client_id="a")
        order = [manager.next_job(timeout_s=0).client_id for _ in range(3)]
        # a returns with zero credit: it cannot jump b's queue twice.
        assert sorted(order) == ["a", "b", "b"]

    def test_priority_orders_within_a_client(self, manager_factory):
        manager = manager_factory()
        specs = _specs(2)
        manager.submit(specs[0], priority=10, client_id="a")
        urgent, _ = manager.submit(specs[1], priority=1, client_id="a")
        assert manager.next_job(timeout_s=0).job_id == urgent.job_id


class TestTwoClientOverload:
    """The acceptance scenario: A floods at 10x B's rate.

    B's p95 queue wait must stay within 3x its uncontended value, and
    A's excess submissions get 429s whose retry hints match the bucket
    arithmetic exactly.  Everything runs on a fake clock -- no sleeping,
    fully deterministic.
    """

    TICK = 0.1  # simulation step: the service drains one job per tick

    def _simulate(self, manager_factory, clock, manager, flood_specs,
                  quiet_specs):
        waits_b = []
        rejections = []
        flood = iter(flood_specs)
        quiet = iter(quiet_specs)
        for step in range(60):
            clock.now = step * self.TICK
            if flood_specs:
                for _ in range(10):  # A attempts 100 jobs/s
                    try:
                        spec = next(flood)
                    except StopIteration:
                        break
                    try:
                        manager.submit(spec, client_id="a")
                    except RateLimitedError as exc:
                        rejections.append(exc.retry_after_s)
            if step % 10 == 0:  # B submits 1 job/s
                try:
                    manager.submit(next(quiet), client_id="b")
                except StopIteration:
                    pass
            job = manager.next_job(timeout_s=0)
            if job is not None and job.client_id == "b":
                waits_b.append(job.started_s - job.submitted_s)
        return waits_b, rejections

    def _p95(self, waits):
        ordered = sorted(waits)
        return ordered[max(0, int(0.95 * len(ordered)) - 1)]

    def test_quiet_tenant_is_not_starved(self, manager_factory):
        specs = _specs(80)
        # Uncontended baseline: B alone.
        clock = FakeClock()
        manager = manager_factory(
            tenancy=TenancyPolicy(clock=clock), clock=clock
        )
        base_waits, _ = self._simulate(
            manager_factory, clock, manager, [], specs[:6]
        )
        # Contended: A floods 10x B's rate, capped at 5 jobs/s burst 5.
        clock2 = FakeClock()
        tenancy = TenancyPolicy(
            overrides={"a": ClientPolicy(rate=5.0, burst=5)}, clock=clock2
        )
        manager2 = manager_factory(tenancy=tenancy, clock=clock2)
        waits, rejections = self._simulate(
            manager_factory, clock2, manager2, specs[6:74], specs[74:]
        )
        assert len(waits) == len(base_waits) > 0
        floor = max(self._p95(base_waits), self.TICK)
        assert self._p95(waits) <= 3.0 * floor
        # A was actually throttled, and every hint is exact bucket math:
        # with rate 5/s the deficit is always under one token, so the
        # wait to the next token is positive and at most 0.2 s.
        assert rejections
        assert all(0.0 < hint <= 1.0 / 5.0 for hint in rejections)


class TestDeadlines:
    def test_expired_while_queued_cancels_at_claim(self, manager_factory):
        clock = FakeClock(start=100.0)
        manager = manager_factory(clock=clock)
        job, _ = manager.submit(_specs(1)[0], deadline_s=5.0)
        clock.advance(6.0)
        assert manager.next_job(timeout_s=0) is None
        assert job.state == "cancelled"
        assert "deadline" in job.error

    def test_deadline_must_be_positive(self, manager_factory):
        manager = manager_factory()
        with pytest.raises(ValueError, match="deadline_s"):
            manager.submit(_specs(1)[0], deadline_s=0.0)

    def test_coalesce_keeps_most_permissive_deadline(self, manager_factory):
        clock = FakeClock(start=100.0)
        manager = manager_factory(clock=clock)
        spec = _specs(1)[0]
        job, _ = manager.submit(spec, deadline_s=5.0)
        manager.submit(spec, deadline_s=30.0)
        assert job.deadline_s == 30.0
        manager.submit(spec)  # no deadline lifts it entirely
        assert job.deadline_s is None

    def test_coalesce_merges_absolute_expiries(self, manager_factory):
        clock = FakeClock(start=100.0)
        manager = manager_factory(clock=clock)
        spec = _specs(1)[0]
        job, _ = manager.submit(spec, deadline_s=60.0)
        clock.advance(50.0)
        # A joiner asking for 60s gets 60s from *now*: the merged expiry
        # is 210, not the original 160 -- its budget does not start at
        # the original submission.
        manager.submit(spec, deadline_s=60.0)
        assert job.deadline_at() == pytest.approx(210.0)
        # A shorter-budget joiner never shrinks the merged expiry.
        manager.submit(spec, deadline_s=1.0)
        assert job.deadline_at() == pytest.approx(210.0)

    def test_deadline_watch_stands_down_when_join_lifts(self, manager_factory):
        manager = manager_factory()
        spec = _specs(1)[0]
        job, _ = manager.submit(spec, deadline_s=0.2)
        claimed = manager.next_job(timeout_s=0)
        event = threading.Event()
        manager.attach_cancel_event(claimed, event)
        watch = _DeadlineWatch(
            event, lambda: manager.effective_deadline(claimed)
        )
        watch.arm()
        try:
            manager.submit(spec)  # coalesced join lifts the deadline
            time.sleep(0.5)
            # The fire re-read the (now absent) deadline and stood down
            # instead of cancelling the job.
            assert not event.is_set()
        finally:
            watch.stop()

    def test_deadline_watch_rearms_when_join_extends(self, manager_factory):
        manager = manager_factory()
        spec = _specs(1)[0]
        job, _ = manager.submit(spec, deadline_s=0.2)
        claimed = manager.next_job(timeout_s=0)
        event = threading.Event()
        manager.attach_cancel_event(claimed, event)
        watch = _DeadlineWatch(
            event, lambda: manager.effective_deadline(claimed)
        )
        watch.arm()
        try:
            manager.submit(spec, deadline_s=60.0)  # well past the test
            time.sleep(0.5)
            assert not event.is_set()
        finally:
            watch.stop()

    def test_deadline_watch_fires_on_expiry(self, manager_factory):
        manager = manager_factory()
        job, _ = manager.submit(_specs(1)[0], deadline_s=0.1)
        claimed = manager.next_job(timeout_s=0)
        event = threading.Event()
        manager.attach_cancel_event(claimed, event)
        watch = _DeadlineWatch(
            event, lambda: manager.effective_deadline(claimed)
        )
        watch.arm()
        try:
            assert event.wait(5.0)
        finally:
            watch.stop()

    def test_cancel_queued_job(self, manager_factory):
        manager = manager_factory()
        specs = _specs(2)
        job, _ = manager.submit(specs[0])
        manager.submit(specs[1])
        cancelled, changed = manager.cancel(job.job_id)
        assert changed and cancelled.state == "cancelled"
        # Idempotent; the other job is untouched and dequeues normally.
        assert manager.cancel(job.job_id) == (job, False)
        assert manager.next_job(timeout_s=0).spec == specs[1]
        assert manager.next_job(timeout_s=0) is None

    def test_cancel_running_job_sets_event(self, manager_factory):
        manager = manager_factory()
        job, _ = manager.submit(_specs(1)[0])
        claimed = manager.next_job(timeout_s=0)
        event = threading.Event()
        manager.attach_cancel_event(claimed, event)
        _, changed = manager.cancel(job.job_id)
        assert changed and event.is_set()
        assert job.state == "running"  # the sweep finalises cooperatively
        manager.cancelled(job, "cancelled by client")
        assert job.state == "cancelled"

    def test_cancel_before_event_attached_replays(self, manager_factory):
        manager = manager_factory()
        job, _ = manager.submit(_specs(1)[0])
        claimed = manager.next_job(timeout_s=0)
        manager.cancel(job.job_id)
        event = threading.Event()
        manager.attach_cancel_event(claimed, event)
        assert event.is_set()

    def test_unknown_job_cancel(self, manager_factory):
        assert manager_factory().cancel("nope") == (None, False)


class TestLongPollClamp:
    def test_expired_wait_deadline_returns_promptly(self, manager_factory):
        manager = manager_factory()
        job, _ = manager.submit(_specs(1)[0])
        # A zero timeout must clamp the Condition.wait argument at 0.0
        # (never negative) and return the non-terminal job immediately.
        assert manager.wait(job.job_id, timeout_s=0.0) is job
        assert manager.wait_change(job.job_id, job.version, 0.0) is job
        _, events = manager.events_since(job.job_id, len(job.history), 0.0)
        assert events == []


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            name="b", failure_threshold=3, cooldown_s=10.0, clock=clock
        )
        assert breaker.state == "closed"
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third strike opens it
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            name="b", failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # concurrent requests still fail fast
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            name="b", failure_threshold=2, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_failure()  # one probe failure re-opens
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_circuit_open_error_carries_retry_hint(self):
        error = CircuitOpenError("open", retry_after_s=7.5)
        assert error.retry_after_s == 7.5
        assert CircuitOpenError("open", retry_after_s=-1.0).retry_after_s == 0.0
