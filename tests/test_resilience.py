"""Fault tolerance for sweeps: retries, timeouts, checkpoint/resume.

The load-bearing claims:

* a sweep journaled to a checkpoint, killed at any point, and resumed
  produces a result table bit-identical to an uninterrupted run (the
  hypothesis property lives in ``test_chaos.py``; targeted kill points
  here);
* injected crashes, hard kills, hangs and corrupt payloads are absorbed
  by per-chunk retries/timeouts and never change the results;
* deterministic evaluator failures surface immediately as
  :class:`SweepChunkError` naming the failing configurations -- they are
  never retried into the whole-sweep serial fallback;
* every failure path is visible in the ``resilience.*`` /
  ``parallel.*`` counters.
"""

import json

import pytest

from repro.core.config import CacheConfig
from repro.engine import (
    CheckpointError,
    CheckpointMismatchError,
    Evaluator,
    FaultInjector,
    InjectedCrash,
    KernelWorkload,
    ParallelSweep,
    ResilienceOptions,
    RetryPolicy,
    SweepCheckpoint,
    SweepChunkError,
    load_checkpoint_estimates,
    order_configs,
    sweep_fingerprint,
)
from repro.engine.resilience import (
    CHECKPOINT_SCHEMA,
    estimate_from_json,
    estimate_to_json,
)
from repro.kernels import get_kernel, make_compress
from repro.obs.metrics import get_metrics

#: A quick retry policy so failure tests do not sleep for real.
FAST_RETRY = RetryPolicy(max_retries=3, backoff_base_s=0.001, backoff_cap_s=0.01)


def _counter(name):
    return get_metrics().counter(name).value


def _small_configs():
    return order_configs(
        CacheConfig(size, line, ways)
        for size in (32, 64, 128)
        for line in (4, 8)
        for ways in (1, 2)
    )


class _PoisonedEvaluator:
    """Raises deterministically on one configuration; picklable."""

    def __init__(self, kernel, poison):
        self.inner = Evaluator(KernelWorkload(kernel))
        self.poison = poison

    def evaluate(self, config):
        if config == self.poison:
            raise ValueError("poisoned configuration")
        return self.inner.evaluate(config)


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s(1, token=3) == policy.delay_s(1, token=3)
        assert policy.delay_s(1, token=3) != policy.delay_s(1, token=4)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.4, jitter=0.0
        )
        assert [policy.delay_s(a) for a in range(4)] == [
            0.1, 0.2, 0.4, 0.4,
        ]

    def test_jitter_bounded_by_base_delay(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        for token in range(20):
            assert 0.1 <= policy.delay_s(0, token) <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay_s(-1)


class TestResilienceOptions:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            ResilienceOptions(resume=True)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout"):
            ResilienceOptions(chunk_timeout_s=0.0)


class TestEstimateRoundTrip:
    def test_exact_through_json_text(self):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        estimate = evaluator.evaluate(CacheConfig(64, 8, 2, 2))
        assert estimate.energy_breakdown is not None
        doc = json.loads(json.dumps(estimate_to_json(estimate)))
        assert estimate_from_json(doc) == estimate

    def test_breakdown_none_round_trips(self):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        estimate = evaluator.evaluate(CacheConfig(32, 4))
        bare = estimate.__class__(
            **{**estimate.__dict__, "energy_breakdown": None}
        )
        doc = json.loads(json.dumps(estimate_to_json(bare)))
        assert estimate_from_json(doc) == bare


class TestSweepFingerprint:
    def test_stable_for_identical_sweeps(self):
        configs = _small_configs()
        first = Evaluator(KernelWorkload(make_compress(n=7)))
        second = Evaluator(KernelWorkload(make_compress(n=7)))
        assert sweep_fingerprint(first, configs) == sweep_fingerprint(
            second, configs
        )

    def test_sensitive_to_configs_backend_and_workload(self):
        configs = _small_configs()
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        base = sweep_fingerprint(evaluator, configs)
        assert sweep_fingerprint(evaluator, configs[:-1]) != base
        sampled = Evaluator(
            KernelWorkload(make_compress(n=7)), backend="sampled"
        )
        assert sweep_fingerprint(sampled, configs) != base
        other = Evaluator(KernelWorkload(make_compress(n=8)))
        assert sweep_fingerprint(other, configs) != base


class TestSweepCheckpoint:
    def test_missing_file_is_empty_resume(self, tmp_path):
        journal = SweepCheckpoint(str(tmp_path / "none.jsonl"))
        assert journal.load("anything") == {}

    def test_round_trip(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        pairs = [
            (index, evaluator.evaluate(config))
            for index, config in enumerate(configs[:4])
        ]
        fingerprint = sweep_fingerprint(evaluator, configs)
        path = str(tmp_path / "sweep.jsonl")
        with SweepCheckpoint(path) as journal:
            journal.open_for_append(fingerprint, fresh=True, configs=len(configs))
            journal.record_chunk(pairs[:2])
            journal.record_chunk(pairs[2:])
        assert SweepCheckpoint(path).load(fingerprint) == dict(pairs)

    def test_wrong_fingerprint_refused(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepCheckpoint(path) as journal:
            journal.open_for_append("aaaa", fresh=True, configs=1)
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            SweepCheckpoint(path).load("bbbb")

    def test_non_journal_file_refused(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text("just some text\n")
        with pytest.raises(CheckpointError, match=CHECKPOINT_SCHEMA):
            SweepCheckpoint(str(path)).load("aaaa")

    def test_newer_schema_refused_with_clear_error(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {"schema": "repro.checkpoint/2", "fingerprint": "aaaa", "configs": 4}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError, match="newer than"):
            SweepCheckpoint(str(path)).load("aaaa")
        with pytest.raises(CheckpointError, match="newer than"):
            load_checkpoint_estimates(str(path))

    def test_missing_fingerprint_refused_clearly(self, tmp_path):
        path = tmp_path / "anon.jsonl"
        header = {"schema": CHECKPOINT_SCHEMA, "configs": 4}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_checkpoint_estimates(str(path))

    def test_torn_trailing_line_tolerated(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        fingerprint = sweep_fingerprint(evaluator, configs)
        pairs = [(0, evaluator.evaluate(configs[0]))]
        path = str(tmp_path / "sweep.jsonl")
        with SweepCheckpoint(path) as journal:
            journal.open_for_append(fingerprint, fresh=True, configs=len(configs))
            journal.record_chunk(pairs)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": [[1, {"config": [64,')  # killed mid-write
        assert SweepCheckpoint(path).load(fingerprint) == dict(pairs)

    def test_record_requires_open(self, tmp_path):
        journal = SweepCheckpoint(str(tmp_path / "sweep.jsonl"))
        with pytest.raises(CheckpointError, match="not open"):
            journal.record_chunk([])

    def test_load_checkpoint_estimates(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        path = str(tmp_path / "sweep.jsonl")
        run = evaluator.sweep(
            configs=configs, resilience=ResilienceOptions(checkpoint=path)
        )
        assert load_checkpoint_estimates(path) == list(run.estimates)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint_estimates(str(tmp_path / "missing.jsonl"))


class TestCheckpointResume:
    """Killed-and-resumed sweeps are bit-identical to uninterrupted ones."""

    def _truncate(self, path, chunk_lines):
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[: 1 + chunk_lines]) + "\n")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_truncated_journal_resumes_identically(self, tmp_path, jobs):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _small_configs()
        clean = evaluator.sweep(configs=configs)
        path = str(tmp_path / "sweep.jsonl")
        journaled = evaluator.sweep(
            configs=configs,
            jobs=jobs,
            resilience=ResilienceOptions(checkpoint=path),
        )
        assert list(journaled.estimates) == list(clean.estimates)
        self._truncate(path, chunk_lines=2)
        before = _counter("resilience.resumed_configs")
        resumed = evaluator.sweep(
            configs=configs,
            jobs=jobs,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        )
        assert list(resumed.estimates) == list(clean.estimates)
        assert _counter("resilience.resumed_configs") > before

    def test_resume_across_different_job_counts(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _small_configs()
        clean = evaluator.sweep(configs=configs)
        path = str(tmp_path / "sweep.jsonl")
        evaluator.sweep(
            configs=configs, resilience=ResilienceOptions(checkpoint=path)
        )
        self._truncate(path, chunk_lines=1)
        resumed = evaluator.sweep(
            configs=configs,
            jobs=2,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        )
        assert list(resumed.estimates) == list(clean.estimates)

    def test_complete_journal_skips_all_evaluation(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        path = str(tmp_path / "sweep.jsonl")
        first = evaluator.sweep(
            configs=configs, resilience=ResilienceOptions(checkpoint=path)
        )
        before = _counter("resilience.resumed_configs")
        poisoned = _PoisonedEvaluator(make_compress(n=7), poison=None)
        poisoned.poison = configs[0]  # would raise if anything re-evaluated
        resumed = ParallelSweep(
            jobs=1,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        ).run(evaluator, configs)
        assert resumed == list(first.estimates)
        assert _counter("resilience.resumed_configs") - before == len(configs)

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        path = str(tmp_path / "sweep.jsonl")
        evaluator.sweep(
            configs=configs, resilience=ResilienceOptions(checkpoint=path)
        )
        evaluator.sweep(
            configs=configs[:4],
            resilience=ResilienceOptions(checkpoint=path),
        )
        assert len(load_checkpoint_estimates(path)) == 4

    def test_resume_refuses_foreign_journal(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        path = str(tmp_path / "sweep.jsonl")
        evaluator.sweep(
            configs=configs, resilience=ResilienceOptions(checkpoint=path)
        )
        with pytest.raises(CheckpointMismatchError):
            evaluator.sweep(
                configs=configs[:-2],
                resilience=ResilienceOptions(checkpoint=path, resume=True),
            )


class TestFaultInjector:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultInjector(crash_rate=1.5)
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultInjector(hang_seconds=-1.0)

    def test_draws_are_deterministic(self):
        first = FaultInjector(seed=3)
        second = FaultInjector(seed=3)
        assert first._draw("crash", 5, 0) == second._draw("crash", 5, 0)
        assert first._draw("crash", 5, 0) != first._draw("crash", 5, 1)

    def test_certain_crash_raises(self):
        with pytest.raises(InjectedCrash, match="injected crash"):
            FaultInjector(crash_rate=1.0).on_chunk_start(0, 0)

    def test_certain_corruption_mangles(self):
        injector = FaultInjector(corrupt_rate=1.0)
        assert injector.mangle_payload(0, 0, "payload") != "payload"
        assert FaultInjector().mangle_payload(0, 0, "payload") == "payload"


class TestFaultInjection:
    """Injected faults are absorbed; results never change."""

    def _clean(self):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _small_configs()
        return evaluator, configs, evaluator.sweep(configs=configs)

    def test_crashes_absorbed_in_parallel(self):
        evaluator, configs, clean = self._clean()
        before = _counter("resilience.chunk_failures")
        run = evaluator.sweep(
            configs=configs,
            jobs=2,
            resilience=ResilienceOptions(
                retry=FAST_RETRY,
                fault_injector=FaultInjector(seed=1, crash_rate=0.5),
            ),
        )
        assert list(run.estimates) == list(clean.estimates)
        assert _counter("resilience.chunk_failures") > before

    def test_corrupt_payloads_absorbed(self):
        evaluator, configs, clean = self._clean()
        before = _counter("resilience.chunk_failures")
        run = evaluator.sweep(
            configs=configs,
            jobs=2,
            resilience=ResilienceOptions(
                retry=FAST_RETRY,
                fault_injector=FaultInjector(seed=2, corrupt_rate=0.9),
            ),
        )
        assert list(run.estimates) == list(clean.estimates)
        assert _counter("resilience.chunk_failures") > before

    def test_hard_kills_absorbed(self):
        evaluator, configs, clean = self._clean()
        run = evaluator.sweep(
            configs=configs,
            jobs=2,
            resilience=ResilienceOptions(
                retry=RetryPolicy(
                    max_retries=5, backoff_base_s=0.001, backoff_cap_s=0.01
                ),
                fault_injector=FaultInjector(seed=3, kill_rate=0.3),
            ),
        )
        assert list(run.estimates) == list(clean.estimates)

    def test_hangs_time_out_and_degrade(self):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _small_configs()
        clean = evaluator.sweep(configs=configs)
        before = _counter("resilience.chunk_timeouts")
        run = evaluator.sweep(
            configs=configs,
            jobs=2,
            resilience=ResilienceOptions(
                chunk_timeout_s=0.5,
                retry=RetryPolicy(
                    max_retries=0, backoff_base_s=0.001, backoff_cap_s=0.01
                ),
                fault_injector=FaultInjector(
                    seed=4, hang_rate=0.4, hang_seconds=10.0
                ),
            ),
        )
        assert list(run.estimates) == list(clean.estimates)
        assert _counter("resilience.chunk_timeouts") > before

    def test_serial_injection_and_degradation(self):
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        clean = evaluator.sweep(configs=configs)
        before = _counter("resilience.degraded_chunks")
        run = evaluator.sweep(
            configs=configs,
            resilience=ResilienceOptions(
                retry=RetryPolicy(
                    max_retries=0, backoff_base_s=0.001, backoff_cap_s=0.01
                ),
                fault_injector=FaultInjector(seed=5, crash_rate=1.0),
            ),
        )
        assert list(run.estimates) == list(clean.estimates)
        assert _counter("resilience.degraded_chunks") > before

    def test_faults_never_reach_the_journal(self, tmp_path):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _small_configs()
        clean = evaluator.sweep(configs=configs)
        path = str(tmp_path / "sweep.jsonl")
        run = evaluator.sweep(
            configs=configs,
            jobs=2,
            resilience=ResilienceOptions(
                checkpoint=path,
                retry=FAST_RETRY,
                fault_injector=FaultInjector(seed=6, crash_rate=0.4),
            ),
        )
        assert list(run.estimates) == list(clean.estimates)
        assert load_checkpoint_estimates(path) == list(clean.estimates)


class TestDeterministicFailures:
    """Evaluator bugs are not transient: fail fast, name the configs."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_chunk_error_names_configs(self, jobs):
        configs = _small_configs()
        poison = configs[5]
        evaluator = _PoisonedEvaluator(get_kernel("compress"), poison)
        with pytest.raises(SweepChunkError, match="poisoned") as exc_info:
            ParallelSweep(
                jobs=jobs, resilience=ResilienceOptions(retry=FAST_RETRY)
            ).run(evaluator, configs)
        assert poison in exc_info.value.configs
        assert poison.label(full=True) in str(exc_info.value)

    def test_no_retries_burned_on_deterministic_failure(self):
        configs = _small_configs()
        evaluator = _PoisonedEvaluator(get_kernel("compress"), configs[0])
        before = _counter("resilience.chunk_retries")
        with pytest.raises(SweepChunkError):
            ParallelSweep(
                jobs=1, resilience=ResilienceOptions(retry=FAST_RETRY)
            ).run(evaluator, configs)
        assert _counter("resilience.chunk_retries") == before


class TestEnvironmentFallback:
    def test_no_pool_degrades_serially_and_journals(self, tmp_path, monkeypatch):
        import concurrent.futures

        def no_pool(*args, **kwargs):
            raise OSError("forking is disabled in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", no_pool
        )
        evaluator = Evaluator(KernelWorkload(make_compress(n=7)))
        configs = _small_configs()
        clean = [evaluator.evaluate(config) for config in configs]
        path = str(tmp_path / "sweep.jsonl")
        before = _counter("parallel.serial_fallbacks")
        run = ParallelSweep(
            jobs=4, resilience=ResilienceOptions(checkpoint=path)
        ).run(evaluator, configs)
        assert run == clean
        assert _counter("parallel.serial_fallbacks") == before + 1
        assert load_checkpoint_estimates(path) == clean


class TestCliResilienceFlags:
    def test_checkpoint_and_resume_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.jsonl")
        argv = [
            "explore", "compress", "--max-size", "32", "--min-size", "32",
            "--tilings", "1", "--checkpoint", path,
        ]
        assert main(argv + ["--max-retries", "1"]) == 0
        first = capsys.readouterr().out
        assert load_checkpoint_estimates(path)
        assert main(argv + ["--resume", "--chunk-timeout", "30"]) == 0
        assert capsys.readouterr().out == first

    def test_resume_without_checkpoint_rejected(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="checkpoint"):
            main([
                "explore", "compress", "--max-size", "32", "--min-size",
                "32", "--tilings", "1", "--resume",
            ])


class _CancellingEvaluator:
    """Sets a cancel event after ``after`` evaluations; delegates the rest."""

    def __init__(self, kernel, event, after):
        self.inner = Evaluator(KernelWorkload(kernel))
        self.event = event
        self.after = after
        self.count = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def evaluate(self, config):
        self.count += 1
        if self.count == self.after:
            self.event.set()
        return self.inner.evaluate(config)


class TestCooperativeCancellation:
    def test_pre_set_event_cancels_before_any_work(self, tmp_path):
        import threading

        from repro.engine.resilience import SweepCancelledError

        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _small_configs()
        path = str(tmp_path / "sweep.jsonl")
        event = threading.Event()
        event.set()
        before = _counter("resilience.sweeps_cancelled")
        with pytest.raises(SweepCancelledError) as excinfo:
            ParallelSweep(
                jobs=1,
                resilience=ResilienceOptions(
                    checkpoint=path, cancel_event=event
                ),
            ).run(evaluator, configs)
        assert excinfo.value.done == 0
        assert _counter("resilience.sweeps_cancelled") == before + 1

    def test_mid_sweep_cancel_keeps_journal_and_resumes(self, tmp_path):
        import threading

        from repro.engine.resilience import SweepCancelledError

        configs = _small_configs()
        clean = Evaluator(
            KernelWorkload(get_kernel("compress"))
        ).sweep(configs=configs)
        path = str(tmp_path / "sweep.jsonl")
        event = threading.Event()
        evaluator = _CancellingEvaluator(get_kernel("compress"), event, after=3)
        with pytest.raises(SweepCancelledError) as excinfo:
            ParallelSweep(
                jobs=1,
                chunk_size=2,
                resilience=ResilienceOptions(
                    checkpoint=path, cancel_event=event
                ),
            ).run(evaluator, configs)
        # The cooperative stop committed its finished chunks first.
        assert 0 < excinfo.value.done < len(configs)
        journaled = load_checkpoint_estimates(path)
        assert 0 < len(journaled) < len(configs)
        # Resuming the same journal without the event completes exactly.
        resumed = ParallelSweep(
            jobs=1,
            chunk_size=2,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        ).run(Evaluator(KernelWorkload(get_kernel("compress"))), configs)
        assert resumed == list(clean.estimates)


class TestBreakerInSweep:
    def test_deterministic_failures_trip_the_breaker(self):
        from repro.engine.resilience import CircuitBreaker

        configs = _small_configs()
        evaluator = _PoisonedEvaluator(get_kernel("compress"), configs[0])
        breaker = CircuitBreaker(name="t", failure_threshold=1, cooldown_s=60)
        with pytest.raises(SweepChunkError):
            ParallelSweep(
                jobs=1,
                resilience=ResilienceOptions(
                    retry=FAST_RETRY, breaker=breaker
                ),
            ).run(evaluator, configs)
        assert breaker.state == "open"

    def test_healthy_sweep_closes_the_breaker(self):
        from repro.engine.resilience import CircuitBreaker

        breaker = CircuitBreaker(name="t", failure_threshold=2, cooldown_s=60)
        breaker.record_failure()  # a stale strike from an earlier job
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        ParallelSweep(
            jobs=1, resilience=ResilienceOptions(breaker=breaker)
        ).run(evaluator, _small_configs()[:4])
        assert breaker.state == "closed"
        assert breaker._failures == 0
