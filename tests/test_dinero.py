"""Tests for Dinero ``din`` trace I/O."""

import io

import pytest

from repro.cache.dinero import read_din_trace, write_din_trace
from repro.cache.trace import MemoryTrace


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        trace = MemoryTrace([0, 255, 4096], [False, True, False])
        path = tmp_path / "trace.din"
        count = write_din_trace(trace, path)
        assert count == 3
        back = read_din_trace(path)
        assert back.addresses.tolist() == [0, 255, 4096]
        assert back.is_write.tolist() == [False, True, False]

    def test_string_io(self):
        buf = io.StringIO()
        write_din_trace(MemoryTrace([16], [True]), buf)
        assert buf.getvalue() == "1 10\n"


class TestReading:
    def test_hex_addresses(self):
        trace = read_din_trace(io.StringIO("0 ff\n1 100\n"))
        assert trace.addresses.tolist() == [255, 256]
        assert trace.is_write.tolist() == [False, True]

    def test_ifetch_skipped_by_default(self):
        src = "0 10\n2 20\n0 30\n"
        assert len(read_din_trace(io.StringIO(src))) == 2
        assert len(read_din_trace(io.StringIO(src), include_ifetch=True)) == 3

    def test_escape_labels_skipped(self):
        trace = read_din_trace(io.StringIO("0 10\n3 0\n4 0\n0 20\n"))
        assert len(trace) == 2

    def test_comments_and_blank_lines(self):
        trace = read_din_trace(io.StringIO("# header\n\n0 10 # inline\n"))
        assert trace.addresses.tolist() == [16]

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="din line 1"):
            read_din_trace(io.StringIO("0\n"))
        with pytest.raises(ValueError, match="din line 2"):
            read_din_trace(io.StringIO("0 10\n0 zz\n"))

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError, match="unknown label"):
            read_din_trace(io.StringIO("9 10\n"))

    def test_kernel_trace_round_trip(self, tmp_path, compress_small):
        trace = compress_small.trace()
        path = tmp_path / "compress.din"
        write_din_trace(trace, path)
        back = read_din_trace(path)
        assert back.addresses.tolist() == trace.addresses.tolist()
        assert back.is_write.tolist() == trace.is_write.tolist()
