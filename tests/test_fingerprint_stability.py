"""Byte-identity of fingerprints and store keys across the registry refactor.

The golden values in ``tests/data/golden_fingerprints.json`` and the
``repro.store/1`` database in ``tests/data/prerefactor_store.db`` were
captured from the code *before* components resolved through
:mod:`repro.registry`.  These tests recompute every fingerprint family --
evaluator fingerprints, job spec hashes, sweep fingerprints, store config
keys -- and read the old database back, asserting nothing moved: a drift
here orphans every estimate a fleet has ever stored and invalidates every
checkpoint journal.
"""

import json
import os
import shutil
import sqlite3

import pytest

from repro.core.config import CacheConfig
from repro.energy.kamble_ghose import KambleGhoseModel
from repro.energy.model import EnergyModel
from repro.energy.params import SRAM_CATALOG
from repro.engine.evaluator import Evaluator
from repro.engine.resilience import estimate_to_json, sweep_fingerprint
from repro.engine.workload import KernelWorkload
from repro.kernels import get_kernel
from repro.serve.jobs import JobSpec
from repro.serve.store import (
    STORE_SCHEMA,
    ResultStore,
    config_key,
    evaluator_fingerprint,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

with open(os.path.join(DATA_DIR, "golden_fingerprints.json")) as _fh:
    GOLDEN = json.load(_fh)


@pytest.mark.parametrize("kernel", ["compress", "matmul", "mpeg:idct"])
@pytest.mark.parametrize(
    "backend", ["fastsim", "reference", "sampled", "analytic"]
)
def test_evaluator_fingerprints_unchanged(kernel, backend):
    evaluator = Evaluator(KernelWorkload(get_kernel(kernel)), backend=backend)
    assert (
        evaluator_fingerprint(evaluator) == GOLDEN[f"eval:{kernel}:{backend}"]
    )


def test_energy_model_variant_fingerprint_unchanged():
    evaluator = Evaluator(
        KernelWorkload(get_kernel("compress")),
        energy_model=EnergyModel(sram=SRAM_CATALOG["16Mbit"]),
    )
    assert (
        evaluator_fingerprint(evaluator) == GOLDEN["eval:compress:fastsim:16Mbit"]
    )


def test_job_spec_hashes_unchanged():
    spec = JobSpec(kernel="compress", max_size=64, min_size=16, tilings=(1,))
    assert spec.spec_hash == GOLDEN["spec_hash:compress-64"]
    assert spec.eval_id() == GOLDEN["eval_id:compress-64"]
    spec2 = JobSpec(kernel="matmul", backend="sampled", ways=(1, 2),
                    sram="16Mbit")
    assert spec2.spec_hash == GOLDEN["spec_hash:matmul-sampled"]
    assert spec2.eval_id() == GOLDEN["eval_id:matmul-sampled"]


def test_sweep_fingerprints_and_config_keys_unchanged():
    spec = JobSpec(kernel="compress", max_size=64, min_size=16, tilings=(1,))
    configs = spec.configs()
    assert [config_key(c) for c in configs] == GOLDEN["config_keys:compress-64"]
    assert (
        sweep_fingerprint(spec.build_evaluator(), configs)
        == GOLDEN["sweep:compress-64"]
    )
    spec2 = JobSpec(kernel="matmul", backend="sampled", ways=(1, 2),
                    sram="16Mbit")
    assert (
        sweep_fingerprint(spec2.build_evaluator(), spec2.configs())
        == GOLDEN["sweep:matmul-sampled"]
    )


def test_kamble_ghose_never_shares_rows_with_paper_model():
    """Regression: subclass models must not collide with the base model.

    ``KambleGhoseModel`` changes ``E_cell`` without changing any of the
    constants the fingerprint hashes, so before the class qualifier was
    added it shared store rows with ``EnergyModel`` -- store poisoning the
    moment the CLI exposed ``--energy-model``.  The base model's
    fingerprint must stay golden at the same time.
    """
    base = Evaluator(KernelWorkload(get_kernel("compress")))
    kg = Evaluator(
        KernelWorkload(get_kernel("compress")),
        energy_model=KambleGhoseModel(),
    )
    assert evaluator_fingerprint(base) == GOLDEN["eval:compress:fastsim"]
    assert evaluator_fingerprint(kg) != evaluator_fingerprint(base)


@pytest.fixture
def prerefactor_store(tmp_path):
    """A copy of the committed pre-refactor store (never open the original:

    opening adds the ``manifests`` table in place, and the fixture must
    stay byte-for-byte what the old code wrote)."""
    path = tmp_path / "prerefactor_store.db"
    shutil.copyfile(os.path.join(DATA_DIR, "prerefactor_store.db"), path)
    return str(path)


def test_prerefactor_store_reads_back_unchanged(prerefactor_store):
    with open(os.path.join(DATA_DIR, "prerefactor_store_rows.json")) as fh:
        golden_rows = json.load(fh)
    spec = JobSpec(kernel="compress", max_size=64, min_size=16, tilings=(1,))
    configs = spec.configs()
    with ResultStore(prerefactor_store) as store:
        # Same schema tag: the old database opens without migration fuss.
        result = store.result_for(golden_rows["eval_id"], configs)
        assert result is not None, "pre-refactor rows not found under new keys"
        assert [estimate_to_json(e) for e in result] == golden_rows["estimates"]
        # The spec's newly computed eval_id must address the same rows.
        assert spec.eval_id() == golden_rows["eval_id"]
        assert store.count(spec.eval_id()) == len(configs)


def test_prerefactor_store_schema_tag_not_bumped(prerefactor_store):
    with ResultStore(prerefactor_store):
        pass
    conn = sqlite3.connect(prerefactor_store)
    try:
        (tag,) = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
    finally:
        conn.close()
    assert tag == STORE_SCHEMA == "repro.store/1"
    assert "manifests" in tables  # gained in place, no schema bump


def test_prerefactor_store_accepts_manifests_in_place(prerefactor_store):
    doc = {"schema": "repro.manifest/1", "plugins": []}
    with ResultStore(prerefactor_store) as store:
        assert store.load_manifest("job-1") is None
        store.save_manifest("job-1", doc)
        assert store.load_manifest("job-1") == doc


def test_committed_fixture_untouched_by_suite():
    """The committed DB must never gain the manifests table from a test run."""
    conn = sqlite3.connect(
        "file:" + os.path.join(DATA_DIR, "prerefactor_store.db") + "?mode=ro",
        uri=True,
    )
    try:
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
    finally:
        conn.close()
    assert tables == {"meta", "estimates", "jobs"}


def test_fresh_estimates_match_prerefactor_rows(prerefactor_store):
    """Recomputing one config through today's pipeline hits the old row.

    The store's first-writer-wins semantics only hold if a freshly
    computed estimate is bit-identical to the stored one; spot-check the
    first configuration end to end.
    """
    spec = JobSpec(kernel="compress", max_size=64, min_size=16, tilings=(1,))
    config = spec.configs()[0]
    assert config == CacheConfig(16, 4, 1, 1)
    fresh = spec.build_evaluator().evaluate(config)
    with ResultStore(prerefactor_store) as store:
        stored = store.get(spec.eval_id(), config)
    assert stored is not None
    assert estimate_to_json(fresh) == estimate_to_json(stored)
