"""Tests for the next-line prefetcher."""

import pytest

from repro.cache.prefetch import PrefetchCache
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.trace import MemoryTrace
from repro.kernels import make_compress


def geometry():
    return CacheGeometry(64, 8, 2)


class TestBasics:
    def test_sequential_stream_mostly_prefetch_hits(self):
        """Stride-1 sweep: after the first miss, the chain stays ahead."""
        trace = MemoryTrace(list(range(0, 512)))
        stats = PrefetchCache(geometry()).run(trace)
        baseline = CacheSimulator(geometry()).run(trace)
        assert stats.demand_misses < baseline.misses / 10
        assert stats.accuracy > 0.9

    def test_random_stream_gains_nothing(self):
        import numpy as np

        rng = np.random.default_rng(9)
        trace = MemoryTrace(rng.integers(0, 4096, size=800) * 8)
        stats = PrefetchCache(geometry()).run(trace)
        baseline = CacheSimulator(geometry()).run(trace)
        # No sequential structure: miss rate close to the plain cache.
        assert stats.miss_rate > baseline.miss_rate * 0.8
        assert stats.accuracy < 0.3

    def test_counters_consistent(self):
        trace = MemoryTrace(list(range(0, 256, 4)))
        stats = PrefetchCache(geometry()).run(trace)
        assert stats.demand_hits + stats.demand_misses == stats.accesses
        assert stats.prefetches_used <= stats.prefetches_issued
        assert stats.memory_fetches >= stats.demand_misses

    def test_degree_two_fetches_further_ahead(self):
        trace = MemoryTrace(list(range(0, 512)))
        one = PrefetchCache(geometry(), degree=1).run(trace)
        two = PrefetchCache(geometry(), degree=2).run(trace)
        assert two.demand_misses <= one.demand_misses

    def test_reset(self):
        cache = PrefetchCache(geometry())
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchCache(geometry(), degree=0)


class TestOnKernels:
    def test_prefetch_beats_plain_cache_on_streaming_kernel(self):
        """The gap the paper's levers leave: compulsory misses of the
        streaming sweeps, removed by sequential prefetch."""
        kernel = make_compress()
        layout = kernel.optimized_layout(64, 8).layout
        trace = kernel.trace(layout=layout)
        geo = CacheGeometry(64, 8, 1)
        plain = CacheSimulator(geo).run(trace)
        prefetched = PrefetchCache(geo).run(trace)
        assert prefetched.miss_rate < plain.miss_rate / 2

    def test_prefetch_traffic_accounted(self):
        kernel = make_compress()
        trace = kernel.trace()
        stats = PrefetchCache(CacheGeometry(64, 8, 1)).run(trace)
        # Every line still comes from memory exactly once-ish: fetches are
        # bounded below by the unique lines touched.
        assert stats.memory_fetches >= trace.unique_lines(8)
