"""Tests for the tornado sensitivity analysis."""

import pytest

from repro.core.config import CacheConfig
from repro.core.sensitivity import ParameterSweep, tornado
from repro.energy.model import EnergyModel
from repro.energy.params import SRAMPart
from repro.kernels import make_compress

GRID = [CacheConfig(t, l) for t in (16, 64, 256) for l in (4, 16) if l <= t]


@pytest.fixture(scope="module")
def rows():
    return tornado(make_compress(n=7), GRID)


class TestTornado:
    def test_one_row_per_default_parameter(self, rows):
        names = {r.parameter for r in rows}
        assert names == {
            "Em (main memory)",
            "beta (cell array)",
            "gamma (I/O pads)",
            "alpha (decoder)",
            "data-bus activity",
        }

    def test_sorted_by_swing(self, rows):
        swings = [abs(r.swing) for r in rows]
        assert swings == sorted(swings, reverse=True)

    def test_energy_monotone_in_every_parameter(self, rows):
        """All default parameters are pure costs: doubling them cannot
        lower the energy of a fixed configuration."""
        for row in rows:
            assert row.low_energy <= row.nominal_energy + 1e-6, row.parameter
            assert row.high_energy >= row.nominal_energy - 1e-6, row.parameter

    def test_dominant_parameters(self, rows):
        """Em and the cell-array constant carry the model; the decoder
        term is noise -- the paper's own prioritisation."""
        by_name = {r.parameter: abs(r.swing) for r in rows}
        assert by_name["alpha (decoder)"] < 0.01
        assert by_name["Em (main memory)"] > by_name["alpha (decoder)"]
        assert by_name["beta (cell array)"] > by_name["alpha (decoder)"]

    def test_custom_sweep(self):
        def build(factor):
            part = SRAMPart("x", 1024, 4.95 * factor)
            return EnergyModel(sram=part)

        rows = tornado(
            make_compress(n=7),
            GRID,
            sweeps=[ParameterSweep("custom-em", build)],
        )
        assert len(rows) == 1
        assert rows[0].parameter == "custom-em"
        assert rows[0].swing > 0

    def test_band_validation(self):
        with pytest.raises(ValueError):
            tornado(make_compress(n=7), GRID, band=(1.5, 2.0))
