"""Tests for loop normalization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import make_compress, make_matadd, make_matmul
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.normalize import is_normalized, normalize
from repro.loops.trace_gen import generate_trace


class TestIsNormalized:
    def test_matadd_already_normalized(self):
        assert is_normalized(make_matadd().nest)

    def test_compress_is_not(self):
        assert not is_normalized(make_compress().nest)  # starts at 1


class TestNormalize:
    def test_idempotent_on_normalized(self):
        nest = make_matadd().nest
        assert normalize(nest) is nest

    def test_loops_become_zero_based_unit_step(self):
        normalized = normalize(make_compress().nest)
        assert is_normalized(normalized)
        assert normalized.loops[0].trip_count == 31

    @pytest.mark.parametrize("make", [make_compress, make_matmul])
    def test_trace_preserved(self, make):
        nest = make().nest
        normalized = normalize(nest)
        assert (
            generate_trace(normalized).addresses.tolist()
            == generate_trace(nest).addresses.tolist()
        )

    def test_strided_loop(self):
        i = var("i")
        nest = LoopNest(
            name="strided",
            loops=(Loop("i", 2, 10, 2),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (11,)),),
        )
        normalized = normalize(nest)
        assert is_normalized(normalized)
        assert normalized.loops[0].trip_count == 5
        # a[i] with i in {2,4,...,10} becomes a[2*i' + 2].
        assert (
            generate_trace(normalized).addresses.tolist()
            == [2, 4, 6, 8, 10]
        )

    def test_iterations_preserved(self):
        nest = make_compress().nest
        assert normalize(nest).iterations == nest.iterations

    @given(
        lower=st.integers(0, 5),
        extent=st.integers(1, 8),
        step=st.integers(1, 3),
        coeff=st.integers(1, 2),
        offset=st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_1d_nests_preserved(self, lower, extent, step, coeff, offset):
        i = var("i")
        upper = lower + (extent - 1) * step
        size = coeff * upper + offset + 1
        nest = LoopNest(
            name="rand",
            loops=(Loop("i", lower, upper, step),),
            refs=(ArrayRef("a", (coeff * i + offset,)),),
            arrays=(ArrayDecl("a", (size,)),),
        )
        normalized = normalize(nest)
        assert is_normalized(normalized)
        assert (
            generate_trace(normalized).addresses.tolist()
            == generate_trace(nest).addresses.tolist()
        )
