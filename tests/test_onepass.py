"""The one-pass (stack-filter) backend and its grouped evaluation path.

The load-bearing claims:

* :func:`repro.cache.stackdist.grid_miss_counts` matches
  :func:`repro.cache.fastsim.fast_miss_vector` *exactly* -- miss counts
  and read-miss counts -- for every (sets, ways) point on randomized
  traces, including non-power-of-two set counts and ways past the
  working-set size (hypothesis property, the ISSUE's oracle requirement);
* :func:`repro.cache.stackdist.set_local_distances` degenerates to the
  classic fully-associative stack distances at one set;
* :class:`~repro.engine.backends.OnePassBackend` measurements equal
  ``fastsim`` measurements field for field, through ``measure`` and
  ``measure_grid`` alike;
* grouped evaluation (``evaluate_batch``, the serial sweep fast path,
  ``ParallelSweep`` chunks) produces sweep tables byte-identical to
  per-config evaluation, including through checkpoint/resume journals
  and the serve layer's persistent store;
* :meth:`EvalCache.miss_many` fills and hits the same entries as
  per-key :meth:`EvalCache.miss` calls, with the same counter semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.distance import COLD, stack_distances
from repro.cache.fastsim import fast_miss_vector
from repro.cache.stackdist import (
    GridCounts,
    grid_miss_counts,
    set_local_distances,
)
from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig
from repro.engine import (
    EvalCache,
    Evaluator,
    KernelWorkload,
    ParallelSweep,
    ResilienceOptions,
    TraceWorkload,
    get_backend,
)
from repro.engine.backends import FastSimBackend, OnePassBackend
from repro.kernels import get_kernel
from repro.obs.metrics import get_metrics


@st.composite
def line_traces(draw, max_len=200, max_line=64):
    """Raw line-id streams with a write mask (no address decoding)."""
    n = draw(st.integers(0, max_len))
    lines = draw(st.lists(st.integers(0, max_line), min_size=n, max_size=n))
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return np.asarray(lines, dtype=np.int64), np.asarray(writes, dtype=bool)


@st.composite
def traces(draw, max_len=160):
    n = draw(st.integers(1, max_len))
    addresses = draw(st.lists(st.integers(0, 2047), min_size=n, max_size=n))
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return MemoryTrace(addresses, writes)


# The full grid the equivalence property sweeps: every (sets, ways)
# combination, including sets the bit-selection hash cannot produce
# (non-powers of two) and ways past any plausible working set.
GRID_POINTS = [
    (num_sets, ways)
    for num_sets in (1, 2, 3, 4, 5, 8, 16)
    for ways in (1, 2, 3, 4, 8, 13)
]


class TestGridMissCounts:
    @given(data=line_traces())
    @settings(max_examples=120, deadline=None)
    def test_matches_fastsim_everywhere(self, data):
        line_ids, is_write = data
        results = grid_miss_counts(line_ids, is_write, GRID_POINTS)
        assert set(results) == set(GRID_POINTS)
        reads = int((~is_write).sum())
        for (num_sets, ways), counts in results.items():
            miss = fast_miss_vector(line_ids, num_sets, ways)
            assert counts.accesses == line_ids.size
            assert counts.reads == reads
            assert counts.misses == int(miss.sum())
            assert counts.read_misses == int((miss & ~is_write).sum())

    def test_empty_trace(self):
        empty = np.zeros(0, dtype=np.int64)
        results = grid_miss_counts(empty, empty.astype(bool), [(4, 2)])
        assert results[(4, 2)] == GridCounts(0, 0, 0, 0)

    def test_duplicate_points_collapse(self):
        line_ids = np.array([0, 1, 0, 2, 0], dtype=np.int64)
        is_write = np.zeros(5, dtype=bool)
        results = grid_miss_counts(line_ids, is_write, [(2, 2), (2, 2)])
        assert len(results) == 1

    def test_rejects_bad_points_and_shapes(self):
        line_ids = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="positive"):
            grid_miss_counts(line_ids, np.zeros(2, bool), [(0, 1)])
        with pytest.raises(ValueError, match="positive"):
            grid_miss_counts(line_ids, np.zeros(2, bool), [(1, 0)])
        with pytest.raises(ValueError, match="same length"):
            grid_miss_counts(line_ids, np.zeros(3, bool), [(1, 1)])


class TestSetLocalDistances:
    @given(data=line_traces())
    @settings(max_examples=60, deadline=None)
    def test_one_set_is_classic_stack_distance(self, data):
        line_ids, _ = data
        assert np.array_equal(
            set_local_distances(line_ids, 1), stack_distances(line_ids)
        )

    @given(data=line_traces(), num_sets=st.sampled_from([1, 2, 3, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_distances_price_every_associativity(self, data, num_sets):
        line_ids, _ = data
        distances = set_local_distances(line_ids, num_sets)
        for ways in (1, 2, 4, 8):
            miss = fast_miss_vector(line_ids, num_sets, ways)
            derived = (distances == COLD) | (distances > ways)
            assert np.array_equal(miss, derived)

    def test_known_example(self):
        # C D A B C A, one set: C comes back at depth 4, A at depth 3.
        lines = np.array([2, 3, 0, 1, 2, 0], dtype=np.int64)
        expected = np.array([COLD, COLD, COLD, COLD, 4, 3], dtype=np.int64)
        assert np.array_equal(set_local_distances(lines, 1), expected)


def _grid_configs(line_size=8, ways=(1, 2, 4, 8), sets=(1, 2, 4, 8)):
    return [
        CacheConfig(line_size * w * s, line_size, w)
        for w in ways
        for s in sets
    ]


class TestOnePassBackend:
    @given(trace=traces())
    @settings(max_examples=60, deadline=None)
    def test_measure_grid_equals_fastsim(self, trace):
        configs = _grid_configs()
        measured = OnePassBackend().measure_grid(trace, configs)
        fast = FastSimBackend()
        for config in configs:
            assert measured[config] == fast.measure(trace, config)

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_single_measure_equals_fastsim(self, trace):
        config = CacheConfig(64, 8, 2)
        assert OnePassBackend().measure(trace, config) == FastSimBackend(
        ).measure(trace, config)

    def test_grid_rejects_mixed_line_sizes(self):
        trace = MemoryTrace([0, 8, 16])
        with pytest.raises(ValueError, match="line size"):
            OnePassBackend().measure_grid(
                trace, [CacheConfig(64, 8), CacheConfig(64, 4)]
            )

    def test_empty_grid(self):
        assert OnePassBackend().measure_grid(MemoryTrace([0]), []) == {}

    def test_emits_pass_counters(self):
        metrics = get_metrics()
        passes = metrics.counter("onepass.passes").value
        measured = metrics.counter("onepass.configs_measured").value
        OnePassBackend().measure_grid(
            MemoryTrace(range(0, 256, 4)), _grid_configs()
        )
        assert metrics.counter("onepass.passes").value == passes + 1
        assert (
            metrics.counter("onepass.configs_measured").value
            == measured + len(_grid_configs())
        )

    def test_auto_is_the_onepass_backend(self):
        backend = get_backend("auto")
        assert isinstance(backend, OnePassBackend)
        assert backend.name == "onepass"
        assert backend.provides_grid and not backend.provides_vector


class TestEvalCacheMissMany:
    def test_builder_sees_only_missing_keys(self):
        cache = EvalCache()
        cache.miss("a", lambda: 1)
        seen = []

        def build(missing):
            seen.extend(missing)
            return {key: ord(key) for key in missing}

        table = cache.miss_many(["a", "b", "c"], build)
        assert table == {"a": 1, "b": ord("b"), "c": ord("c")}
        assert seen == ["b", "c"]

    def test_counters_match_per_key_semantics(self):
        cache = EvalCache()
        cache.miss_many(["x", "y"], lambda keys: {k: k for k in keys})
        stats = cache.stats()
        assert stats.miss_misses == 2 and stats.miss_hits == 0
        cache.miss_many(["x", "y", "z"], lambda keys: {k: k for k in keys})
        stats = cache.stats()
        assert stats.miss_misses == 3 and stats.miss_hits == 2

    def test_all_warm_skips_builder(self):
        cache = EvalCache()
        cache.miss("k", lambda: 7)

        def explode(_):
            raise AssertionError("builder must not run on a warm batch")

        assert cache.miss_many(["k", "k"], explode) == {"k": 7}

    def test_duplicate_keys_are_collapsed(self):
        cache = EvalCache()
        calls = []

        def build(missing):
            calls.append(list(missing))
            return {key: 0 for key in missing}

        cache.miss_many(["d", "d", "d"], build)
        assert calls == [["d"]]

    def test_single_and_batch_share_entries(self):
        cache = EvalCache()
        cache.miss_many(["s"], lambda keys: {k: 5 for k in keys})
        # The single-key path must hit what the batch filled.
        assert cache.miss("s", lambda: pytest.fail("should be warm")) == 5


def _sweep_space(max_size=256):
    return dict(max_size=max_size, min_size=16, ways=(1, 2, 4), tilings=(1,))


class TestGroupedEvaluation:
    """Grouped and per-config evaluation are byte-identical end to end."""

    def test_batch_equals_per_config(self):
        workload = KernelWorkload(get_kernel("compress"))
        grouped = Evaluator(workload, backend="onepass", cache=EvalCache())
        single = Evaluator(workload, backend="onepass", cache=EvalCache())
        configs = _grid_configs(line_size=8, sets=(1, 2, 4))
        assert grouped.evaluate_batch(configs) == [
            single.evaluate(config) for config in configs
        ]

    def test_sweep_equals_fastsim_sweep(self):
        workload = KernelWorkload(get_kernel("compress"))
        fast = Evaluator(workload, backend="fastsim", cache=EvalCache())
        onepass = Evaluator(workload, backend="onepass", cache=EvalCache())
        expected = fast.sweep(**_sweep_space()).estimates
        assert onepass.sweep(**_sweep_space()).estimates == expected

    def test_parallel_sweep_identical(self):
        workload = KernelWorkload(get_kernel("compress"))
        evaluator = Evaluator(workload, backend="onepass", cache=EvalCache())
        serial = evaluator.sweep(**_sweep_space()).estimates
        parallel = evaluator.sweep(jobs=2, **_sweep_space()).estimates
        assert parallel == serial

    def test_batch_fills_cache_for_single_evaluations(self):
        workload = KernelWorkload(get_kernel("compress"))
        cache = EvalCache()
        evaluator = Evaluator(workload, backend="onepass", cache=cache)
        configs = _grid_configs(line_size=8, sets=(1, 2))
        batched = evaluator.evaluate_batch(configs)
        passes = get_metrics().counter("onepass.passes").value
        # Warm single evaluations must be pure cache hits: no new pass.
        for config, expected in zip(configs, batched):
            assert evaluator.evaluate(config) == expected
        assert get_metrics().counter("onepass.passes").value == passes

    def test_non_grid_backend_falls_back(self):
        workload = KernelWorkload(get_kernel("compress"))
        evaluator = Evaluator(workload, backend="fastsim", cache=EvalCache())
        configs = _grid_configs(line_size=8, sets=(1, 2))
        assert evaluator.evaluate_batch(configs) == [
            evaluator.evaluate(config) for config in configs
        ]

    def test_checkpoint_resume_identical(self, tmp_path):
        workload = KernelWorkload(get_kernel("compress"))
        journal = str(tmp_path / "sweep.ckpt")
        baseline = Evaluator(
            workload, backend="fastsim", cache=EvalCache()
        ).sweep(**_sweep_space()).estimates
        first = Evaluator(workload, backend="onepass", cache=EvalCache()).sweep(
            resilience=ResilienceOptions(checkpoint=journal),
            **_sweep_space(),
        )
        assert first.estimates == baseline
        # A resumed run loads every journaled chunk and must reproduce
        # the table bit for bit without re-measuring anything.
        passes = get_metrics().counter("onepass.passes").value
        resumed = Evaluator(
            workload, backend="onepass", cache=EvalCache()
        ).sweep(
            resilience=ResilienceOptions(checkpoint=journal, resume=True),
            **_sweep_space(),
        )
        assert resumed.estimates == baseline
        assert get_metrics().counter("onepass.passes").value == passes

    def test_store_backed_batch(self, tmp_path):
        from repro.serve.store import ResultStore, StoreBackedEvaluator

        workload = KernelWorkload(get_kernel("compress"))
        store = ResultStore(str(tmp_path / "results.db"))
        inner = Evaluator(workload, backend="onepass", cache=EvalCache())
        wrapped = StoreBackedEvaluator(inner, store)
        configs = _grid_configs(line_size=8, sets=(1, 2))
        fresh = wrapped.evaluate_batch(configs)
        assert fresh == [
            Evaluator(
                workload, backend="onepass", cache=EvalCache()
            ).evaluate(config)
            for config in configs
        ]
        for config, estimate in zip(configs, fresh):
            assert store.get(wrapped.eval_id, config) == estimate

        class Exploding:
            workload = backend = energy_model = gray_code = cache = None

            def evaluate(self, config):
                raise AssertionError("store hit must not reach the engine")

        warm = StoreBackedEvaluator(Exploding(), store, eval_id=wrapped.eval_id)
        assert warm.evaluate_batch(configs) == fresh

    def test_trace_workload_grouping(self):
        rng = np.random.default_rng(11)
        trace = MemoryTrace(rng.integers(0, 4096, size=2000) * 4)
        workload = TraceWorkload(trace)
        fast = Evaluator(workload, backend="fastsim", cache=EvalCache())
        onepass = Evaluator(workload, backend="onepass", cache=EvalCache())
        configs = _grid_configs(line_size=8) + _grid_configs(line_size=16)
        assert onepass.evaluate_batch(configs) == [
            fast.evaluate(config) for config in configs
        ]
