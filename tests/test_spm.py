"""Tests for the scratchpad substrate."""

import pytest

from repro.kernels import make_compress, make_dequant, make_matadd
from repro.spm.allocation import allocate_arrays, array_access_counts
from repro.spm.explorer import ScratchpadExplorer, compare_cache_vs_spm
from repro.spm.model import ScratchpadModel


class TestAccessCounts:
    def test_compress_counts(self, compress):
        counts = array_access_counts(compress.nest)
        assert counts == {"a": 5 * 961}

    def test_matadd_counts(self, matadd):
        counts = array_access_counts(matadd.nest)
        assert counts == {"a": 36, "b": 36, "c": 36}

    def test_unreferenced_array_zero(self):
        from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (4,)), ArrayDecl("b", (4,))),
        )
        assert array_access_counts(nest)["b"] == 0


class TestAllocation:
    def test_everything_fits(self, matadd):
        allocation = allocate_arrays(matadd, capacity=256)
        assert set(allocation.mapped) == {"a", "b", "c"}
        assert allocation.hit_fraction == 1.0

    def test_nothing_fits(self, matadd):
        allocation = allocate_arrays(matadd, capacity=8)
        assert allocation.mapped == ()
        assert allocation.hit_fraction == 0.0

    def test_partial_fit_is_optimal(self):
        kernel = make_dequant()  # three 1024-byte arrays, equal counts
        allocation = allocate_arrays(kernel, capacity=2100)
        assert len(allocation.mapped) == 2
        assert allocation.hit_fraction == pytest.approx(2 / 3)

    def test_prefers_hotter_arrays(self):
        from repro.kernels.base import Kernel
        from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 9),),
            refs=(
                ArrayRef("hot", (i,)),
                ArrayRef("hot", (i,)),
                ArrayRef("cold", (i,)),
            ),
            arrays=(ArrayDecl("hot", (10,)), ArrayDecl("cold", (10,))),
        )
        allocation = allocate_arrays(Kernel(nest=nest), capacity=10)
        assert allocation.mapped == ("hot",)

    def test_validation(self, matadd):
        with pytest.raises(ValueError):
            allocate_arrays(matadd, capacity=-1)

    def test_zero_capacity(self, matadd):
        allocation = allocate_arrays(matadd, capacity=0)
        assert allocation.hit_fraction == 0.0


class TestScratchpadModel:
    def test_on_chip_cheaper_than_off_chip_when_right_sized(self):
        """Small scratchpads beat off-chip per access; the paper's
        E_cell-proportional-to-capacity law makes oversized ones lose --
        which is exactly why the exploration sweeps the size."""
        model = ScratchpadModel()
        assert model.on_chip_access_nj(128) < model.off_chip_access_nj()
        assert model.on_chip_access_nj(4096) > model.off_chip_access_nj()

    def test_on_chip_energy_grows_with_capacity(self):
        model = ScratchpadModel()
        assert model.on_chip_access_nj(1024) > model.on_chip_access_nj(64)

    def test_full_fit_is_fast_and_cheap(self, matadd):
        model = ScratchpadModel()
        small = model.evaluate(matadd, 16)
        full = model.evaluate(matadd, 128)  # holds all 108 bytes
        assert full.hit_fraction == 1.0
        assert full.cycles < small.cycles
        assert full.energy_nj < small.energy_nj
        assert full.cycles == matadd.nest.iterations  # one cycle each

    def test_validation(self):
        with pytest.raises(ValueError):
            ScratchpadModel(element_bytes=0)
        with pytest.raises(ValueError):
            ScratchpadModel().on_chip_access_nj(0)


class TestComparison:
    def test_explorer_min_energy(self, matadd):
        explorer = ScratchpadExplorer(matadd)
        best = explorer.min_energy([16, 64, 128, 256])
        assert best.capacity in (128, 256)  # must hold all three arrays

    def test_rows_cover_budgets(self):
        rows = compare_cache_vs_spm(make_matadd(), budgets=[32, 64, 128])
        assert [r.budget for r in rows] == [32, 64, 128]
        for row in rows:
            assert row.energy_winner in ("cache", "spm")
            assert row.cycle_winner in ("cache", "spm")

    def test_spm_wins_when_everything_fits(self):
        """A scratchpad holding the whole working set beats any cache: no
        compulsory misses, no tags."""
        rows = compare_cache_vs_spm(make_matadd(), budgets=[128])
        assert rows[0].energy_winner == "spm"
        assert rows[0].cycle_winner == "spm"

    def test_cache_competitive_when_spm_starved(self):
        """When no array fits, the scratchpad degenerates to all-off-chip
        and the cache's automatic locality wins."""
        rows = compare_cache_vs_spm(make_compress(), budgets=[64])
        # compress's single 1024-byte array cannot fit a 64-byte scratchpad.
        assert rows[0].spm.hit_fraction == 0.0
        assert rows[0].energy_winner == "cache"
        assert rows[0].cycle_winner == "cache"
