"""Tests for the Section 4.1 off-chip assignment algorithm."""

import pytest

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.kernels import (
    make_compress,
    make_dequant,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
)
from repro.layout.address_map import layouts_overlap
from repro.layout.assignment import _intervals_clear, assign_offchip_layout


class TestPaperWalkthroughs:
    def test_compress_row_pitch_36(self):
        """The paper's exact numbers: cache 8, line 2 -> pitch 36, slot 2."""
        result = assign_offchip_layout(make_compress().nest, 8, 2)
        assert result.layout.placement("a").pitches == (36, 1)
        assert result.conflict_free
        # Class anchored at a[1][0] (refs on row i) lands on line 2; the
        # row i-1 class keeps line 0.
        slots = dict(result.slots)
        assert sorted(slots.values()) == [0, 2]

    def test_matadd_consecutive_slots(self):
        """Example 2: the three cases take consecutive cache lines."""
        result = assign_offchip_layout(make_matadd().nest, 8, 2)
        assert result.conflict_free
        assert [slot for _, slot in result.slots] == [0, 1, 2]

    def test_matadd_paper_cache_six_bytes(self):
        """The paper's walk-through uses a 3-line cache: b lands at byte 38
        and c at byte 76, exactly as printed."""
        result = assign_offchip_layout(make_matadd().nest, 6, 2)
        assert result.layout.placement("a").base == 0
        assert result.layout.placement("b").base == 38
        assert result.layout.placement("c").base == 76


class TestConflictElimination:
    """The headline guarantee: conflict_free=True means zero conflict misses,
    verified against the simulator's 3C classification."""

    GEOMETRIES = [(8, 2), (16, 4), (32, 4), (32, 8), (64, 8), (64, 16), (128, 16)]

    @pytest.mark.parametrize("make", [
        make_compress, make_matadd, make_pde, make_sor, make_dequant,
    ])
    def test_compatible_kernels_conflict_free(self, make):
        kernel = make()
        for size, line in self.GEOMETRIES:
            result = assign_offchip_layout(kernel.nest, size, line)
            if not result.conflict_free:
                continue  # geometry too small for this kernel's classes
            trace = kernel.trace(layout=result.layout)
            mc = CacheSimulator(CacheGeometry(size, line, 1)).classified_misses(trace)
            assert mc.conflict == 0, (kernel.name, size, line)

    @pytest.mark.parametrize("make", [make_compress, make_pde, make_dequant])
    def test_large_enough_caches_succeed(self, make):
        """Above the Section 3 minimum size the flag must come back True."""
        kernel = make()
        result = assign_offchip_layout(kernel.nest, 128, 8)
        assert result.conflict_free

    def test_incompatible_kernel_never_claims_freedom(self):
        kernel = make_matmul(n=7)
        for size, line in [(32, 4), (64, 8)]:
            result = assign_offchip_layout(kernel.nest, size, line)
            assert not result.conflict_free

    def test_assignment_reduces_misses_for_incompatible_kernels(self):
        """Best-effort placement still helps Matrix Multiplication."""
        kernel = make_matmul(n=15)
        size, line = 64, 8
        result = assign_offchip_layout(kernel.nest, size, line)
        sim_opt = CacheSimulator(CacheGeometry(size, line, 1))
        sim_unopt = CacheSimulator(CacheGeometry(size, line, 1))
        opt = sim_opt.run(kernel.trace(layout=result.layout)).misses
        unopt = sim_unopt.run(kernel.trace()).misses
        assert opt <= unopt

    def test_four_byte_compress_catastrophe_fixed(self):
        """With int elements the dense rows alias the cache (the Figure 9
        parenthesised baseline); the assignment removes the conflicts."""
        kernel = make_compress(element_size=4)
        size, line = 64, 8
        unopt = CacheSimulator(CacheGeometry(size, line, 1)).run(kernel.trace())
        result = assign_offchip_layout(kernel.nest, size, line)
        opt = CacheSimulator(CacheGeometry(size, line, 1)).run(
            kernel.trace(layout=result.layout)
        )
        assert result.conflict_free
        assert unopt.miss_rate > 0.5
        assert opt.miss_rate < unopt.miss_rate / 2


class TestLayoutSanity:
    @pytest.mark.parametrize("make", [
        make_compress, make_matadd, make_pde, make_sor, make_dequant, make_matmul,
    ])
    def test_arrays_never_overlap(self, make):
        kernel = make()
        for size, line in [(16, 4), (64, 8), (256, 16)]:
            result = assign_offchip_layout(kernel.nest, size, line)
            assert not layouts_overlap(kernel.nest, result.layout)

    def test_slot_lookup(self):
        result = assign_offchip_layout(make_matadd().nest, 8, 2)
        assert result.slot_of(0) == 0
        with pytest.raises(KeyError):
            result.slot_of(99)

    def test_invalid_geometry_rejected(self):
        nest = make_compress().nest
        with pytest.raises(ValueError):
            assign_offchip_layout(nest, 0, 2)
        with pytest.raises(ValueError):
            assign_offchip_layout(nest, 10, 4)

    def test_unreferenced_array_gets_dense_placement(self):
        from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (4,)), ArrayDecl("unused", (8,))),
        )
        result = assign_offchip_layout(nest, 16, 4)
        assert result.layout.placement("unused").pitches == (1,)


class TestIntervalsClear:
    SPAN = 32
    LINE = 4

    def test_well_separated(self):
        assert _intervals_clear([(0, 2), (8, 2), (16, 2)], self.LINE, self.SPAN)

    def test_too_close_forward(self):
        assert not _intervals_clear([(0, 4), (6, 2)], self.LINE, self.SPAN)

    def test_too_close_around_the_wrap(self):
        assert not _intervals_clear([(0, 2), (30, 2)], self.LINE, self.SPAN)

    def test_overlapping(self):
        assert not _intervals_clear([(0, 8), (4, 2)], self.LINE, self.SPAN)

    def test_single_interval_always_clear(self):
        assert _intervals_clear([(0, 40)], self.LINE, self.SPAN)

    def test_empty(self):
        assert _intervals_clear([], self.LINE, self.SPAN)

    def test_gap_exactly_line_size(self):
        # Last byte of A at 1; first of B at 5: distance 4 == line size: safe.
        assert _intervals_clear([(0, 2), (5, 2)], self.LINE, self.SPAN)

    def test_gap_one_short(self):
        assert not _intervals_clear([(0, 2), (4, 2)], self.LINE, self.SPAN)
