"""Tests for loop fusion."""

import pytest

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.kernels import Kernel
from repro.loops.fusion import fuse, fusion_is_safe
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.trace_gen import generate_trace


def producer_consumer(n=16):
    """b[i] = a[i]; then c[i] = b[i] -- the canonical fusable pipeline."""
    i = var("i")
    a = ArrayDecl("a", (n,))
    b = ArrayDecl("b", (n,))
    c = ArrayDecl("c", (n,))
    producer = LoopNest(
        name="stage1",
        loops=(Loop("i", 0, n - 1),),
        refs=(ArrayRef("a", (i,)), ArrayRef("b", (i,), is_write=True)),
        arrays=(a, b),
    )
    consumer = LoopNest(
        name="stage2",
        loops=(Loop("i", 0, n - 1),),
        refs=(ArrayRef("b", (i,)), ArrayRef("c", (i,), is_write=True)),
        arrays=(b, c),
    )
    return producer, consumer


class TestLegality:
    def test_same_point_dependence_is_legal(self):
        producer, consumer = producer_consumer()
        assert fusion_is_safe(producer, consumer)

    def test_backward_read_is_legal(self):
        # consumer reads b[i-1]: already written when iteration i runs.
        i = var("i")
        producer, _ = producer_consumer()
        consumer = LoopNest(
            name="lag",
            loops=(Loop("i", 0, 15),),
            refs=(ArrayRef("b", (i - 1,)), ArrayRef("c", (i,), is_write=True)),
            arrays=(ArrayDecl("b", (16,)), ArrayDecl("c", (16,))),
        )
        assert fusion_is_safe(producer, consumer)

    def test_forward_read_is_illegal(self):
        # consumer reads b[i+1]: not yet written at iteration i.
        i = var("i")
        producer, _ = producer_consumer()
        consumer = LoopNest(
            name="lead",
            loops=(Loop("i", 0, 15),),
            refs=(ArrayRef("b", (i + 1,)), ArrayRef("c", (i,), is_write=True)),
            arrays=(ArrayDecl("b", (17,)), ArrayDecl("c", (16,))),
        )
        assert not fusion_is_safe(producer, consumer)
        with pytest.raises(ValueError, match="not legal"):
            fuse(producer, consumer)

    def test_mismatched_loops_illegal(self):
        producer, _ = producer_consumer(16)
        _, consumer = producer_consumer(8)
        assert not fusion_is_safe(producer, consumer)

    def test_conflicting_declarations_rejected(self):
        producer, consumer = producer_consumer()
        bad_consumer = LoopNest(
            name="bad",
            loops=consumer.loops,
            refs=consumer.refs,
            arrays=(ArrayDecl("b", (99,)), ArrayDecl("c", (16,))),
        )
        assert fusion_is_safe(producer, bad_consumer)  # dependences fine
        with pytest.raises(ValueError, match="declared differently"):
            fuse(producer, bad_consumer)


class TestFusedNest:
    def test_structure(self):
        producer, consumer = producer_consumer()
        fused = fuse(producer, consumer)
        assert len(fused.refs) == 4
        assert {a.name for a in fused.arrays} == {"a", "b", "c"}
        assert fused.iterations == producer.iterations

    def test_trace_is_interleaved(self):
        producer, consumer = producer_consumer(4)
        fused = fuse(producer, consumer)
        trace = generate_trace(fused)
        # Per iteration: a[i], b[i] (write), b[i], c[i] (write).
        assert len(trace) == 16
        assert trace.ref_ids[:4].tolist() == [0, 1, 2, 3]

    def test_fusion_reduces_intermediate_misses(self):
        """The payoff: the intermediate array b is touched back-to-back in
        the fused nest, so a tiny cache stops missing on it."""
        producer, consumer = producer_consumer(n=256)
        geo = CacheGeometry(64, 8, 1)
        sim = CacheSimulator(geo)
        sim.run(generate_trace(producer))
        sim.run(generate_trace(consumer))  # same cache, sequential stages
        separate = sim.stats.misses
        fused_sim = CacheSimulator(geo)
        fused_sim.run(generate_trace(fuse(producer, consumer)))
        fused = fused_sim.stats.misses
        assert fused < separate

    def test_fused_kernel_explorable(self):
        from repro.core.config import CacheConfig
        from repro.core.explorer import MemExplorer

        producer, consumer = producer_consumer(64)
        kernel = Kernel(nest=fuse(producer, consumer))
        estimate = MemExplorer(kernel).evaluate(CacheConfig(64, 8))
        assert estimate.miss_rate < 0.5
