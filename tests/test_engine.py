"""The evaluation engine: workloads, backends, memoisation, parallelism.

The load-bearing claims:

* every vector backend agrees with the reference simulator *bit for bit*
  on arbitrary traces and geometries (hypothesis property);
* the process-wide :class:`EvalCache` is bounded, thread-safe, and
  actually hit by the sweep pipeline;
* ``sweep(jobs=N)`` returns results identical to the serial sweep, in the
  same order (the ISSUE's hard determinism requirement);
* the legacy explorer surfaces are thin shims over one shared pipeline.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.trace import MemoryTrace
from repro.core.analytic import AnalyticExplorer
from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer, evaluate_trace
from repro.engine import (
    EvalCache,
    Evaluator,
    InstructionWorkload,
    KernelWorkload,
    ParallelSweep,
    TraceWorkload,
    available_backends,
    cached_miss_vector,
    configure_eval_cache,
    get_backend,
    get_eval_cache,
    order_configs,
    trace_fingerprint,
)
from repro.engine.backends import (
    AnalyticBackend,
    FastSimBackend,
    OnePassBackend,
    ReferenceBackend,
    SampledBackend,
)
from repro.icache.blocks import ControlFlowTrace, Program
from repro.icache.explorer import ICacheExplorer
from repro.kernels import get_kernel


def _loop_execution() -> ControlFlowTrace:
    program = Program.sequential([("prologue", 8), ("body", 16)])
    return ControlFlowTrace.loop(
        program, body=["body"], iterations=20, prologue=["prologue"]
    )


GEOMETRIES = [
    CacheConfig(32, 4, 1),
    CacheConfig(64, 4, 2),
    CacheConfig(64, 8, 1),
    CacheConfig(128, 8, 4),
    CacheConfig(128, 16, 2),
    CacheConfig(256, 16, 8),
]


@st.composite
def traces(draw):
    n = draw(st.integers(1, 200))
    addresses = draw(
        st.lists(st.integers(0, 2047), min_size=n, max_size=n)
    )
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return MemoryTrace(addresses, writes)


class TestBackendRegistry:
    def test_names(self):
        assert available_backends() == (
            "analytic", "auto", "fastsim", "onepass", "reference", "sampled"
        )

    def test_get_by_name(self):
        assert isinstance(get_backend("fastsim"), FastSimBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("sampled"), SampledBackend)
        assert isinstance(get_backend("analytic"), AnalyticBackend)
        assert isinstance(get_backend("onepass"), OnePassBackend)
        # "auto" resolves to the concrete one-pass backend at creation,
        # so fingerprints and store rows always see the name "onepass".
        auto = get_backend("auto")
        assert isinstance(auto, OnePassBackend)
        assert auto.name == "onepass"

    def test_default_and_passthrough(self):
        assert isinstance(get_backend(None), FastSimBackend)
        instance = SampledBackend(sample_every=2)
        assert get_backend(instance) is instance

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("dinero")

    def test_backend_kwargs(self):
        backend = get_backend("sampled", sample_every=8, offset=3)
        assert backend.params == (8, 3)

    def test_analytic_rejects_raw_traces(self):
        trace = MemoryTrace([0, 4, 8])
        with pytest.raises(ValueError, match="loop nest"):
            AnalyticBackend().measure(trace, CacheConfig(64, 8))


class TestCrossBackendEquivalence:
    """fastsim and the reference simulator must agree bit for bit."""

    @given(trace=traces(), config=st.sampled_from(GEOMETRIES))
    @settings(max_examples=80, deadline=None)
    def test_miss_vectors_identical(self, trace, config):
        fast = FastSimBackend().miss_vector(trace, config)
        reference = ReferenceBackend().miss_vector(trace, config)
        assert np.array_equal(fast, reference)

    @given(trace=traces(), config=st.sampled_from(GEOMETRIES))
    @settings(max_examples=40, deadline=None)
    def test_measurements_identical(self, trace, config):
        fast = FastSimBackend().measure(trace, config)
        reference = ReferenceBackend().measure(trace, config)
        assert fast == reference
        assert fast.exact and fast.misses is not None

    @given(trace=traces(), config=st.sampled_from(GEOMETRIES))
    @settings(max_examples=40, deadline=None)
    def test_stride_one_sampling_is_exact(self, trace, config):
        exact = FastSimBackend().measure(trace, config)
        sampled = SampledBackend(sample_every=1).measure(trace, config)
        assert sampled.exact
        assert sampled.miss_rate == pytest.approx(exact.miss_rate)

    def test_sampled_estimate_is_bounded(self):
        trace = MemoryTrace(np.arange(0, 4096, 4))
        config = CacheConfig(256, 16, 1)
        estimate = SampledBackend(sample_every=4).measure(trace, config)
        assert 0.0 <= estimate.miss_rate <= 1.0
        assert not estimate.exact and estimate.misses is None


class TestEvalCache:
    def test_get_or_compute_runs_builder_once(self):
        cache = EvalCache()
        calls = []
        for _ in range(3):
            value = cache.miss("k", lambda: calls.append(1) or 42)
        assert value == 42 and len(calls) == 1
        stats = cache.stats()
        assert stats.miss_misses == 1 and stats.miss_hits == 2
        assert stats.miss_hit_rate == pytest.approx(2 / 3)

    def test_trace_store_is_bounded(self):
        cache = EvalCache(max_traces=2)
        for key in ("a", "b", "c"):
            cache.trace(key, lambda k=key: k.upper())
        assert cache.trace_entries == 2
        # "a" was evicted: rebuilding it is a miss, not a hit.
        before = cache.stats().trace_misses
        cache.trace("a", lambda: "A")
        assert cache.stats().trace_misses == before + 1

    def test_clear_resets_entries_and_counters(self):
        cache = EvalCache()
        cache.miss("k", lambda: 1)
        cache.clear()
        assert cache.miss_entries == 0
        stats = cache.stats()
        assert (stats.miss_hits, stats.miss_misses) == (0, 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EvalCache(max_traces=0)

    def test_configure_replaces_global(self):
        original = get_eval_cache()
        try:
            replaced = configure_eval_cache(max_traces=8, max_miss_entries=16)
            assert get_eval_cache() is replaced
            assert replaced is not original
        finally:
            configure_eval_cache()

    def test_sweep_hits_the_cache(self):
        cache = EvalCache()
        evaluator = Evaluator(
            KernelWorkload(get_kernel("compress")), cache=cache
        )
        evaluator.sweep(max_size=64, min_size=32, ways=(1, 2), tilings=(1,))
        stats = cache.stats()
        # The associativity sweep reuses each (T, L, B) trace.
        assert stats.trace_hits > 0
        # Add_bs depends only on the trace, so the ways sweep hits it too.
        assert stats.miss_hits > 0

    def test_cached_miss_vector_memoises(self):
        cache = EvalCache()
        trace = MemoryTrace([0, 8, 16, 0, 8, 16])
        first = cached_miss_vector(trace, 8, 4, 1, cache=cache)
        second = cached_miss_vector(trace, 8, 4, 1, cache=cache)
        assert first is second
        assert cache.stats().miss_hits == 1


class TestWorkloads:
    def test_kernel_workloads_share_keys(self):
        a = KernelWorkload(get_kernel("compress"))
        b = KernelWorkload(get_kernel("compress"))
        config = CacheConfig(64, 8)
        assert a.trace_key(config) == b.trace_key(config)
        assert a.trace_key(config) != KernelWorkload(
            get_kernel("compress"), optimize_layout=False
        ).trace_key(config)

    def test_kernel_trace_key_ignores_ways(self):
        workload = KernelWorkload(get_kernel("compress"))
        assert workload.trace_key(CacheConfig(64, 8, 1)) == workload.trace_key(
            CacheConfig(64, 8, 2)
        )

    def test_instruction_workload_rejects_tiling(self):
        workload = InstructionWorkload(_loop_execution())
        with pytest.raises(ValueError, match="tiling"):
            workload.validate(CacheConfig(64, 8, 1, 2))

    def test_trace_workload_is_content_addressed(self):
        t1 = MemoryTrace([0, 4, 8])
        t2 = MemoryTrace([0, 4, 8])
        t3 = MemoryTrace([0, 4, 12])
        assert TraceWorkload(t1).key == TraceWorkload(t2).key
        assert TraceWorkload(t1).key != TraceWorkload(t3).key
        assert trace_fingerprint(t1) != trace_fingerprint(t3)

    def test_fingerprint_sees_write_flags(self):
        reads = MemoryTrace([0, 4], [False, False])
        writes = MemoryTrace([0, 4], [False, True])
        assert trace_fingerprint(reads) != trace_fingerprint(writes)


class TestEvaluator:
    def test_matches_legacy_explorer(self):
        kernel = get_kernel("compress")
        evaluator = Evaluator(KernelWorkload(kernel), cache=EvalCache())
        explorer = MemExplorer(kernel)
        for config in (
            CacheConfig(32, 4), CacheConfig(64, 8, 2), CacheConfig(128, 8, 1, 2)
        ):
            assert evaluator.evaluate(config) == explorer.evaluate(config)

    def test_trace_workload_matches_evaluate_trace(self):
        kernel = get_kernel("compress")
        trace = kernel.trace(layout=kernel.default_layout())
        config = CacheConfig(64, 8)
        evaluator = Evaluator(
            TraceWorkload(trace, events=kernel.nest.iterations),
            cache=EvalCache(),
        )
        direct = evaluate_trace(trace, config, events=kernel.nest.iterations)
        assert evaluator.evaluate(config) == direct

    def test_analytic_backend_routes_to_closed_form(self):
        kernel = get_kernel("compress")
        evaluator = Evaluator(KernelWorkload(kernel), backend="analytic")
        config = CacheConfig(64, 8)
        expected = AnalyticExplorer(kernel).evaluate(config)
        assert evaluator.evaluate(config) == expected

    def test_analytic_backend_needs_a_kernel(self):
        workload = TraceWorkload(MemoryTrace([0, 4, 8]))
        evaluator = Evaluator(workload, backend="analytic")
        with pytest.raises(ValueError, match="kernel"):
            evaluator.evaluate(CacheConfig(64, 8))

    def test_reference_backend_agrees_on_a_kernel(self):
        kernel = get_kernel("matadd")
        config = CacheConfig(64, 8, 2)
        fast = Evaluator(
            KernelWorkload(kernel), backend="fastsim", cache=EvalCache()
        ).evaluate(config)
        slow = Evaluator(
            KernelWorkload(kernel), backend="reference", cache=EvalCache()
        ).evaluate(config)
        assert fast == slow

    def test_pickle_drops_local_cache(self):
        import pickle

        evaluator = Evaluator(
            KernelWorkload(get_kernel("compress")), cache=EvalCache()
        )
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone._cache is None  # rebinds to the worker's global cache
        config = CacheConfig(64, 8)
        assert clone.evaluate(config) == evaluator.evaluate(config)


class TestParallelSweep:
    def test_parallel_identical_to_serial(self):
        kernel = get_kernel("compress")
        evaluator = Evaluator(KernelWorkload(kernel), cache=EvalCache())
        serial = evaluator.sweep(
            max_size=128, min_size=16, ways=(1, 2), tilings=(1, 2)
        )
        parallel = evaluator.sweep(
            max_size=128, min_size=16, ways=(1, 2), tilings=(1, 2), jobs=2
        )
        assert list(parallel) == list(serial)

    def test_explorer_jobs_identical_to_serial(self):
        explorer = MemExplorer(get_kernel("matadd"))
        serial = explorer.explore(max_size=64, min_size=32, tilings=(1,))
        parallel = explorer.explore(
            max_size=64, min_size=32, tilings=(1,), jobs=2
        )
        assert list(parallel) == list(serial)

    def test_chunks_respect_trace_groups(self):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = order_configs(
            CacheConfig(size, line, ways)
            for size in (32, 64)
            for line in (4, 8)
            for ways in (1, 2)
        )
        sweep = ParallelSweep(jobs=2)
        chunks = sweep._chunks(evaluator, configs)
        seen = {}
        for chunk_index, chunk in enumerate(chunks):
            for _, config in chunk:
                key = evaluator.workload.trace_key(config)
                assert seen.setdefault(key, chunk_index) == chunk_index
        assert [c for chunk in chunks for _, c in chunk] == configs

    def test_jobs_one_is_serial(self):
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = [CacheConfig(32, 4), CacheConfig(64, 4)]
        estimates = ParallelSweep(jobs=1).run(evaluator, configs)
        assert [e.config for e in estimates] == configs


class TestLegacyShims:
    def test_trace_for_deprecation(self):
        explorer = MemExplorer(get_kernel("compress"))
        with pytest.warns(DeprecationWarning):
            trace, conflict_free = explorer._trace_for(CacheConfig(64, 8))
        assert len(trace) > 0 and isinstance(conflict_free, bool)

    def test_trace_for_delegates_to_engine(self):
        explorer = MemExplorer(get_kernel("compress"))
        config = CacheConfig(64, 8)
        with pytest.warns(DeprecationWarning):
            trace, conflict_free = explorer._trace_for(config)
        bundle = explorer.evaluator._bundle_for(config)
        assert trace is bundle.trace
        assert conflict_free == bundle.conflict_free

    def test_icache_trace_deprecation(self):
        explorer = ICacheExplorer(_loop_execution())
        with pytest.warns(DeprecationWarning):
            trace = explorer.trace
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert explorer.trace is trace  # identity preserved
        assert trace is explorer.workload.trace  # delegation, not a copy

    def test_explorer_exposes_engine_evaluator(self):
        explorer = MemExplorer(get_kernel("compress"), backend="sampled")
        assert isinstance(explorer.evaluator, Evaluator)
        assert explorer.backend.name == "sampled"


class TestCliFlags:
    def test_backend_and_jobs_accepted(self, capsys):
        from repro.cli import main

        main([
            "explore", "compress", "--max-size", "32", "--min-size", "32",
            "--tilings", "1", "--backend", "reference", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert "C32L4S1B1" in out

    def test_unknown_backend_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "x", "--backend", "dinero"])
