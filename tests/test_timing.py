"""Tests for the Wilton-Jouppi-style access-time model."""

import pytest

from repro.core.cycles import CYCLES_PER_HIT
from repro.energy.timing import AccessTimeModel


@pytest.fixture
def model():
    return AccessTimeModel()


class TestBreakdown:
    def test_components_positive(self, model):
        b = model.breakdown(64, 8, 2)
        assert b.decode > 0
        assert b.wordline > 0
        assert b.bitline > 0
        assert b.sense > 0
        assert b.compare > 0
        assert b.mux > 0
        assert b.total == pytest.approx(
            b.decode + b.wordline + b.bitline + b.sense + b.compare + b.mux
        )

    def test_direct_mapped_has_no_tag_overhead(self, model):
        b = model.breakdown(64, 8, 1)
        assert b.compare == 0.0
        assert b.mux == 0.0

    def test_access_time_grows_with_size(self, model):
        assert model.access_time(512, 8, 1) > model.access_time(64, 8, 1)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.breakdown(64, 8, 16)
        with pytest.raises(ValueError):
            model.breakdown(0, 8, 1)
        with pytest.raises(ValueError):
            AccessTimeModel(decode_weight=-1)


class TestPaperLadder:
    """The Section 2.2 hit-latency table, recovered from structure."""

    def test_matches_paper_at_64_bytes(self, model):
        for ways, expected in CYCLES_PER_HIT.items():
            relative = model.relative_hit_time(64, 8, ways)
            assert relative == pytest.approx(expected, abs=0.005), ways

    def test_monotone_in_ways(self, model):
        for size in (64, 256, 1024):
            times = [model.relative_hit_time(size, 8, w) for w in (1, 2, 4, 8)]
            assert times == sorted(times)

    def test_overhead_dilutes_for_larger_caches(self, model):
        """A refinement over the paper's size-independent table: the same
        comparator is a smaller fraction of a longer array path."""
        small = model.relative_hit_time(64, 8, 8)
        large = model.relative_hit_time(1024, 8, 8)
        assert large < small

    def test_biggest_jump_is_direct_to_two_way(self, model):
        t = [model.relative_hit_time(64, 8, w) for w in (1, 2, 4, 8)]
        first_jump = t[1] - t[0]
        later_jumps = [b - a for a, b in zip(t[1:], t[2:])]
        assert all(first_jump > j for j in later_jumps)
