"""Failure-injection tests: every public entry point must fail loudly.

A miss-rate study corrupted by a silently-accepted bad input is worse than
a crash; these tests drive malformed inputs through every layer and assert
the errors are raised at the boundary, with messages a user can act on.
"""

import io

import numpy as np
import pytest

from repro.cache.dinero import read_din_trace
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.trace import MemoryTrace
from repro.core.composite import CompositeProgram
from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer, evaluate_trace
from repro.core.selection import SelectionError, select_configuration
from repro.kernels import Kernel, make_compress
from repro.layout.address_map import ArrayPlacement, DataLayout
from repro.layout.assignment import assign_offchip_layout
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.trace_gen import generate_trace


class TestTraceLayerFailures:
    def test_mismatched_trace_arrays(self):
        with pytest.raises(ValueError, match="same length"):
            MemoryTrace([1, 2, 3], is_write=[True])

    def test_trace_with_negative_addresses(self):
        with pytest.raises(ValueError, match="negative"):
            MemoryTrace([-5])

    def test_layout_missing_an_array(self):
        nest = make_compress().nest
        incomplete = DataLayout.from_dict({"wrong": ArrayPlacement(0, (32, 1))})
        with pytest.raises(KeyError, match="no placement"):
            generate_trace(nest, layout=incomplete)

    def test_layout_with_wrong_rank(self):
        nest = make_compress().nest
        bad = DataLayout.from_dict({"a": ArrayPlacement(0, (1,))})
        with pytest.raises(ValueError):
            generate_trace(nest, layout=bad)


class TestDineroFailures:
    @pytest.mark.parametrize("payload,match", [
        ("garbage\n", "expected"),
        ("0\n", "expected"),
        ("0 xyz_not_hex_ok\n", "din line 1"),
        ("7 10\n", "unknown label"),
    ])
    def test_malformed_inputs(self, payload, match):
        with pytest.raises(ValueError, match=match):
            read_din_trace(io.StringIO(payload))

    def test_error_reports_line_number(self):
        with pytest.raises(ValueError, match="din line 3"):
            read_din_trace(io.StringIO("0 10\n0 20\nbroken line here\n"))


class TestGeometryFailures:
    def test_simulator_rejects_impossible_geometry(self):
        with pytest.raises(ValueError):
            CacheGeometry(64, 8, 16)  # 16 ways of 8B in 64B

    def test_config_rejects_line_bigger_than_cache(self):
        with pytest.raises(ValueError, match="exceeds cache size"):
            CacheConfig(16, 32)

    def test_evaluate_trace_survives_single_access(self):
        est = evaluate_trace(MemoryTrace([0]), CacheConfig(16, 4))
        assert est.miss_rate == 1.0
        assert est.add_bs == 0.0  # no transitions to switch


class TestExplorerFailures:
    def test_selection_error_names_the_bounds(self):
        explorer = MemExplorer(make_compress(n=3))
        result = explorer.explore(configs=[CacheConfig(16, 4)])
        with pytest.raises(SelectionError, match="cycle_bound=1"):
            select_configuration(result.estimates, "energy", cycle_bound=1)

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError, match="at least one kernel"):
            CompositeProgram([])

    def test_composite_trip_for_unknown_kernel_ignored(self):
        # Trips for kernels not in the program are silently irrelevant --
        # but trips covering the kernels must be positive.
        program = CompositeProgram(
            [make_compress(n=3)], trips={"compress": 2, "ghost": 5}
        )
        assert program.trips == {"compress": 2}


class TestAssignmentFailures:
    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(ValueError, match="multiple of line size"):
            assign_offchip_layout(make_compress().nest, 10, 4)

    def test_empty_nest_is_trivially_fine(self):
        nest = LoopNest(name="empty", loops=(Loop("i", 0, 3),), refs=(),
                        arrays=())
        result = assign_offchip_layout(nest, 16, 4)
        assert result.conflict_free
        assert result.slots == ()

    def test_scalar_like_single_element_arrays(self):
        i = var("i")
        nest = LoopNest(
            name="scalars",
            loops=(Loop("i", 0, 7),),
            refs=(ArrayRef("x", (0,)), ArrayRef("y", (0,), is_write=True)),
            arrays=(ArrayDecl("x", (1,)), ArrayDecl("y", (1,))),
        )
        del i
        result = assign_offchip_layout(nest, 16, 4)
        trace = generate_trace(nest, layout=result.layout)
        stats = CacheSimulator(CacheGeometry(16, 4, 1)).run(trace)
        assert stats.misses <= 2  # both scalars resident after warmup


class TestKernelFailures:
    def test_kernel_with_zero_iterations_impossible(self):
        # Loop validation prevents the degenerate case at construction.
        with pytest.raises(ValueError, match="empty range"):
            Loop("i", 5, 4)

    def test_single_iteration_kernel_works_end_to_end(self):
        i = var("i")
        nest = LoopNest(
            name="tiny",
            loops=(Loop("i", 0, 0),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (1,)),),
        )
        kernel = Kernel(nest=nest)
        estimate = MemExplorer(kernel).evaluate(CacheConfig(16, 4))
        assert estimate.miss_rate == 1.0
        assert estimate.events == 1
