"""Cross-cutting property-based tests on randomly generated loop nests.

The strongest correctness statement in the reproduction is the Section 4.1
guarantee: *whenever* ``assign_offchip_layout`` reports ``conflict_free``,
the simulated trace has zero conflict misses.  Hand-written kernels cannot
cover that claim's input space, so hypothesis generates random compatible
nests (shared linear part, random constant offsets, random array shapes)
and the guarantee is checked against the simulator every time.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.layout.address_map import layouts_overlap
from repro.layout.assignment import assign_offchip_layout
from repro.loops.compat import nest_is_compatible
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.trace_gen import generate_trace


@st.composite
def compatible_nests(draw):
    """A random 2D nest whose references all share the identity H."""
    rows = draw(st.integers(4, 12))
    cols = draw(st.integers(4, 12))
    n_arrays = draw(st.integers(1, 3))
    arrays = tuple(
        ArrayDecl(f"a{k}", (rows, cols)) for k in range(n_arrays)
    )
    i, j = var("i"), var("j")
    # Row/column offsets small enough to stay in bounds for i,j >= 1.
    n_refs = draw(st.integers(1, 4))
    refs = []
    for r in range(n_refs):
        array = draw(st.integers(0, n_arrays - 1))
        di = draw(st.integers(-1, 0))
        dj = draw(st.integers(-1, 0))
        is_write = draw(st.booleans()) and r == n_refs - 1
        refs.append(
            ArrayRef(f"a{array}", (i + di, j + dj), is_write=is_write)
        )
    return LoopNest(
        name="random",
        loops=(Loop("i", 1, rows - 1), Loop("j", 1, cols - 1)),
        refs=tuple(refs),
        arrays=arrays,
    )


class TestAssignmentGuarantee:
    @given(nest=compatible_nests(), geometry=st.sampled_from(
        [(16, 4), (32, 4), (32, 8), (64, 8), (64, 16), (128, 8)]
    ))
    @settings(max_examples=120, deadline=None)
    def test_conflict_free_flag_is_sound(self, nest, geometry):
        """conflict_free=True  ==>  zero simulated conflict misses."""
        size, line = geometry
        assert nest_is_compatible(nest)
        result = assign_offchip_layout(nest, size, line)
        if not result.conflict_free:
            return  # the geometry was too small; nothing is claimed
        trace = generate_trace(nest, layout=result.layout)
        mc = CacheSimulator(CacheGeometry(size, line, 1)).classified_misses(trace)
        assert mc.conflict == 0

    @given(nest=compatible_nests(), geometry=st.sampled_from(
        [(16, 4), (32, 8), (64, 8)]
    ))
    @settings(max_examples=60, deadline=None)
    def test_layouts_never_overlap(self, nest, geometry):
        size, line = geometry
        result = assign_offchip_layout(nest, size, line)
        assert not layouts_overlap(nest, result.layout)

    @given(nest=compatible_nests())
    @settings(max_examples=60, deadline=None)
    def test_padded_trace_same_access_count(self, nest):
        """Padding relocates data; it must not change the trace length or
        the per-reference structure."""
        result = assign_offchip_layout(nest, 64, 8)
        dense = generate_trace(nest)
        padded = generate_trace(nest, layout=result.layout)
        assert len(padded) == len(dense)
        assert padded.is_write.tolist() == dense.is_write.tolist()
        assert padded.ref_ids.tolist() == dense.ref_ids.tolist()

    @given(nest=compatible_nests(), geometry=st.sampled_from(
        [(32, 4), (64, 8), (128, 16)]
    ))
    @settings(max_examples=60, deadline=None)
    def test_conflict_free_means_no_3c_conflicts(self, nest, geometry):
        """The certificate property: a conflict-free layout's direct-mapped
        miss count never exceeds its fully-associative one -- zero conflict
        misses in the 3C sense.  (Note this does NOT mean fewer misses than
        the dense layout: padding may shift a window across a line boundary
        and add a compulsory fetch.)"""
        size, line = geometry
        result = assign_offchip_layout(nest, size, line)
        if not result.conflict_free:
            return
        trace = generate_trace(nest, layout=result.layout)
        geo_dm = CacheGeometry(size, line, 1)
        geo_fa = CacheGeometry(size, line, size // line)
        dm = CacheSimulator(geo_dm).run(trace).misses
        fa = CacheSimulator(geo_fa).run(trace).misses
        assert dm <= fa


class TestMetricProperties:
    @given(
        miss_rate=st.floats(0.0, 1.0),
        trip=st.integers(1, 10_000),
        tiling=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=80, deadline=None)
    def test_cycles_bounded_by_extremes(self, miss_rate, trip, tiling):
        from repro.core.cycles import processor_cycles

        cycles = processor_cycles(miss_rate, trip, 1, 8, tiling)
        all_hit = processor_cycles(0.0, trip, 1, 8, tiling)
        all_miss = processor_cycles(1.0, trip, 1, 8, tiling)
        assert all_hit - 1e-9 <= cycles <= all_miss + 1e-9

    @given(miss_rate=st.floats(0.0, 1.0), events=st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_energy_bounded_by_extremes(self, miss_rate, events):
        from repro.energy.model import EnergyModel

        model = EnergyModel()
        total = model.total_energy(64, 8, 1, miss_rate, events, 2.0)
        floor = model.total_energy(64, 8, 1, 0.0, events, 2.0)
        ceiling = model.total_energy(64, 8, 1, 1.0, events, 2.0)
        assert floor - 1e-9 <= total <= ceiling + 1e-9

    @given(
        sizes=st.lists(st.sampled_from([16, 32, 64, 128]), min_size=1,
                       max_size=6, unique=True)
    )
    @settings(max_examples=40, deadline=None)
    def test_exploration_extremes_are_consistent(self, sizes):
        from repro.core.config import CacheConfig
        from repro.core.explorer import MemExplorer
        from repro.kernels import make_compress

        explorer = MemExplorer(make_compress(n=7))
        configs = [CacheConfig(s, 4) for s in sorted(sizes)]
        result = explorer.explore(configs=configs)
        best_e = result.min_energy()
        best_t = result.min_cycles()
        assert all(best_e.energy_nj <= e.energy_nj for e in result)
        assert all(best_t.cycles <= e.cycles for e in result)


class TestAnalyticProperties:
    @given(nest=compatible_nests())
    @settings(max_examples=60, deadline=None)
    def test_analytic_never_underestimates_at_any_size(self, nest):
        """The closed-form model assumes no cross-sweep retention, so it
        upper-bounds the simulated misses of any conflict-free layout."""
        from repro.core.analytic import analytic_misses
        from repro.cache.fastsim import fast_hit_miss_counts

        line = 4
        result = assign_offchip_layout(nest, 64, line)
        if not result.conflict_free:
            return
        trace = generate_trace(nest, layout=result.layout)
        _, simulated = fast_hit_miss_counts(trace.line_ids(line), 16, 1)
        analytic = analytic_misses(nest, line)
        assert simulated <= analytic + len(list(nest.refs))


class TestCodegenProperties:
    @given(nest=compatible_nests(), tile=st.sampled_from([1, 2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_generated_code_replays_the_trace(self, nest, tile):
        """Executing the generated Python reproduces the analytic trace for
        random nests, layouts and tilings."""
        from repro.loops.codegen import run_generated

        layout = assign_offchip_layout(nest, 32, 4).layout
        recorded = run_generated(nest, layout=layout, tile=tile)
        expected = generate_trace(
            nest, layout=layout, tile=tile
        ).addresses.tolist()
        assert recorded == expected


class TestSamplingProperties:
    @given(nest=compatible_nests())
    @settings(max_examples=40, deadline=None)
    def test_union_of_samples_is_exact(self, nest):
        """Sampling every offset and combining miss counts reproduces the
        exact simulation (set independence, exhaustively)."""
        import numpy as np
        from repro.cache.fastsim import fast_hit_miss_counts
        from repro.cache.sampling import sampled_miss_rate

        trace = generate_trace(nest)
        line_ids = trace.line_ids(4)
        num_sets = 8
        _, exact = fast_hit_miss_counts(line_ids, num_sets, 1)
        stride = 4
        total_sampled_misses = 0
        for offset in range(stride):
            est = sampled_miss_rate(
                line_ids, num_sets, 1, sample_every=stride, offset=offset
            )
            total_sampled_misses += round(est.miss_rate * est.sampled_accesses)
        assert total_sampled_misses == exact
