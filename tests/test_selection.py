"""Tests for constraint-driven selection."""

import pytest

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.core.selection import SelectionError, select_configuration


def point(size, cycles, energy):
    return PerformanceEstimate(
        config=CacheConfig(size, 4),
        miss_rate=0.1,
        cycles=float(cycles),
        energy_nj=float(energy),
        events=100,
        accesses=100,
        reads=100,
        read_miss_rate=0.1,
        add_bs=1.0,
    )


@pytest.fixture
def frontier():
    # A classic trade-off: faster configurations cost more energy.
    return [
        point(16, 5000, 1000),
        point(64, 3000, 2000),
        point(256, 1500, 4000),
        point(512, 1000, 9000),
    ]


class TestObjectives:
    def test_min_energy_unbounded(self, frontier):
        s = select_configuration(frontier, objective="energy")
        assert s.chosen.config.size == 16

    def test_min_cycles_unbounded(self, frontier):
        s = select_configuration(frontier, objective="cycles")
        assert s.chosen.config.size == 512

    def test_min_energy_under_cycle_bound(self, frontier):
        """The paper's first scenario: time is the hard constraint."""
        s = select_configuration(frontier, "energy", cycle_bound=3000)
        assert s.chosen.config.size == 64

    def test_min_cycles_under_energy_bound(self, frontier):
        """The paper's second scenario: energy is the hard constraint."""
        s = select_configuration(frontier, "cycles", energy_bound=4000)
        assert s.chosen.config.size == 256

    def test_both_bounds(self, frontier):
        s = select_configuration(
            frontier, "energy", cycle_bound=3500, energy_bound=2500
        )
        assert s.chosen.config.size == 64


class TestErrors:
    def test_infeasible_bounds(self, frontier):
        with pytest.raises(SelectionError):
            select_configuration(frontier, "energy", cycle_bound=10)

    def test_empty_input(self):
        with pytest.raises(SelectionError):
            select_configuration([], "energy")

    def test_bad_objective(self, frontier):
        with pytest.raises(ValueError):
            select_configuration(frontier, "area")


class TestTieBreaking:
    def test_energy_ties_break_on_cycles(self):
        pts = [point(16, 5000, 1000), point(32, 4000, 1000)]
        s = select_configuration(pts, "energy")
        assert s.chosen.config.size == 32

    def test_cycle_ties_break_on_energy(self):
        pts = [point(16, 1000, 5000), point(32, 1000, 4000)]
        s = select_configuration(pts, "cycles")
        assert s.chosen.config.size == 32


class TestRendering:
    def test_str_mentions_bounds(self, frontier):
        s = select_configuration(frontier, "energy", cycle_bound=3000)
        text = str(s)
        assert "cycles <= 3000" in text
        assert "min energy" in text


class TestEnergyDelayProduct:
    def test_edp_never_picks_a_dominated_point(self, frontier):
        """The EDP minimum always lies on the Pareto frontier."""
        from repro.core.pareto import pareto_front

        s = select_configuration(frontier, "edp")
        front = {(p.cycles, p.energy_nj) for p in pareto_front(frontier)}
        assert (s.chosen.cycles, s.chosen.energy_nj) in front

    def test_edp_value(self, frontier):
        s = select_configuration(frontier, "edp")
        assert s.chosen.energy_delay_product == min(
            p.energy_delay_product for p in frontier
        )

    def test_edp_with_bounds(self, frontier):
        s = select_configuration(frontier, "edp", cycle_bound=3000)
        assert s.chosen.cycles <= 3000
