"""Tests for stack-distance analysis and miss-ratio curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.distance import (
    COLD,
    miss_ratio_curve,
    reuse_profile,
    stack_distances,
)
from repro.cache.fastsim import fast_hit_miss_counts
from repro.cache.trace import MemoryTrace


class TestStackDistances:
    def test_first_touches_are_cold(self):
        assert stack_distances([1, 2, 3]).tolist() == [COLD] * 3

    def test_immediate_reuse_distance_one(self):
        assert stack_distances([5, 5]).tolist() == [COLD, 1]

    def test_classic_sequence(self):
        # a b c a: a's reuse skips b and c -> distance 3.
        assert stack_distances([0, 1, 2, 0]).tolist() == [COLD, COLD, COLD, 3]

    def test_mru_refresh(self):
        # a b a b: each reuse has distance 2.
        assert stack_distances([0, 1, 0, 1]).tolist() == [COLD, COLD, 2, 2]

    def test_empty(self):
        assert stack_distances([]).size == 0


class TestMissRatioCurve:
    def test_monotone_non_increasing(self):
        trace = MemoryTrace(np.tile(np.arange(0, 80, 8), 10))
        curve = miss_ratio_curve(trace, 8, [1, 2, 4, 8, 16, 32])
        values = [curve[c] for c in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_plateau_at_compulsory(self):
        trace = MemoryTrace(np.tile(np.arange(0, 32, 8), 100))  # 4 lines
        curve = miss_ratio_curve(trace, 8, [4, 8])
        assert curve[4] == pytest.approx(4 / 400)
        assert curve[8] == curve[4]

    def test_matches_fully_associative_simulation(self):
        rng = np.random.default_rng(3)
        trace = MemoryTrace(rng.integers(0, 256, size=400))
        line_ids = trace.line_ids(8)
        curve = miss_ratio_curve(trace, 8, [1, 2, 4, 8, 16])
        for capacity in (1, 2, 4, 8, 16):
            _, misses = fast_hit_miss_counts(line_ids, 1, capacity)
            assert curve[capacity] == pytest.approx(misses / len(trace))

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_ratio_curve(MemoryTrace([0]), 8, [0])

    def test_empty_trace(self):
        assert miss_ratio_curve(MemoryTrace([]), 8, [4]) == {4: 0.0}

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_curve_equals_simulator_property(self, lines):
        trace = MemoryTrace([8 * v for v in lines])
        line_ids = trace.line_ids(8)
        curve = miss_ratio_curve(trace, 8, [1, 4, 16])
        for capacity in (1, 4, 16):
            _, misses = fast_hit_miss_counts(line_ids, 1, capacity)
            assert curve[capacity] == pytest.approx(misses / len(trace))


class TestReuseProfile:
    def test_streaming_trace_all_compulsory(self):
        profile = reuse_profile(MemoryTrace(np.arange(0, 512, 8)), 8)
        assert profile["compulsory_fraction"] == 1.0
        assert profile["knee_lines"] == 1

    def test_looping_trace_has_knee(self, compress):
        profile = reuse_profile(compress.trace(), 8)
        assert 0 < profile["compulsory_fraction"] < 0.2
        assert profile["median_distance"] >= 1
        assert profile["knee_lines"] >= 2

    def test_empty(self):
        profile = reuse_profile(MemoryTrace([]), 8)
        assert profile["compulsory_fraction"] == 0.0
