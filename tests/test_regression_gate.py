"""The benchmark regression gate (``benchmarks/check_regression.py``).

The gate is a standalone script CI runs between a baseline and a fresh
results directory; these tests load it by path and pin down its parsing
(both table shapes the perf benches emit) and its verdict logic
(threshold, absolute noise floor, missing measurements).
"""

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ENGINE_STYLE = """\
Performance -- evaluation engine (compress sweep, 115 configs, 1 CPU(s))

        path       seconds     configs/s
serial, cold cache        0.29530           389
serial, warm cache        0.00730         15673

EvalCache behaviour over the cold+warm sweeps

                 store    hits  misses  hit rate
        traces (T,L,B)     185      45    0.8043
"""

OBS_STYLE = """\
Performance -- observability overhead (compress warm sweep, 115 configs)

     measure         value
warm sweep, spans disabled (s)        0.0081
warm sweep, spans enabled (s)        0.0095
null span cost (ns)       86.9000
disabled overhead per eval        0.0074
"""


class TestParsing:
    def test_seconds_column_table(self, gate):
        parsed = gate.parse_seconds(ENGINE_STYLE)
        assert parsed == {
            "serial, cold cache": 0.2953,
            "serial, warm cache": 0.0073,
        }

    def test_label_with_seconds_unit(self, gate):
        parsed = gate.parse_seconds(OBS_STYLE)
        assert parsed == {
            "warm sweep, spans disabled (s)": 0.0081,
            "warm sweep, spans enabled (s)": 0.0095,
        }

    def test_cache_and_count_tables_ignored(self, gate):
        assert "traces" not in " ".join(gate.parse_seconds(ENGINE_STYLE))

    def test_load_directory_keys_by_file(self, gate, tmp_path):
        (tmp_path / "perf_engine.txt").write_text(ENGINE_STYLE)
        (tmp_path / "perf_obs.txt").write_text(OBS_STYLE)
        (tmp_path / "fig01_energy_em.txt").write_text(ENGINE_STYLE)
        loaded = gate.load_directory(tmp_path, strict=False)
        assert "perf_engine:serial, cold cache" in loaded
        assert "perf_obs:warm sweep, spans enabled (s)" in loaded
        assert not any(key.startswith("fig01") for key in loaded)

    def test_covered_files_include_onepass(self, gate):
        assert "perf_onepass" in gate.PERF_FILES

    def test_missing_covered_file_is_a_hard_error(self, gate, tmp_path):
        # A vanished baseline must not silently shrink the gate.
        (tmp_path / "perf_engine.txt").write_text(ENGINE_STYLE)
        with pytest.raises(FileNotFoundError, match="regenerate"):
            gate.load_directory(tmp_path)


class TestVerdicts:
    def test_within_threshold_passes(self, gate):
        regressions, _ = gate.compare(
            {"a": 1.0}, {"a": 1.2}, threshold=0.25, floor=0.02
        )
        assert regressions == []

    def test_regression_beyond_threshold_fails(self, gate):
        regressions, _ = gate.compare(
            {"a": 1.0}, {"a": 1.3}, threshold=0.25, floor=0.02
        )
        assert len(regressions) == 1
        assert "+30.0%" in regressions[0]

    def test_noise_floor_forgives_tiny_measurements(self, gate):
        # 3x slower but only 10 ms absolute: scheduler noise, not a bug.
        regressions, _ = gate.compare(
            {"a": 0.005}, {"a": 0.015}, threshold=0.25, floor=0.02
        )
        assert regressions == []

    def test_missing_measurement_fails(self, gate):
        regressions, _ = gate.compare(
            {"a": 1.0}, {}, threshold=0.25, floor=0.02
        )
        assert len(regressions) == 1
        assert "missing" in regressions[0]

    def test_improvements_and_new_rows_are_notes(self, gate):
        regressions, notes = gate.compare(
            {"a": 1.0}, {"a": 0.5, "b": 0.1}, threshold=0.25, floor=0.02
        )
        assert regressions == []
        assert any("improved" in note for note in notes)
        assert any("new measurement" in note for note in notes)


class TestMain:
    @staticmethod
    def _populate(gate, directory, engine_table=ENGINE_STYLE):
        directory.mkdir()
        for name in gate.PERF_FILES:
            table = engine_table if name == "perf_engine" else OBS_STYLE
            (directory / f"{name}.txt").write_text(table)

    def test_end_to_end_pass_and_fail(self, gate, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        self._populate(gate, baseline)
        self._populate(gate, current)
        assert gate.main([str(baseline), str(current)]) == 0
        capsys.readouterr()

        slower = ENGINE_STYLE.replace("0.29530", "0.59530")
        (current / "perf_engine.txt").write_text(slower)
        assert gate.main([str(baseline), str(current)]) == 1
        assert "regression" in capsys.readouterr().err

    def test_empty_baseline_is_an_error(self, gate, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        assert gate.main([str(baseline), str(current)]) == 2
        assert "regenerate" in capsys.readouterr().err

    def test_missing_single_baseline_is_an_error(self, gate, tmp_path,
                                                 capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        self._populate(gate, baseline)
        self._populate(gate, current)
        (baseline / "perf_onepass.txt").unlink()
        assert gate.main([str(baseline), str(current)]) == 2
        assert "perf_onepass" in capsys.readouterr().err
