"""Tests for the Section 4.2 tiling transformation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.loops.ir import Loop
from repro.loops.tiling import tiled_iteration_points, tiled_iteration_space


class TestTiledOrder:
    def test_tile_one_is_sequential(self):
        loops = (Loop("i", 0, 3), Loop("j", 0, 3))
        points = list(tiled_iteration_points(loops, tile=1))
        expected = [(i, j) for i in range(4) for j in range(4)]
        assert points == expected

    def test_paper_example_shape(self):
        # Example 3(b): 2x2 tiles over a 4x4 space visit tile-by-tile.
        loops = (Loop("i", 1, 4), Loop("j", 1, 4))
        points = list(tiled_iteration_points(loops, tile=2))
        assert points[:4] == [(1, 1), (1, 2), (2, 1), (2, 2)]
        assert points[4:8] == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_partial_tiles_clipped_at_bounds(self):
        loops = (Loop("i", 1, 5),)
        points = [p[0] for p in tiled_iteration_points(loops, tile=4)]
        assert points == [1, 2, 3, 4, 5]

    def test_tiling_subset_of_loops(self):
        loops = (Loop("i", 0, 1), Loop("j", 0, 3))
        points = list(tiled_iteration_points(loops, tile=2, n_tiled=1))
        # Outer i untouched; j tiled in pairs (which is still sequential
        # for a 1D tiling of a sequential loop).
        assert points == [(i, j) for i in range(2) for j in range(4)]

    def test_three_deep_inner_two_tiled(self):
        loops = (Loop("i", 0, 1), Loop("j", 0, 3), Loop("k", 0, 3))
        points = list(tiled_iteration_points(loops, tile=2, n_tiled=2))
        # For each i, the (j, k) plane is visited in 2x2 tiles.
        assert points[:4] == [(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1)]
        assert len(points) == 2 * 16

    def test_matrix_shape(self):
        loops = (Loop("i", 0, 4), Loop("j", 0, 4))
        space = tiled_iteration_space(loops, tile=2)
        assert space.shape == (25, 2)

    def test_invalid_parameters(self):
        loops = (Loop("i", 0, 3),)
        with pytest.raises(ValueError):
            list(tiled_iteration_points(loops, tile=0))
        with pytest.raises(ValueError):
            list(tiled_iteration_points(loops, tile=2, n_tiled=2))


class TestTilingProperties:
    @given(
        extents=st.lists(st.integers(1, 6), min_size=1, max_size=3),
        tile=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiled_order_is_permutation_of_sequential(self, extents, tile):
        loops = tuple(Loop(f"i{d}", 0, n - 1) for d, n in enumerate(extents))
        tiled = list(tiled_iteration_points(loops, tile))
        sequential = list(tiled_iteration_points(loops, 1))
        assert sorted(tiled) == sorted(sequential)
        assert len(tiled) == len(set(tiled))

    @given(
        extent=st.integers(1, 10),
        lower=st.integers(-3, 3),
        tile=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_huge_tile_equals_sequential(self, extent, lower, tile):
        loops = (Loop("i", lower, lower + extent - 1),)
        if tile >= extent:
            assert list(tiled_iteration_points(loops, tile)) == list(
                tiled_iteration_points(loops, 1)
            )
