"""Tests for the DRAM row-buffer model."""

import pytest

from repro.cache.trace import MemoryTrace
from repro.energy.dram import DramModel, miss_stream_energy
from repro.kernels import make_compress


class TestReplay:
    def test_sequential_stream_hits_the_open_row(self):
        model = DramModel(row_bytes=512, banks=4)
        stats = model.replay(range(0, 512, 8))
        assert stats.row_misses == 1  # first activate only
        assert stats.row_hits == 63
        assert stats.row_hit_rate > 0.95

    def test_row_strided_stream_always_misses(self):
        model = DramModel(row_bytes=512, banks=1)
        stats = model.replay(range(0, 512 * 16, 512))
        assert stats.row_hits == 0
        assert stats.row_misses == 16

    def test_banks_hold_independent_rows(self):
        model = DramModel(row_bytes=512, banks=2)
        # Alternate between two rows in different banks: one miss each,
        # then hits forever.
        stream = [0, 512, 8, 520, 16, 528]
        stats = model.replay(stream)
        assert stats.row_misses == 2
        assert stats.row_hits == 4

    def test_same_bank_rows_thrash(self):
        model = DramModel(row_bytes=512, banks=2)
        # Rows 0 and 2 both map to bank 0: ping-pong precharges.
        stream = [0, 1024, 0, 1024]
        stats = model.replay(stream)
        assert stats.row_misses == 4

    def test_energy_composition(self):
        model = DramModel(row_hit_nj=1.0, row_miss_nj=10.0)
        stats = model.replay([0, 8, 16])  # 1 miss + 2 hits
        assert stats.energy_nj == pytest.approx(10.0 + 2.0)

    def test_empty_stream(self):
        stats = DramModel().replay([])
        assert stats.fetches == 0
        assert stats.row_hit_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(row_bytes=0)
        with pytest.raises(ValueError):
            DramModel(row_hit_nj=5.0, row_miss_nj=1.0)


class TestMissStreamEnergy:
    def test_fewer_misses_less_energy(self):
        kernel = make_compress()
        trace = kernel.trace(layout=kernel.optimized_layout(64, 8).layout)
        small = miss_stream_energy(trace, 16, 8)
        large = miss_stream_energy(trace, 256, 8)
        assert large.fetches < small.fetches
        assert large.energy_nj < small.energy_nj

    def test_layout_improves_row_locality_too(self):
        """The closing loop: the Section 4.1 layout's miss stream is more
        row-sequential than the thrashing dense one, so the DRAM side gets
        cheaper per fetch as well."""
        kernel = make_compress(element_size=4)
        dense = miss_stream_energy(kernel.trace(), 64, 8)
        layout = kernel.optimized_layout(64, 8).layout
        padded = miss_stream_energy(kernel.trace(layout=layout), 64, 8)
        assert padded.fetches < dense.fetches
        assert padded.energy_nj < dense.energy_nj
        assert padded.row_hit_rate >= dense.row_hit_rate - 0.05

    def test_associativity_parameter(self):
        kernel = make_compress(element_size=4)
        trace = kernel.trace()
        direct = miss_stream_energy(trace, 64, 8, ways=1)
        assoc = miss_stream_energy(trace, 64, 8, ways=4)
        assert assoc.fetches <= direct.fetches
