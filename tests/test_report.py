"""Tests for the per-configuration datasheet."""

import pytest

from repro.cli import main
from repro.core.config import CacheConfig
from repro.core.report import datasheet, render_datasheet
from repro.kernels import make_compress


@pytest.fixture(scope="module")
def sheet():
    return datasheet(make_compress(), CacheConfig(64, 8))


class TestDatasheet:
    def test_fields_consistent(self, sheet):
        assert sheet.kernel_name == "compress"
        assert sheet.config == CacheConfig(64, 8)
        assert sheet.estimate.miss_rate > 0
        assert sheet.area_bits > 64 * 8
        assert sheet.tag_bits == 26
        assert sheet.min_cache_size == 32  # 4 lines x 8 bytes

    def test_conflict_free_reflected(self, sheet):
        assert sheet.estimate.conflict_free_layout
        assert sheet.miss_classes.conflict == 0

    def test_tag_overhead_fraction(self, sheet):
        assert 0 < sheet.tag_overhead_fraction < 0.5

    def test_unoptimized_variant(self):
        from repro.kernels import make_compress as mk

        kernel = mk(element_size=4)
        clean = datasheet(kernel, CacheConfig(64, 8), optimize_layout=True)
        dirty = datasheet(kernel, CacheConfig(64, 8), optimize_layout=False)
        assert dirty.miss_classes.conflict > 0
        assert clean.miss_classes.conflict == 0

    def test_associative_configuration(self):
        sheet = datasheet(make_compress(), CacheConfig(64, 8, 2))
        assert sheet.relative_hit_time > 1.0
        assert sheet.tag_bits == 27


class TestRendering:
    def test_render_contains_sections(self, sheet):
        text = render_datasheet(sheet)
        for token in ("metrics", "miss structure", "implementation",
                      "energy components", "E_main"):
            assert token in text

    def test_render_mentions_conflict_free(self, sheet):
        assert "conflict-free layout" in render_datasheet(sheet)

    def test_cli_subcommand(self, capsys):
        assert main(
            ["datasheet", "compress", "--cache-size", "32", "--line-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "compress @ C32L4S1B1" in out
        assert "relative hit time" in out
