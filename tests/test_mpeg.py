"""Tests for the MPEG decoder kernel suite."""

import pytest

from repro.kernels.mpeg import (
    MPEG_KERNEL_NAMES,
    make_mpeg_kernel,
    mpeg_decoder_kernels,
    mpeg_trip_counts,
)
from repro.loops.trace_gen import generate_trace


class TestSuite:
    def test_nine_kernels(self):
        kernels = mpeg_decoder_kernels()
        assert len(kernels) == 9
        assert [k.name for k in kernels] == list(MPEG_KERNEL_NAMES)

    def test_unique_names(self):
        names = [k.name for k in mpeg_decoder_kernels()]
        assert len(set(names)) == len(names)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            make_mpeg_kernel("huffman")

    def test_invalid_macroblocks(self):
        with pytest.raises(ValueError):
            make_mpeg_kernel("vld", macroblocks=0)


class TestInvocationCounts:
    def test_pipeline_weights(self):
        trips = mpeg_trip_counts(macroblocks=4)
        blocks = 6 * 4
        assert trips["vld"] == blocks
        assert trips["dequant"] == blocks
        assert trips["idct"] == 2 * blocks  # row + column passes
        assert trips["plus"] == blocks
        assert trips["compute"] == blocks
        assert trips["addr"] == 4
        assert trips["fetch"] == 4
        assert trips["display"] == 1
        assert trips["store"] == 1

    def test_scaling(self):
        small = mpeg_trip_counts(macroblocks=2)
        large = mpeg_trip_counts(macroblocks=8)
        assert large["vld"] == 4 * small["vld"]
        assert large["display"] == small["display"]


class TestKernelStructure:
    def test_idct_is_triple_loop(self):
        k = make_mpeg_kernel("idct")
        assert len(k.nest.loops) == 3
        assert k.nest.iterations == 512

    def test_compute_reads_four_neighbours(self):
        k = make_mpeg_kernel("compute")
        assert len(k.nest.reads) == 4
        assert len(k.nest.writes) == 1

    def test_fetch_window_is_nine_by_nine(self):
        k = make_mpeg_kernel("fetch")
        assert k.nest.iterations == 81

    @pytest.mark.parametrize("name", MPEG_KERNEL_NAMES)
    def test_every_kernel_generates_a_trace(self, name):
        kernel = make_mpeg_kernel(name)
        trace = generate_trace(kernel.nest)
        assert len(trace) == kernel.nest.accesses
        assert trace.addresses.min() >= 0
