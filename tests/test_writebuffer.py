"""Tests for the merging write buffer."""

import pytest

from repro.cache.trace import MemoryTrace
from repro.cache.writebuffer import WriteBuffer
from repro.kernels import make_compress, make_sor


class TestMerging:
    def test_repeated_stores_merge(self):
        buffer = WriteBuffer(entries=4, line_size=8)
        for _ in range(10):
            buffer.write(0)
        buffer.drain()
        stats = buffer.stats
        assert stats.writes == 10
        assert stats.merged == 9
        assert stats.memory_transactions == 1

    def test_same_line_different_bytes_merge(self):
        buffer = WriteBuffer(entries=4, line_size=8)
        for offset in range(8):
            buffer.write(offset)
        buffer.drain()
        assert buffer.stats.memory_transactions == 1

    def test_distinct_lines_all_retire(self):
        buffer = WriteBuffer(entries=2, line_size=8)
        for line in range(6):
            buffer.write(line * 8)
        buffer.drain()
        stats = buffer.stats
        assert stats.merged == 0
        assert stats.memory_transactions == 6

    def test_capacity_eviction_order_is_fifo(self):
        buffer = WriteBuffer(entries=2, line_size=8)
        buffer.write(0)    # line 0
        buffer.write(8)    # line 1
        buffer.write(16)   # line 2: retires line 0
        buffer.write(0)    # line 0 again: no longer pending -> new entry
        buffer.drain()
        assert buffer.stats.merged == 0
        assert buffer.stats.memory_transactions == 4

    def test_reset(self):
        buffer = WriteBuffer()
        buffer.write(0)
        buffer.reset()
        assert buffer.stats.writes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(entries=0)
        with pytest.raises(ValueError):
            WriteBuffer(line_size=0)


class TestOnKernels:
    def test_sequential_writes_collapse(self):
        """SOR's stride-1 store stream merges line-size-fold."""
        kernel = make_sor()
        trace = kernel.trace()
        stats = WriteBuffer(entries=4, line_size=8).run(trace)
        assert stats.writes == trace.num_writes
        # One transaction per 8-byte line of the swept rows (plus edges).
        assert stats.memory_transactions < stats.writes / 4

    def test_quantifies_the_papers_omission(self):
        """The write traffic the paper's read-only accounting drops is,
        after merging, a small fraction of the read miss traffic -- the
        measured justification for the simplification."""
        from repro.cache.simulator import CacheGeometry, CacheSimulator

        kernel = make_compress()
        layout = kernel.optimized_layout(64, 8).layout
        trace = kernel.trace(layout=layout)
        read_misses = CacheSimulator(CacheGeometry(64, 8, 1)).run(
            trace
        ).read_misses
        write_transactions = WriteBuffer(entries=4, line_size=8).run(
            trace
        ).memory_transactions
        assert write_transactions <= read_misses * 1.5

    def test_empty_write_stream(self):
        stats = WriteBuffer().run(MemoryTrace([1, 2, 3]))  # all reads
        assert stats.writes == 0
        assert stats.merge_rate == 0.0
