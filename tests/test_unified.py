"""Tests for the split-vs-unified I/D cache study."""

import numpy as np
import pytest

from repro.icache.unified import merged_trace, split_vs_unified
from repro.kernels import make_compress, make_matadd


class TestMergedTrace:
    def test_volume(self):
        kernel = make_matadd()
        trace, is_fetch = merged_trace(kernel, body_instructions=5)
        iterations = kernel.nest.iterations
        assert len(trace) == iterations * (5 + len(kernel.nest.refs))
        assert int(is_fetch.sum()) == iterations * 5

    def test_code_and_data_disjoint(self):
        kernel = make_matadd()
        trace, is_fetch = merged_trace(kernel)
        code = trace.addresses[is_fetch]
        data = trace.addresses[~is_fetch]
        assert int(code.min()) > int(data.max())
        assert int(code.min()) % 4096 == 0  # segment-aligned

    def test_custom_code_base(self):
        kernel = make_matadd()
        trace, is_fetch = merged_trace(kernel, code_base=1 << 20)
        assert int(trace.addresses[is_fetch].min()) == 1 << 20

    def test_interleaving_order(self):
        kernel = make_matadd()
        trace, is_fetch = merged_trace(kernel, body_instructions=2)
        # Each iteration: 2 fetches then 3 data accesses.
        assert is_fetch[:5].tolist() == [True, True, False, False, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            merged_trace(make_matadd(), body_instructions=0)


class TestSplitVsUnified:
    def test_partition_respects_budget(self):
        result = split_vs_unified(make_compress(element_size=4), 256)
        assert result.best_icache + result.best_dcache <= 256
        assert result.best_icache >= result.line_size
        assert result.best_dcache >= result.line_size

    def test_split_misses_monotone_in_budget(self):
        kernel = make_compress(element_size=4)
        misses = [
            split_vs_unified(kernel, budget).split_misses
            for budget in (64, 128, 256, 512)
        ]
        assert misses == sorted(misses, reverse=True)

    def test_icache_side_pins_the_loop_once_it_fits(self):
        """With a 12-instruction (48-byte) body, a 64-byte I-side leaves
        only compulsory instruction misses."""
        kernel = make_compress(element_size=4)
        result = split_vs_unified(kernel, 512, body_instructions=12)
        assert result.best_icache >= 64

    def test_no_universal_winner(self):
        """The design question is real: across budgets both organisations
        win somewhere for the aliasing-prone compress."""
        kernel = make_compress(element_size=4)
        winners = {
            split_vs_unified(kernel, budget).winner
            for budget in (64, 128, 256, 512)
        }
        assert winners == {"split", "unified"}

    def test_validation(self):
        with pytest.raises(ValueError):
            split_vs_unified(make_matadd(), budget=8, line_size=8)
