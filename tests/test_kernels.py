"""Tests for the bundled benchmark kernels."""

import pytest

from repro.kernels import (
    PAPER_KERNELS,
    available_kernels,
    get_kernel,
    make_compress,
    make_dequant,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
    make_transpose,
    paper_kernels,
)


class TestRegistry:
    def test_paper_kernels_order(self):
        assert PAPER_KERNELS == ("compress", "matmul", "pde", "sor", "dequant")
        assert [k.name for k in paper_kernels()] == list(PAPER_KERNELS)

    def test_get_kernel_all_names(self):
        for name in available_kernels():
            kernel = get_kernel(name)
            assert kernel.accesses_per_invocation > 0

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("quicksort")

    def test_mpeg_prefix(self):
        assert get_kernel("mpeg:idct").name == "idct"


class TestCompress:
    def test_paper_shape(self):
        k = make_compress()
        assert k.nest.iterations == 31 * 31
        assert len(k.nest.refs) == 5  # 4 reads + 1 write
        assert len(k.nest.writes) == 1
        assert k.nest.array("a").dims == (32, 32)

    def test_trace_volume(self):
        k = make_compress()
        assert len(k.trace()) == 961 * 5

    def test_element_size_parameter(self):
        assert make_compress(element_size=4).nest.array("a").element_size == 4

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            make_compress(n=0)


class TestOtherKernels:
    def test_matadd_paper_shape(self):
        k = make_matadd()
        assert k.nest.iterations == 36
        assert {a.name for a in k.nest.arrays} == {"a", "b", "c"}
        assert k.nest.array("a").size_bytes == 36

    def test_matmul_shape(self):
        k = make_matmul()
        assert k.nest.iterations == 31 ** 3
        assert k.n_tiled == 2  # j and k loops are the tiled pair

    def test_pde_two_arrays(self):
        k = make_pde()
        assert len(k.nest.arrays) == 2
        assert k.nest.iterations == 961

    def test_sor_in_place(self):
        k = make_sor()
        assert len(k.nest.arrays) == 1
        writes = k.nest.writes
        assert len(writes) == 1 and writes[0].array == "a"

    def test_dequant_three_arrays(self):
        assert len(make_dequant().nest.arrays) == 3

    def test_transpose_reads_transposed(self):
        k = make_transpose()
        read = k.nest.reads[0]
        assert read.linear_matrix(("i", "j")) == ((0, 1), (1, 0))


class TestKernelBehaviour:
    def test_min_cache_interface(self):
        k = make_compress()
        assert k.min_cache_lines(4) == 4
        assert k.min_cache_size(4) == 16

    def test_with_invocations(self):
        k = make_compress().with_invocations(5)
        assert k.invocations == 5
        assert k.name == "compress"

    def test_invalid_invocations(self):
        with pytest.raises(ValueError):
            make_compress().with_invocations(0)

    def test_optimized_layout_wrapper(self):
        result = make_compress().optimized_layout(8, 2)
        assert result.conflict_free

    def test_trace_repeat(self):
        k = make_matadd()
        assert len(k.trace(repeat=2)) == 2 * len(k.trace())

    def test_tiled_trace_same_multiset(self):
        k = make_compress(n=7)
        plain = sorted(k.trace().addresses.tolist())
        tiled = sorted(k.trace(tile=4).addresses.tolist())
        assert plain == tiled


class TestConv2d:
    def test_structure(self):
        from repro.kernels import make_conv2d

        k = make_conv2d()
        assert len(k.nest.loops) == 4
        assert k.nest.iterations == 32 * 32 * 4 * 4
        assert {a.name for a in k.nest.arrays} == {"img", "coef", "out"}

    def test_in_bounds(self):
        from repro.kernels import make_conv2d
        from repro.loops.bounds import check_bounds

        assert check_bounds(make_conv2d().nest) == []

    def test_registry(self):
        from repro.kernels import get_kernel

        assert get_kernel("conv2d").name == "conv2d"

    def test_mixed_index_subscripts(self):
        from repro.kernels import make_conv2d

        img_ref = make_conv2d().nest.refs[1]
        assert img_ref.linear_matrix(("i", "j", "ki", "kj")) == (
            (1, 0, 1, 0),
            (0, 1, 0, 1),
        )

    def test_validation(self):
        from repro.kernels import make_conv2d
        import pytest as _pytest

        with _pytest.raises(ValueError):
            make_conv2d(n=0)
