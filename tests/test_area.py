"""Tests for the cache area estimate."""

import pytest

from repro.energy.area import cache_area_bits, tag_bits_per_line


class TestTagBits:
    def test_direct_mapped(self):
        # 64B cache, 8B lines, 8 sets: 32 - 3 - 3 = 26 tag bits.
        assert tag_bits_per_line(64, 8, 1) == 26

    def test_associative_needs_wider_tags(self):
        # Same size, 2 ways -> half the sets -> one more tag bit.
        assert tag_bits_per_line(64, 8, 2) == tag_bits_per_line(64, 8, 1) + 1

    def test_fully_associative(self):
        assert tag_bits_per_line(64, 8, 8) == 32 - 3

    def test_custom_address_width(self):
        assert tag_bits_per_line(64, 8, 1, address_bits=16) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            tag_bits_per_line(48, 8, 1)
        with pytest.raises(ValueError):
            tag_bits_per_line(64, 8, 1, address_bits=4)


class TestArea:
    def test_composition(self):
        # 64B data + 8 lines x (26 tag + 1 valid).
        assert cache_area_bits(64, 8, 1) == 64 * 8 + 8 * 27

    def test_smaller_lines_cost_more_area(self):
        assert cache_area_bits(64, 4, 1) > cache_area_bits(64, 8, 1)

    def test_grows_with_size(self):
        assert cache_area_bits(128, 8, 1) > cache_area_bits(64, 8, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            cache_area_bits(60, 8, 1)
