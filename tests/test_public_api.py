"""Guard tests on the public API surface.

Everything a subpackage advertises in ``__all__`` must exist, be
importable, and carry a docstring -- so the API reference in docs/API.md
cannot silently drift from the code.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.cache",
    "repro.core",
    "repro.energy",
    "repro.icache",
    "repro.kernels",
    "repro.layout",
    "repro.loops",
    "repro.moo",
    "repro.registry",
    "repro.serve",
    "repro.spm",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_unique(package):
    module = importlib.import_module(package)
    names = list(module.__all__)
    assert len(names) == len(set(names)), f"{package}: duplicate __all__ entries"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_objects_documented(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{package}.{name} lacks a docstring"


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts)


def test_cli_entry_point_importable():
    from repro.cli import main

    assert callable(main)
