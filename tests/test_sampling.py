"""Tests for set sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.fastsim import fast_hit_miss_counts
from repro.cache.sampling import sampled_miss_rate
from repro.kernels import make_compress


class TestSampling:
    def test_stride_one_is_exact(self):
        rng = np.random.default_rng(11)
        line_ids = rng.integers(0, 128, size=500)
        exact_hits, exact_misses = fast_hit_miss_counts(line_ids, 16, 1)
        est = sampled_miss_rate(line_ids, 16, 1, sample_every=1)
        assert est.miss_rate == pytest.approx(
            exact_misses / (exact_hits + exact_misses)
        )
        assert est.coverage == 1.0

    def test_sampled_sets_simulated_exactly(self):
        """The sampled subset's behaviour is identical to its behaviour in
        the full simulation (set independence)."""
        rng = np.random.default_rng(5)
        line_ids = rng.integers(0, 256, size=800)
        full_miss = fast_miss_vector_by_set(line_ids, 16, 2)
        est = sampled_miss_rate(line_ids, 16, 2, sample_every=4, offset=1)
        mask = (line_ids % 16) % 4 == 1
        expected = full_miss[mask].mean()
        assert est.miss_rate == pytest.approx(float(expected))

    def test_uniform_traffic_small_error(self):
        trace = make_compress().trace()
        line_ids = trace.line_ids(8).to_numpy() if hasattr(
            trace.line_ids(8), "to_numpy") else trace.line_ids(8)
        _, exact_misses = fast_hit_miss_counts(line_ids, 16, 1)
        exact = exact_misses / line_ids.size
        for offset in range(4):
            est = sampled_miss_rate(line_ids, 16, 1, sample_every=4,
                                    offset=offset)
            assert est.miss_rate == pytest.approx(exact, abs=0.06)

    def test_coverage_fraction(self):
        rng = np.random.default_rng(2)
        line_ids = rng.integers(0, 1024, size=2000)
        est = sampled_miss_rate(line_ids, 32, 1, sample_every=4)
        assert est.sampled_sets == 8
        assert 0.15 < est.coverage < 0.35  # ~1/4 for uniform traffic

    def test_empty_sample(self):
        line_ids = np.array([0, 4, 8], dtype=np.int64) * 0  # all set 0
        est = sampled_miss_rate(line_ids, 4, 1, sample_every=4, offset=1)
        assert est.miss_rate == 0.0
        assert est.sampled_accesses == 0

    def test_validation(self):
        ids = np.array([0, 1])
        with pytest.raises(ValueError):
            sampled_miss_rate(ids, 4, 1, sample_every=0)
        with pytest.raises(ValueError):
            sampled_miss_rate(ids, 4, 1, sample_every=4, offset=4)

    @given(
        lines=st.lists(st.integers(0, 63), min_size=10, max_size=300),
        stride=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_offsets_partition_the_trace(self, lines, stride):
        line_ids = np.asarray(lines, dtype=np.int64)
        parts = [
            sampled_miss_rate(line_ids, 8, 1, sample_every=stride, offset=k)
            for k in range(stride)
        ]
        assert sum(p.sampled_accesses for p in parts) == line_ids.size


def fast_miss_vector_by_set(line_ids, num_sets, ways):
    from repro.cache.fastsim import fast_miss_vector

    return fast_miss_vector(np.asarray(line_ids, dtype=np.int64), num_sets, ways)
