"""The exploration service (``repro.serve``): queue, coalescing, HTTP, crash-resume.

The load-bearing claims:

* a result fetched over the wire is bit-identical to a direct engine
  sweep (the store/JSON round-trip loses nothing);
* concurrent identical submissions coalesce onto one job -- each unique
  configuration is evaluated exactly once fleet-wide, proven by the
  ``engine.configs_evaluated`` counter;
* a second identical submission after completion is served entirely
  from the persistent store with **zero** engine evaluations, and
  overlapping grids only pay for their set difference;
* admission control rejects over-capacity submissions with ``429`` +
  ``Retry-After``, and a draining service answers ``503``;
* a service killed mid-job (``kill -9`` semantics: no goodbye, journal
  truncated mid-chunk) recovers on restart and finishes with results
  bit-identical to an uninterrupted run.
"""

import threading
import time

import pytest

from repro.engine.resilience import ResilienceOptions
from repro.moo import SearchSettings, run_search
from repro.obs.metrics import get_metrics
from repro.serve import (
    ExplorationService,
    JobManager,
    JobSpec,
    QueueFullError,
    ServeClient,
    ServeError,
    ServiceDrainingError,
    make_server,
    open_store,
)

#: Small grids so each sweep is fast; SMALL is a strict subset of BIG.
SMALL = JobSpec(kernel="compress", max_size=32, min_size=16, tilings=(1,))
BIG = JobSpec(kernel="compress", max_size=64, min_size=16, tilings=(1,))


def _evaluated():
    return get_metrics().counter("engine.configs_evaluated").value


class LiveServer:
    """An in-process service + HTTP listener + client, on a free port."""

    def __init__(self, tmp_path, queue_depth=16, start=True, sweep_jobs=1,
                 **service_kwargs):
        self.service = ExplorationService(
            str(tmp_path / "results.db"),
            str(tmp_path / "spool"),
            queue_depth=queue_depth,
            sweep_jobs=sweep_jobs,
            **service_kwargs,
        )
        if start:
            self.service.start()
        self.httpd = make_server("127.0.0.1", 0, self.service)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        port = self.httpd.server_address[1]
        self.client = ServeClient(f"http://127.0.0.1:{port}", timeout_s=60)

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()


@pytest.fixture
def live(tmp_path):
    server = LiveServer(tmp_path)
    yield server
    server.close()


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(kernel="conv2d", ways=(1, 2), tilings=(1, 4))
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_spec_hash_is_stable(self):
        assert SMALL.spec_hash == JobSpec.from_json(SMALL.to_json()).spec_hash
        assert SMALL.spec_hash != BIG.spec_hash

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            JobSpec(kernel="nope")

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            JobSpec.from_json({"kernel": "compress", "surprise": 1})

    def test_kernel_required(self):
        with pytest.raises(ValueError, match="kernel"):
            JobSpec.from_json({"max_size": 64})

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="bounds"):
            JobSpec(kernel="compress", max_size=16, min_size=64)


class TestQueue:
    def test_priority_order(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        manager = JobManager(store)
        manager.submit(SMALL, priority=10)
        urgent, _ = manager.submit(BIG, priority=1)
        assert manager.next_job().job_id == urgent.job_id

    def test_queue_full_rejects_with_retry_hint(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        manager = JobManager(store, max_depth=1, retry_after_s=7.0)
        manager.submit(SMALL)
        with pytest.raises(QueueFullError) as excinfo:
            manager.submit(BIG)
        assert excinfo.value.retry_after_s == 7.0

    def test_coalesced_submission_never_rejected(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        manager = JobManager(store, max_depth=1)
        first, coalesced = manager.submit(SMALL)
        assert not coalesced
        again, coalesced = manager.submit(SMALL)  # full queue, same spec
        assert coalesced and again.job_id == first.job_id

    def test_draining_refuses_submissions(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        manager = JobManager(store)
        manager.begin_drain()
        with pytest.raises(ServiceDrainingError):
            manager.submit(SMALL)


class TestHTTP:
    def test_health(self, live):
        doc = live.client.health()
        assert doc["status"] == "ok"
        assert doc["schema"] == "repro.serve/1"

    def test_result_bit_identical_to_direct_sweep(self, live):
        result = live.client.submit_and_wait(SMALL, timeout_s=120)
        direct = SMALL.build_evaluator().sweep(configs=SMALL.configs())
        assert list(result.estimates) == list(direct.estimates)

    def test_metrics_exposes_store_and_serve_sections(self, live):
        live.client.submit_and_wait(SMALL, timeout_s=120)
        doc = live.client.metrics()
        assert doc["store"]["schema"] == "repro.store/1"
        assert doc["store"]["entries"] == len(SMALL.configs())
        assert doc["serve"]["serve.jobs_submitted"] >= 1

    def test_bad_spec_is_400(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client.submit({"kernel": "compress", "surprise": 1})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client.job("no-such-job")
        assert excinfo.value.status == 404

    def test_result_before_done_is_409(self, tmp_path):
        env = LiveServer(tmp_path, start=False)  # runner off: job stays queued
        try:
            job = env.client.submit(SMALL)
            with pytest.raises(ServeError) as excinfo:
                env.client.result(job["job_id"])
            assert excinfo.value.status == 409
        finally:
            env.close()

    def test_draining_is_503(self, live):
        live.service.begin_drain()
        assert live.client.health()["status"] == "draining"
        with pytest.raises(ServeError) as excinfo:
            live.client.submit(SMALL, max_attempts=1)
        assert excinfo.value.status == 503

    def test_backpressure_is_429_with_retry_after(self, tmp_path):
        env = LiveServer(tmp_path, queue_depth=1, start=False)
        try:
            env.client.submit(SMALL)
            with pytest.raises(ServeError) as excinfo:
                env.client.submit(BIG, max_attempts=1)
            assert excinfo.value.status == 429
            assert excinfo.value.doc["retry_after_s"] > 0
        finally:
            env.close()

    def test_events_stream_ends_terminal(self, live):
        job = live.client.submit(SMALL)
        events = list(live.client.events(job["job_id"]))
        assert events, "stream yielded nothing"
        last = events[-1]
        assert last["state"] == "done"
        assert last["done_configs"] == last["total_configs"]

    def test_jobs_listing(self, live):
        job = live.client.submit(SMALL)
        live.client.wait(job["job_id"], timeout_s=120)
        listed = live.client.jobs()
        assert job["job_id"] in {j["job_id"] for j in listed}


class TestCoalescing:
    def test_concurrent_identical_submissions_run_once(self, tmp_path):
        env = LiveServer(tmp_path, start=False)  # hold the queue still
        try:
            jobs, errors = [], []

            def submit():
                try:
                    jobs.append(env.client.submit(SMALL))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len({j["job_id"] for j in jobs}) == 1, "one shared job"
            assert sum(1 for j in jobs if j["coalesced"]) == 3

            before = _evaluated()
            env.service.start()
            job_id = jobs[0]["job_id"]
            finished = env.client.wait(job_id, timeout_s=120)
            assert finished["state"] == "done"
            assert finished["coalesced"] == 3
            # The fleet of 4 paid for the grid exactly once.
            assert _evaluated() - before == len(SMALL.configs())
            results = [env.client.result(job_id) for _ in range(4)]
            assert all(
                list(r.estimates) == list(results[0].estimates)
                for r in results
            )
        finally:
            env.close()

    def test_resubmission_served_from_store(self, live):
        first = live.client.submit_and_wait(SMALL, timeout_s=120)
        before = _evaluated()
        job = live.client.submit(SMALL)
        assert not job["coalesced"], "terminal jobs do not coalesce"
        finished = live.client.wait(job["job_id"], timeout_s=120)
        assert finished["state"] == "done"
        assert _evaluated() == before, "no engine work on resubmission"
        again = live.client.result(job["job_id"])
        assert list(again.estimates) == list(first.estimates)

    def test_overlapping_grids_pay_the_difference(self, live):
        live.client.submit_and_wait(SMALL, timeout_s=120)
        before = _evaluated()
        live.client.submit_and_wait(BIG, timeout_s=120)
        expected = len(BIG.configs()) - len(SMALL.configs())
        assert _evaluated() - before == expected


class TestCrashRecovery:
    def _truncate(self, path, chunk_lines):
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[: 1 + chunk_lines]) + "\n")

    def test_killed_job_resumes_bit_identically(self, tmp_path):
        spec = BIG
        configs = spec.configs()
        direct = spec.build_evaluator().sweep(configs=configs)

        # Session one: claim the job (state=running), journal part of the
        # sweep, then vanish without any goodbye -- kill -9 semantics.
        first = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )
        job, _ = first.manager.submit(spec)
        claimed = first.manager.next_job()
        assert claimed.job_id == job.job_id
        journal = first.runner.checkpoint_path(job)
        spec.build_evaluator().sweep(
            configs=configs,
            resilience=ResilienceOptions(checkpoint=journal),
        )
        self._truncate(journal, chunk_lines=2)

        # Session two: a fresh service over the same store re-enqueues the
        # interrupted job and resumes it from the torn journal.
        recovered_before = get_metrics().counter("serve.jobs_recovered").value
        second = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        try:
            done = second.manager.wait(job.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
            assert done.resumed
            assert (
                get_metrics().counter("serve.jobs_recovered").value
                == recovered_before + 1
            )
            doc = second.job_result(done)
            assert doc is not None
            result = done.result
            assert list(result.estimates) == list(direct.estimates)
        finally:
            second.stop()

    def test_queued_job_survives_restart(self, tmp_path):
        first = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )
        job, _ = first.manager.submit(SMALL)
        # No runner ever started; the record only lives in the store.
        second = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        try:
            done = second.manager.wait(job.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
        finally:
            second.stop()

    def test_terminal_jobs_recover_as_history(self, tmp_path):
        first = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        job, _ = first.manager.submit(SMALL)
        first.manager.wait(job.job_id, timeout_s=120)
        first.stop()

        second = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        try:
            again = second.manager.get(job.job_id)
            assert again is not None and again.state == "done"
            # The in-memory result died with session one; the store
            # reassembles it exactly.
            doc = second.job_result(again)
            assert doc is not None
            assert len(doc["estimates"]) == len(SMALL.configs())
        finally:
            second.stop()


class TestTracing:
    """Every traced job yields one merged repro.trace/1 timeline."""

    def test_trace_covers_parallel_sweep(self, tmp_path):
        env = LiveServer(tmp_path, sweep_jobs=4)
        try:
            fallbacks_before = (
                get_metrics().counter("parallel.serial_fallbacks").value
            )
            submitted = env.client.submit(BIG)
            assert submitted["trace_id"], "client mints a trace id"
            job = env.client.wait(submitted["job_id"], timeout_s=120)
            assert job["state"] == "done"
            doc = env.client.trace(job["job_id"])

            assert doc["schema"] == "repro.trace/1"
            assert doc["trace_id"] == submitted["trace_id"]
            assert doc["job_id"] == job["job_id"]

            by_path = {tuple(e["path"]): e for e in doc["events"]}
            assert ("job",) in by_path
            assert ("job", "queue.wait") in by_path
            assert ("job", "sweep") in by_path
            chunks = [
                e for e in doc["events"]
                if e["name"].startswith("chunk[")
            ]
            assert chunks, "chunk spans present in the timeline"

            # Every chunk nests under the sweep, and the chunks' evaluate
            # spans cover the whole grid exactly once.
            sweep = by_path[("job", "sweep")]
            for chunk in chunks:
                assert chunk["parent_id"] == sweep["span_id"]
            evaluated = sum(
                e["count"]
                for e in doc["events"]
                if e["name"] == "evaluate"
            )
            assert evaluated == len(BIG.configs())

            # With a real process pool the chunks ran on several worker
            # pids, all captured in the merged timeline.
            degraded = (
                get_metrics().counter("parallel.serial_fallbacks").value
                - fallbacks_before
            )
            if degraded == 0:
                assert len(doc["workers"]) >= 2

            # Timing is internally consistent: queue wait plus every
            # chunk's busy time fits the job's wall-clock window.
            wall = job["finished_s"] - job["submitted_s"]
            queue_wait = by_path[("job", "queue.wait")]["total_s"]
            assert queue_wait <= wall
            for chunk in chunks:
                assert 0.0 < chunk["total_s"] <= wall
                assert doc["started_s"] <= chunk["start_s"]
                assert chunk["end_s"] <= doc["started_s"] + doc["duration_s"]
            assert doc["dropped"] == 0
        finally:
            env.close()

    def test_trace_before_done_is_409(self, tmp_path):
        env = LiveServer(tmp_path, start=False)
        try:
            job = env.client.submit(SMALL)
            with pytest.raises(ServeError) as excinfo:
                env.client.trace(job["job_id"])
            assert excinfo.value.status == 409
        finally:
            env.close()

    def test_untraced_job_is_404(self, tmp_path):
        env = LiveServer(tmp_path)
        try:
            # "trace": false in the submission body opts this job out of
            # the server-side trace_id minting.
            job, _ = env.service.submit(
                {"spec": SMALL.to_json(), "trace": False}
            )
            done = env.client.wait(job.job_id, timeout_s=120)
            assert done["state"] == "done"
            assert done.get("trace_id") is None
            with pytest.raises(ServeError) as excinfo:
                env.client.trace(job.job_id)
            assert excinfo.value.status == 404
        finally:
            env.close()

    def test_bad_trace_id_is_400(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client.submit(SMALL, trace_id="not ok!")
        assert excinfo.value.status == 400

    def test_trace_persists_across_restart(self, tmp_path):
        from repro.serve import ExplorationService, open_store

        first = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        job, _ = first.submit({"spec": SMALL.to_json()})
        first.manager.wait(job.job_id, timeout_s=120)
        first.stop()
        with open_store(str(tmp_path / "results.db")) as store:
            doc = store.load_trace(job.job_id)
        assert doc is not None and doc["trace_id"] == job.trace_id


class TestPrometheusEndpoint:
    def test_exposition_parses_with_live_percentiles(self, live):
        from repro.obs.prometheus import parse_prometheus

        live.client.submit_and_wait(SMALL, timeout_s=120)
        text = live.client.metrics(format="prometheus")
        families = parse_prometheus(text)
        assert "repro_serve_http_request_count" not in families
        assert families["repro_serve_http_request"]["type"] == "histogram"
        assert families["repro_engine_eval"]["type"] == "histogram"

        # The JSON report agrees and carries non-zero latency percentiles.
        report = live.client.metrics()
        histograms = report["metrics"]["histograms"]
        assert histograms["serve.http.request"]["p95"] > 0
        assert histograms["engine.eval"]["p95"] > 0

        # Store gauges refresh on scrape: row counts and file size.
        rows = report["store"]["rows"]
        assert rows["estimates"] == len(SMALL.configs())
        assert rows["traces"] >= 1
        assert rows["file_bytes"] > 0
        gauges = report["metrics"]["gauges"]
        assert gauges["store.estimate_rows"] == rows["estimates"]
        assert gauges["store.file_bytes"] == rows["file_bytes"]

    def test_unknown_format_is_400(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client._request_text("/metrics?format=xml")
        assert excinfo.value.status == 400


class TestEventsReplay:
    def test_concurrent_consumers_see_identical_sequences(self, tmp_path):
        env = LiveServer(tmp_path, start=False)
        try:
            job = env.client.submit(SMALL)
            again = env.client.submit(SMALL)
            assert again["coalesced"], "second submission coalesced"
            job_id = job["job_id"]

            streams = [[], []]
            errors = []

            def consume(into):
                try:
                    into.extend(env.client.events(job_id))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            # Both consumers attach while the job is still queued...
            threads = [
                threading.Thread(target=consume, args=(stream,))
                for stream in streams
            ]
            for t in threads:
                t.start()
            env.service.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors and not any(t.is_alive() for t in threads)

            # ...and a third attaches after the job finished; history
            # replay still hands it the full identical sequence.
            late = list(env.client.events(job_id))

            first, second = streams
            assert first == second == late
            assert first[0]["state"] == "queued"
            assert first[-1]["state"] == "done"
            total = first[-1]["total_configs"]
            assert first[-1]["done_configs"] == total == len(SMALL.configs())
            # Progress only ever moves forward within the sequence.
            done_counts = [e["done_configs"] for e in first]
            assert done_counts == sorted(done_counts)
        finally:
            env.close()


class TestManifests:
    """Every finished job records a repro.manifest/1 provenance document."""

    def test_finished_job_serves_manifest(self, live):
        from repro.registry import check_manifest

        doc = live.client.submit(SMALL)
        job = live.client.wait(doc["job_id"], timeout_s=120)
        assert job["state"] == "done"
        manifest = job["manifest"]
        check_manifest(manifest)
        assert manifest["spec_hash"] == SMALL.spec_hash
        assert manifest["eval_id"] == SMALL.eval_id()
        assert manifest["seeds"] == {"retry_backoff": 0}
        used = {(row["kind"], row["name"]) for row in manifest["plugins"]}
        assert used == {
            ("kernel", "compress"),
            ("backend", "fastsim"),
            ("energy", "hwo"),
            ("sram", "CY7C-2Mbit"),
            ("store", "sqlite"),
        }
        assert all(row["origin"] == "builtin" for row in manifest["plugins"])

    def test_queued_job_has_no_manifest_yet(self, tmp_path):
        manager = JobManager(open_store(str(tmp_path / "r.db")))
        job, _ = manager.submit(SMALL)
        assert manager.store.load_manifest(job.job_id) is None

    def test_manifest_survives_restart(self, tmp_path):
        first = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        job, _ = first.manager.submit(SMALL)
        first.manager.wait(job.job_id, timeout_s=120)
        first.stop()

        with open_store(str(tmp_path / "results.db")) as store:
            manifest = store.load_manifest(job.job_id)
        assert manifest is not None
        assert manifest["spec_hash"] == SMALL.spec_hash


class TestReadiness:
    def test_readyz_503_until_recovery_completes(self, tmp_path):
        server = LiveServer(tmp_path, start=False)
        try:
            # The listener is up but recovery has not run: alive, not ready.
            assert server.client.health()["status"] == "starting"
            with pytest.raises(ServeError) as excinfo:
                server.client._request("GET", "/readyz")
            assert excinfo.value.status == 503
            server.service.start()
            ready = server.client._request("GET", "/readyz")
            assert ready["ready"] is True and ready["status"] == "ok"
        finally:
            server.close()

    def test_draining_fails_readiness_but_not_liveness(self, live):
        live.service.begin_drain()
        # /health and /healthz keep answering 200 -- the process is alive.
        assert live.client.health()["status"] == "draining"
        assert live.client._request("GET", "/healthz")["status"] == "draining"
        for path in ("/readyz", "/health?ready=1"):
            with pytest.raises(ServeError) as excinfo:
                live.client._request("GET", path)
            assert excinfo.value.status == 503


class TestMultiTenantHTTP:
    def test_client_header_rides_on_the_job(self, tmp_path):
        server = LiveServer(tmp_path)
        try:
            client = ServeClient(
                server.client.base_url, timeout_s=60, client_id="tenant-a"
            )
            job = client.submit(SMALL)
            assert client.job(job["job_id"])["client_id"] == "tenant-a"
        finally:
            server.close()

    def test_body_client_id_when_no_header(self, tmp_path):
        server = LiveServer(tmp_path)
        try:
            job = server.client._request(
                "POST", "/jobs",
                body={"spec": SMALL.to_json(), "client_id": "tenant-b"},
            )["job"]
            assert job["client_id"] == "tenant-b"
        finally:
            server.close()

    def test_anonymous_default(self, live):
        job = live.client.submit(SMALL)
        assert live.client.job(job["job_id"])["client_id"] == "anonymous"

    def test_bad_client_id_is_400(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client._request(
                "POST", "/jobs",
                body={"spec": SMALL.to_json(), "client_id": "not ok!"},
            )
        assert excinfo.value.status == 400

    def test_rate_limit_is_429_with_exact_retry_after(self, tmp_path):
        from repro.serve import ClientPolicy, TenancyPolicy

        server = LiveServer(
            tmp_path,
            tenancy=TenancyPolicy(default=ClientPolicy(rate=0.5, burst=1)),
        )
        try:
            server.client.submit(SMALL, max_attempts=1)
            with pytest.raises(ServeError) as excinfo:
                server.client.submit(BIG, max_attempts=1)
            assert excinfo.value.status == 429
            hint = excinfo.value.doc["retry_after_s"]
            assert 0.0 < hint <= 2.0
            report = server.client.metrics()
            assert report["serve"]["serve.quota.rate_limited"] >= 1
        finally:
            server.close()

    def test_inflight_quota_is_429(self, tmp_path):
        from repro.serve import ClientPolicy, TenancyPolicy

        server = LiveServer(
            tmp_path,
            start=False,  # nothing dequeues; submissions stay in flight
            tenancy=TenancyPolicy(default=ClientPolicy(max_inflight=1)),
        )
        try:
            server.service.manager.submit(SMALL)
            with pytest.raises(ServeError) as excinfo:
                server.client.submit(BIG, max_attempts=1)
            assert excinfo.value.status == 429
        finally:
            server.service.start()
            server.close()

    def test_deadline_validation_is_400(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client._request(
                "POST", "/jobs",
                body={"spec": SMALL.to_json(), "deadline_s": -1},
            )
        assert excinfo.value.status == 400

    def test_metrics_report_has_breaker_and_fairshare_sections(self, live):
        job = live.client.submit(SMALL)
        live.client.wait(job["job_id"], timeout_s=120)
        report = live.client.metrics()
        assert "breaker" in report
        assert any(
            name.startswith("serve.fairshare.dequeued.")
            for name in report["serve"]
        )


class TestCancellationHTTP:
    def test_cancel_queued_job(self, tmp_path):
        server = LiveServer(tmp_path, start=False)  # stays queued
        try:
            job, _ = server.service.manager.submit(SMALL)
            cancelled = server.client.cancel(job.job_id)
            assert cancelled["state"] == "cancelled"
            assert cancelled["cancelled"] is True
            # Idempotent: a second DELETE answers 200, changed=False.
            again = server.client.cancel(job.job_id)
            assert again["state"] == "cancelled"
            assert again["cancelled"] is False
            # wait() treats cancelled as terminal.
            assert server.client.wait(job.job_id)["state"] == "cancelled"
        finally:
            server.service.start()
            server.close()

    def test_cancel_unknown_is_404(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client.cancel("no-such-job")
        assert excinfo.value.status == 404

    def test_cancel_done_is_409(self, live):
        job = live.client.submit(SMALL)
        live.client.wait(job["job_id"], timeout_s=120)
        with pytest.raises(ServeError) as excinfo:
            live.client.cancel(job["job_id"])
        assert excinfo.value.status == 409

    def test_delete_bad_route_is_404(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client._request("DELETE", "/jobs")
        assert excinfo.value.status == 404

    def test_events_stream_ends_on_cancelled(self, tmp_path):
        server = LiveServer(tmp_path, start=False)
        try:
            job, _ = server.service.manager.submit(SMALL)
            server.client.cancel(job.job_id)
            states = [snap["state"] for snap in server.client.events(job.job_id)]
            assert states[-1] == "cancelled"
        finally:
            server.service.start()
            server.close()


class TestDeadlineResume:
    def test_expired_deadline_cancels_but_resubmit_resumes(self, tmp_path):
        spec = BIG
        direct = spec.build_evaluator().sweep(configs=spec.configs())
        # Submit before the runner exists, so the deadline deterministically
        # expires while the job is still queued; the claim then finalises
        # it as cancelled instead of starting it.  (The mid-sweep
        # cooperative-cancel path is pinned in tests/test_resilience.py.)
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )
        job, _ = service.manager.submit(spec, deadline_s=0.005)
        time.sleep(0.02)
        service.start()
        try:
            ended = service.manager.wait(job.job_id, timeout_s=120)
            assert ended is not None and ended.state == "cancelled"
            assert "deadline" in ended.error
            # The spec-keyed journal (whatever it holds) survived; a
            # resubmission coalesces onto nothing and runs to done with a
            # result bit-identical to the uninterrupted sweep.
            retry, coalesced = service.manager.submit(spec)
            assert not coalesced and retry.job_id != job.job_id
            done = service.manager.wait(retry.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
            assert list(done.result.estimates) == list(direct.estimates)
        finally:
            service.stop()


class TestRunnerRobustness:
    """The runner thread must outlive any single job's misbehaviour."""

    def test_runner_survives_execute_crash(self, tmp_path, fail_on_error_logs):
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )

        def boom(job):
            raise RuntimeError("kaboom")

        service.runner.execute = boom  # instance attr shadows the method
        service.start()
        try:
            job, _ = service.manager.submit(SMALL)
            ended = service.manager.wait(job.job_id, timeout_s=30)
            assert ended is not None and ended.state == "failed"
            assert "kaboom" in ended.error
            # The loop caught the escape: the runner is still alive and
            # executes the next job normally.
            assert service.runner.is_alive()
            del service.runner.execute
            retry, _ = service.manager.submit(BIG)
            done = service.manager.wait(retry.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
        finally:
            service.stop()
            # This test provokes the backstop's ERROR log on purpose.
            fail_on_error_logs.records.clear()

    def test_spurious_cancel_with_lifted_deadline_is_not_fatal(self, tmp_path):
        # Race pinned by the review: the deadline fires, then a
        # coalesced join lifts job.deadline_s to None before the
        # runner's except-handler formats the reason.  The handler must
        # not raise (a TypeError here used to kill the runner thread).
        from repro.engine.resilience import SweepCancelledError

        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )

        def cancelled_sweep(job, cancel_event=None):
            raise SweepCancelledError("cancelled", done=1, total=4)

        service.runner._sweep = cancelled_sweep
        service.start()
        try:
            job, _ = service.manager.submit(SMALL)  # no deadline at all
            ended = service.manager.wait(job.job_id, timeout_s=30)
            assert ended is not None and ended.state == "cancelled"
            assert "deadline exceeded" in ended.error
            assert service.runner.is_alive()
        finally:
            service.stop()

    def test_stop_with_stuck_runner_leaves_store_open(self, tmp_path):
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )
        entered = threading.Event()
        release = threading.Event()

        def stuck(job):
            entered.set()
            release.wait(30)
            service.manager.fail(job, "stubbed")

        service.runner.execute = stuck
        service.start()
        try:
            job, _ = service.manager.submit(SMALL)
            assert entered.wait(10)
            # The join times out with the sweep still running; the store
            # must stay open so the job's own writes don't explode.
            service.stop(wait=True, timeout_s=0.05)
            assert service.store.stats()["jobs"] >= 1
        finally:
            release.set()
            service.manager.wait(job.job_id, timeout_s=30)
            service.runner.join(10)
            service.stop()  # runner gone: this close succeeds

    def test_runner_deadline_lift_mid_sweep_completes(self, tmp_path):
        # End-to-end: a running job's short deadline is lifted by a
        # coalesced join; the re-reading watch stands down and the job
        # runs to done instead of being cancelled by the stale timer.
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )
        started = threading.Event()
        release = threading.Event()
        original = service.runner._sweep

        def gated(job, cancel_event=None):
            started.set()
            release.wait(30)
            return original(job, cancel_event)

        service.runner._sweep = gated
        service.start()
        try:
            job, _ = service.manager.submit(SMALL, deadline_s=1.0)
            assert started.wait(10)
            joined, coalesced = service.manager.submit(SMALL)  # lifts it
            assert coalesced and joined.job_id == job.job_id
            time.sleep(1.5)  # let the stale deadline fire (and stand down)
            release.set()
            ended = service.manager.wait(job.job_id, timeout_s=120)
            assert ended is not None and ended.state == "done"
        finally:
            release.set()
            service.stop()


class TestClientRetryJitter:
    def test_seeded_jitter_is_deterministic(self):
        a = ServeClient(retry_seed=42)
        b = ServeClient(retry_seed=42)
        delays_a = [a.retry_delay_s(i, None) for i in range(5)]
        delays_b = [b.retry_delay_s(i, None) for i in range(5)]
        assert delays_a == delays_b
        assert ServeClient(retry_seed=7).retry_delay_s(0, None) != delays_a[0]

    def test_full_jitter_window_grows_and_caps(self):
        client = ServeClient(retry_seed=3)
        for attempt in range(12):
            delay = client.retry_delay_s(attempt, None)
            window = min(
                client.RETRY_CAP_S, client.RETRY_BASE_S * 2.0 ** attempt
            )
            assert 0.0 <= delay <= window

    def test_server_hint_honoured_exactly(self):
        client = ServeClient(retry_seed=1)
        assert client.retry_delay_s(0, 1.234) == 1.234
        assert client.retry_delay_s(3, 0.05) == 0.05
        # ... but never beyond the ceiling.
        assert client.retry_delay_s(0, 600.0) == client.RETRY_CAP_S

    def test_invalid_client_id_rejected(self):
        with pytest.raises(ValueError, match="client_id"):
            ServeClient(client_id="not ok!")


class TestSearchJobs:
    """Multi-objective search jobs: /pareto, streamed fronts, crash paths."""

    SEARCH = JobSpec(
        kernel="compress",
        max_size=64,
        min_size=16,
        tilings=(1,),
        search=SearchSettings(generations=3, population=6, seed=7),
    )

    def test_spec_with_search_round_trips(self):
        spec = self.SEARCH
        assert JobSpec.from_json(spec.to_json()) == spec
        assert spec.spec_hash != SMALL.spec_hash
        # Sweep specs stay byte-identical to the pre-search schema, so
        # historical spec hashes (and coalescing) are unaffected.
        assert "search" not in JobSpec(kernel="compress", max_size=64).to_json()

    def test_unknown_searcher_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="searcher"):
            JobSpec(
                kernel="compress",
                max_size=32,
                search={"searcher": "no-such-strategy"},
            )

    def test_pareto_requires_search_section(self, live):
        with pytest.raises(ServeError) as excinfo:
            live.client.pareto(SMALL, max_attempts=1)
        assert excinfo.value.status == 400
        assert "search" in excinfo.value.doc["error"]

    def test_pareto_streams_monotone_fronts(self, live):
        doc = live.client.pareto(self.SEARCH)
        job = live.client.wait(doc["job_id"], timeout_s=120)
        assert job["state"] == "done"
        fronts = list(live.client.fronts(doc["job_id"]))
        assert len(fronts) == self.SEARCH.search.generations
        assert [f["generation"] for f in fronts] == list(range(len(fronts)))
        series = [f["hypervolume"] for f in fronts]
        assert all(v is not None for v in series)
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
        for front in fronts:
            assert front["schema"] == "repro.front/1"
            assert front["archive_size"] == len(front["points"])
            assert front["evaluations"] <= self.SEARCH.search.budget
        result = live.client.result(doc["job_id"])
        assert len(result.estimates) == fronts[-1]["archive_size"]

    def test_search_manifest_records_searcher_and_front(self, live):
        from repro.registry import check_manifest

        doc = live.client.pareto(self.SEARCH)
        job = live.client.wait(doc["job_id"], timeout_s=120)
        manifest = job["manifest"]
        check_manifest(manifest)
        used = {(row["kind"], row["name"]) for row in manifest["plugins"]}
        assert ("searcher", "nsga2") in used
        assert manifest["seeds"]["search"] == self.SEARCH.search.seed
        search = manifest["search"]
        assert search["schema"] == "repro.front/1"
        assert search["generations"] == self.SEARCH.search.generations
        assert not search.get("partial")
        assert search["front"]

    def test_served_search_matches_direct_run(self, tmp_path):
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        try:
            job, _ = service.manager.submit(self.SEARCH)
            done = service.manager.wait(job.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
            served = service.job_result(done)
            direct = run_search(
                self.SEARCH.build_evaluator(),
                self.SEARCH.configs(),
                self.SEARCH.search,
            )
            assert [row["config"] for row in served["estimates"]] == [
                [e.config.size, e.config.line_size, e.config.ways, e.config.tiling]
                for e in direct.front
            ]
        finally:
            service.stop()

    def test_cancel_mid_search_persists_partial_front_then_resumes(
        self, tmp_path
    ):
        import os

        spec = JobSpec(
            kernel="compress",
            max_size=256,
            min_size=16,
            search=SearchSettings(generations=120, population=8, seed=3),
        )
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        try:
            job, _ = service.manager.submit(spec)
            deadline = time.time() + 60
            while time.time() < deadline:
                if any(e.get("event") == "front" for e in job.history):
                    break
                time.sleep(0.001)
            else:
                pytest.fail("no front event within 60s")
            service.manager.cancel(job.job_id)
            ended = service.manager.wait(job.job_id, timeout_s=120)
            assert ended is not None
            if ended.state == "cancelled":
                # The partial front was persisted for post-mortems...
                manifest = service.store.load_manifest(job.job_id)
                assert manifest is not None
                assert manifest["search"]["partial"] is True
                assert manifest["search"]["front"]
                # ... and the generation journal survived for the resume.
                journal = os.path.join(
                    str(tmp_path / "spool"), f"{spec.spec_hash}.moo.jsonl"
                )
                assert os.path.exists(journal)
            # A resubmission resumes (or re-serves) and finishes with the
            # same front a clean run produces.
            retry, _ = service.manager.submit(spec)
            done = service.manager.wait(retry.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
            served = service.job_result(done)
            direct = run_search(
                spec.build_evaluator(), spec.configs(), spec.search
            )
            assert [row["config"] for row in served["estimates"]] == [
                [e.config.size, e.config.line_size, e.config.ways, e.config.tiling]
                for e in direct.front
            ]
        finally:
            service.stop()

    def test_search_deadline_expires_while_queued_then_resumes(self, tmp_path):
        service = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        )
        job, _ = service.manager.submit(self.SEARCH, deadline_s=0.005)
        time.sleep(0.02)
        service.start()
        try:
            ended = service.manager.wait(job.job_id, timeout_s=120)
            assert ended is not None and ended.state == "cancelled"
            assert "deadline" in ended.error
            retry, coalesced = service.manager.submit(self.SEARCH)
            assert not coalesced
            done = service.manager.wait(retry.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
        finally:
            service.stop()

    def test_search_result_rebuilt_after_restart(self, tmp_path):
        first = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        job, _ = first.manager.submit(self.SEARCH)
        done = first.manager.wait(job.job_id, timeout_s=120)
        assert done is not None and done.state == "done"
        original = first.job_result(done)
        first.stop()

        second = ExplorationService(
            str(tmp_path / "results.db"), str(tmp_path / "spool")
        ).start()
        try:
            again = second.manager.get(job.job_id)
            assert again is not None and again.state == "done"
            rebuilt = second.job_result(again)
            assert rebuilt is not None
            assert rebuilt["estimates"] == original["estimates"]
        finally:
            second.stop()

    def test_search_and_sweep_specs_never_coalesce(self, tmp_path):
        manager = JobManager(open_store(str(tmp_path / "r.db")))
        sweep = JobSpec(kernel="compress", max_size=64, min_size=16, tilings=(1,))
        search_job, _ = manager.submit(self.SEARCH)
        sweep_job, coalesced = manager.submit(sweep)
        assert not coalesced
        assert search_job.job_id != sweep_job.job_id

    def test_search_job_total_work_is_budget(self):
        assert self.SEARCH.total_work() == self.SEARCH.search.budget
        assert SMALL.total_work() == len(SMALL.configs())
