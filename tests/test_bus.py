"""Tests for Gray coding and bus switching measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.bus import (
    address_bus_switching,
    bus_switching,
    gray_decode,
    gray_encode,
    hamming_distance,
)


class TestGrayCode:
    def test_known_values(self):
        # Classic 3-bit reflected Gray sequence.
        assert [gray_encode(n) for n in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_encode(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)

    @given(st.integers(0, 2 ** 40))
    @settings(max_examples=200, deadline=None)
    def test_decode_inverts_encode(self, n):
        assert gray_decode(gray_encode(n)) == n

    @given(st.integers(0, 2 ** 40))
    @settings(max_examples=200, deadline=None)
    def test_adjacent_codes_differ_in_one_bit(self, n):
        """The defining property: consecutive integers flip exactly one bit."""
        assert hamming_distance(gray_encode(n), gray_encode(n + 1)) == 1

    @given(st.integers(0, 2 ** 30), st.integers(0, 2 ** 30))
    @settings(max_examples=100, deadline=None)
    def test_gray_is_injective(self, a, b):
        if a != b:
            assert gray_encode(a) != gray_encode(b)


class TestHamming:
    def test_basics(self):
        assert hamming_distance(0, 0) == 0
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(255, 254) == 1


class TestBusSwitching:
    def test_sequential_gray_stream_switches_one_bit(self):
        """Gray coding makes a sequential address stream switch 1 bit/step."""
        assert bus_switching(list(range(100)), gray=True) == pytest.approx(1.0)

    def test_sequential_binary_stream_switches_more(self):
        binary = bus_switching(list(range(100)), gray=False)
        assert binary > 1.5  # average ~2 for counting

    def test_constant_stream_switches_nothing(self):
        assert bus_switching([7] * 10) == 0.0

    def test_short_streams(self):
        assert bus_switching([]) == 0.0
        assert bus_switching([3]) == 0.0

    def test_two_word_stream(self):
        # 0 -> 1 in Gray: one flip.
        assert bus_switching([0, 1], gray=True) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bus_switching([-1, 2])
        with pytest.raises(ValueError):
            bus_switching([[1, 2]])

    def test_address_alias(self):
        stream = [0, 4, 8, 12]
        assert address_bus_switching(stream) == bus_switching(stream)

    @given(st.lists(st.integers(0, 2 ** 32), min_size=2, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_switching_non_negative_and_bounded(self, words):
        value = bus_switching(words, gray=True)
        assert 0.0 <= value <= 64.0
