"""Smoke tests: every example script must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()  # every example prints its findings


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "mpeg_decoder",
        "energy_time_tradeoff",
        "offchip_layout",
        "custom_kernel",
        "cache_vs_scratchpad",
    } <= names
