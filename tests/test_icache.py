"""Tests for the instruction-cache extension."""

import pytest

from repro.core.config import CacheConfig
from repro.icache.blocks import BasicBlock, ControlFlowTrace, Program
from repro.icache.explorer import ICacheExplorer


@pytest.fixture
def program():
    return Program.sequential(
        [("prologue", 8), ("loop_body", 16), ("epilogue", 4)]
    )


@pytest.fixture
def execution(program):
    return ControlFlowTrace.loop(
        program,
        body=["loop_body"],
        iterations=50,
        prologue=["prologue"],
        epilogue=["epilogue"],
    )


class TestBasicBlock:
    def test_fetch_addresses(self):
        block = BasicBlock("b", address=100, instructions=3, instruction_size=4)
        assert block.fetch_addresses().tolist() == [100, 104, 108]
        assert block.size_bytes == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            BasicBlock("b", -1, 4)
        with pytest.raises(ValueError):
            BasicBlock("b", 0, 0)


class TestProgram:
    def test_sequential_layout(self, program):
        assert program.block("prologue").address == 0
        assert program.block("loop_body").address == 32
        assert program.block("epilogue").address == 96

    def test_footprint(self, program):
        assert program.footprint_bytes == (8 + 16 + 4) * 4

    def test_lookup_error(self, program):
        with pytest.raises(KeyError):
            program.block("nope")

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Program((BasicBlock("a", 0, 4), BasicBlock("b", 8, 4)))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Program((BasicBlock("a", 0, 2), BasicBlock("a", 100, 2)))


class TestControlFlowTrace:
    def test_dynamic_instruction_count(self, execution):
        assert execution.dynamic_instructions == 8 + 50 * 16 + 4

    def test_block_frequencies(self, execution):
        freq = execution.block_frequencies()
        assert freq == {"prologue": 1, "loop_body": 50, "epilogue": 1}

    def test_fetch_trace_is_all_reads(self, execution):
        trace = execution.fetch_trace()
        assert len(trace) == execution.dynamic_instructions
        assert trace.num_writes == 0

    def test_unknown_block_rejected(self, program):
        with pytest.raises(ValueError):
            ControlFlowTrace(program, ("missing",))

    def test_empty_trace(self, program):
        assert len(ControlFlowTrace(program, ()).fetch_trace()) == 0


class TestICacheExplorer:
    def test_loop_fits_after_warmup(self, program):
        execution = ControlFlowTrace.loop(program, ["loop_body"], 100)
        explorer = ICacheExplorer(execution)
        # 16 instructions x 4 bytes = 64 bytes of loop body: a 64-byte
        # i-cache holds it entirely, so only the first pass misses.
        est = explorer.evaluate(CacheConfig(64, 16))
        assert est.miss_rate < 0.01

    def test_too_small_cache_thrashes_less_with_bigger(self, execution):
        explorer = ICacheExplorer(execution)
        small = explorer.evaluate(CacheConfig(16, 16))
        large = explorer.evaluate(CacheConfig(128, 16))
        assert large.miss_rate <= small.miss_rate

    def test_tiling_rejected(self, execution):
        with pytest.raises(ValueError, match="tiling"):
            ICacheExplorer(execution).evaluate(CacheConfig(64, 16, 1, 4))

    def test_explore_space_pins_tiling(self, execution):
        result = ICacheExplorer(execution).explore(max_size=64, min_size=32)
        assert len(result) > 0
        assert all(e.config.tiling == 1 for e in result)

    def test_trace_is_cached(self, execution):
        explorer = ICacheExplorer(execution)
        assert explorer.trace is explorer.trace
