"""Tests for the victim cache."""

import pytest

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.trace import MemoryTrace
from repro.cache.victim import VictimCache


def geometry():
    return CacheGeometry(32, 4, 1)  # 8 direct-mapped sets


class TestBasics:
    def test_l1_hit(self):
        vc = VictimCache(geometry())
        assert vc.access(0) == "miss"
        assert vc.access(0) == "l1"

    def test_victim_absorbs_pingpong(self):
        """The canonical Jouppi case: two aliasing lines thrash a
        direct-mapped cache but ping-pong through the buffer."""
        vc = VictimCache(geometry(), victim_entries=1)
        trace = MemoryTrace([0, 32] * 20)
        stats = vc.run(trace)
        assert stats.misses == 2              # compulsory only
        assert stats.victim_hits == 38 - 0    # every later access swaps
        assert stats.victim_hit_rate == pytest.approx(38 / 40)

    def test_without_buffer_equivalence_to_direct_mapped(self):
        """Full misses + victim hits must equal the plain DM miss count."""
        trace = MemoryTrace(list(range(0, 256, 4)) * 3)
        vc = VictimCache(geometry(), victim_entries=4)
        stats = vc.run(trace)
        dm = CacheSimulator(geometry()).run(trace)
        assert stats.victim_hits + stats.misses == dm.misses

    def test_buffer_capacity_limits_absorption(self):
        # Three-way ping-pong with a 1-entry buffer cannot hold everything.
        trace = MemoryTrace([0, 32, 64] * 20)
        small = VictimCache(geometry(), victim_entries=1).run(trace)
        big = VictimCache(geometry(), victim_entries=2).run(trace)
        assert big.misses < small.misses

    def test_reset(self):
        vc = VictimCache(geometry())
        vc.access(0)
        vc.reset()
        assert vc.access(0) == "miss"
        assert vc.stats.accesses == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            VictimCache(CacheGeometry(32, 4, 2))
        with pytest.raises(ValueError):
            VictimCache(geometry(), victim_entries=0)


class TestStats:
    def test_rates(self):
        vc = VictimCache(geometry(), victim_entries=1)
        vc.run(MemoryTrace([0, 32] * 5))
        stats = vc.stats
        assert stats.miss_rate == pytest.approx(2 / 10)
        assert stats.l1_miss_rate == pytest.approx(1.0)

    def test_empty(self):
        stats = VictimCache(geometry()).stats
        assert stats.miss_rate == 0.0
        assert stats.victim_hit_rate == 0.0


class TestVersusLayout:
    def test_victim_recovers_most_of_the_layout_win(self):
        """The design question: a 4-entry buffer vs the Section 4.1 pass on
        the int-element Compress whose rows alias the cache."""
        from repro.kernels import make_compress

        kernel = make_compress(element_size=4)
        geo = CacheGeometry(64, 8, 1)
        dense = kernel.trace()
        plain = CacheSimulator(geo).run(dense)
        buffered = VictimCache(geo, victim_entries=4).run(dense)
        layout = kernel.optimized_layout(64, 8)
        relaid = CacheSimulator(geo).run(kernel.trace(layout=layout.layout))
        # The buffer removes most of the conflict thrash without relayout...
        assert buffered.miss_rate < plain.miss_rate / 2
        # ...but the software fix still wins outright.
        assert relaid.miss_rate <= buffered.miss_rate + 0.05
