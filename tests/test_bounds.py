"""Tests for static bounds checking."""

import pytest

from repro.kernels import available_kernels, get_kernel
from repro.loops.bounds import check_bounds, subscript_range
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var


class TestSubscriptRange:
    def _nest(self):
        i, j = var("i"), var("j")
        return LoopNest(
            name="t",
            loops=(Loop("i", 1, 5), Loop("j", 2, 4)),
            refs=(ArrayRef("a", (i, j)),),
            arrays=(ArrayDecl("a", (6, 5)),),
        )

    def test_positive_coefficients(self):
        nest = self._nest()
        assert subscript_range(nest, var("i") + var("j")) == (3, 9)

    def test_negative_coefficients(self):
        nest = self._nest()
        assert subscript_range(nest, -1 * var("i") + 10) == (5, 9)

    def test_mixed(self):
        nest = self._nest()
        assert subscript_range(nest, 2 * var("i") - var("j")) == (-2, 8)

    def test_constant(self):
        nest = self._nest()
        assert subscript_range(nest, var("i") * 0 + 7) == (7, 7)


class TestCheckBounds:
    def test_all_bundled_kernels_are_in_bounds(self):
        """The guard that keeps every figure honest: no kernel generates
        addresses outside its declared arrays."""
        for name in available_kernels():
            kernel = get_kernel(name)
            assert check_bounds(kernel.nest) == [], name

    def test_underflow_detected(self):
        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i - 1,)),),
            arrays=(ArrayDecl("a", (4,)),),
        )
        violations = check_bounds(nest)
        assert len(violations) == 1
        assert violations[0].lowest == -1
        assert "outside" in str(violations[0])

    def test_overflow_detected(self):
        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i + 1,)),),
            arrays=(ArrayDecl("a", (4,)),),
        )
        violations = check_bounds(nest)
        assert violations[0].highest == 4
        assert violations[0].extent == 4

    def test_multiple_dimensions_reported_independently(self):
        i, j = var("i"), var("j")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3), Loop("j", 0, 3)),
            refs=(ArrayRef("a", (i - 1, j + 1)),),
            arrays=(ArrayDecl("a", (4, 4)),),
        )
        violations = check_bounds(nest)
        assert {(v.ref_index, v.dimension) for v in violations} == {(0, 0), (0, 1)}

    def test_in_bounds_reference_clean(self):
        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 1, 3),),
            refs=(ArrayRef("a", (i - 1,)),),
            arrays=(ArrayDecl("a", (3,)),),
        )
        assert check_bounds(nest) == []
