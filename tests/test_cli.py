"""Tests for the memexplore CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["explore", "compress"],
            ["mincache", "compress"],
            ["layout", "compress"],
            ["mpeg"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "mpeg:idct" in out

    def test_mincache_reports_paper_numbers(self, capsys):
        assert main(["mincache", "compress", "--line-sizes", "4"]) == 0
        out = capsys.readouterr().out
        assert "lines=4" in out
        assert "size=16 bytes" in out

    def test_layout_reports_padding(self, capsys):
        assert main(
            ["layout", "compress", "--cache-size", "8", "--line-size", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "conflict_free=True" in out
        assert "(36, 1)" in out

    def test_explore_small_sweep(self, capsys):
        code = main(
            [
                "explore", "compress",
                "--max-size", "64", "--min-size", "32",
                "--tilings", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "min energy" in out

    def test_explore_infeasible_bound_fails(self, capsys):
        code = main(
            [
                "explore", "compress",
                "--max-size", "32", "--min-size", "32",
                "--tilings", "1",
                "--cycle-bound", "1",
            ]
        )
        assert code == 1
        assert "selection failed" in capsys.readouterr().err

    def test_explore_unoptimized_layout_flag(self, capsys):
        code = main(
            [
                "explore", "compress",
                "--max-size", "32", "--min-size", "32",
                "--tilings", "1", "--no-layout-opt",
            ]
        )
        assert code == 0

    def test_explore_alternative_sram(self, capsys):
        code = main(
            [
                "explore", "compress",
                "--max-size", "32", "--min-size", "32",
                "--tilings", "1", "--sram", "16Mbit",
            ]
        )
        assert code == 0


class TestNewCommands:
    def test_spm(self, capsys):
        assert main(["spm", "matadd", "--budgets", "32", "128"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "spm" in out

    def test_trace_stats(self, capsys):
        assert main(["trace", "compress", "--line-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "compulsory fraction" in out
        assert "miss-ratio curve" in out

    def test_trace_din_export(self, tmp_path, capsys):
        target = tmp_path / "t.din"
        assert main(["trace", "matadd", "--din", str(target)]) == 0
        content = target.read_text().splitlines()
        assert len(content) == 108  # 36 iterations x 3 refs
        assert content[0].split()[0] in ("0", "1")

    def test_trace_optimized_layout(self, capsys):
        assert main(
            ["trace", "compress", "--optimized", "--cache-size", "16",
             "--line-size", "4"]
        ) == 0

    def test_search(self, capsys):
        assert main(["search", "compress", "--max-size", "128"]) == 0
        out = capsys.readouterr().out
        assert "best (energy)" in out
        assert "evaluations spent" in out

    def test_codegen(self, capsys):
        assert main(
            ["codegen", "compress", "--cache-size", "8", "--line-size", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "void compress(void)" in out
        assert "36*(" in out  # the paper's padded pitch

    def test_codegen_tiled_dense(self, capsys):
        assert main(
            ["codegen", "matmul", "--tiling", "4", "--no-layout-opt"]
        ) == 0
        out = capsys.readouterr().out
        assert "for (int tj" in out

    def test_sensitivity(self, capsys):
        assert main(
            ["sensitivity", "compress", "--max-size", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "Em (main memory)" in out
        assert "swing" in out


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("memexplore ")
        assert out.split()[1][0].isdigit()

    def test_version_matches_package(self, capsys):
        import repro

        with pytest.raises(SystemExit):
            main(["--version"])
        assert repro.__version__ in capsys.readouterr().out


class TestKeyboardInterrupt:
    def test_ctrl_c_returns_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        # main() rebuilds the parser per call, so the subcommand default
        # picks up the patched module global.
        monkeypatch.setattr(cli, "_cmd_list", interrupted)
        assert cli.main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestServeCommands:
    def test_parsers_wired(self):
        parser = build_parser()
        for argv in (
            ["serve", "--port", "0"],
            ["submit", "compress", "--no-wait"],
            ["jobs"],
            ["jobs", "some-job-id", "--wait"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_submit_and_jobs_against_live_service(self, tmp_path, capsys):
        import threading

        from repro.serve import ExplorationService, make_server

        service = ExplorationService(
            str(tmp_path / "r.db"), str(tmp_path / "spool")
        ).start()
        httpd = make_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        server = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            code = main(
                ["submit", "compress", "--max-size", "32", "--tilings", "1",
                 "--server", server]
            )
            captured = capsys.readouterr()
            assert code == 0
            assert "min energy" in captured.out
            job_id = captured.err.split()[1]

            assert main(["jobs", "--server", server]) == 0
            assert job_id in capsys.readouterr().out

            # `jobs <id> --wait` renders the same result byte-for-byte.
            assert main(["jobs", job_id, "--wait", "--server", server]) == 0
            assert capsys.readouterr().out == captured.out
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()

    def test_submit_unreachable_server_fails_cleanly(self):
        from repro.serve import ServeError

        with pytest.raises(ServeError, match="cannot reach"):
            main(
                ["submit", "compress", "--no-wait",
                 "--server", "http://127.0.0.1:1"]
            )

    def test_top_one_shot_against_live_service(self, tmp_path, capsys):
        import threading

        from repro.serve import ExplorationService, make_server

        service = ExplorationService(
            str(tmp_path / "r.db"), str(tmp_path / "spool")
        ).start()
        httpd = make_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        server = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            job, _ = service.submit(
                {"spec": {"kernel": "compress", "max_size": 32,
                          "tilings": [1]}}
            )
            service.manager.wait(job.job_id, timeout_s=120)
            assert main(
                ["top", "--server", server, "--iterations", "2",
                 "--interval", "0.05"]
            ) == 0
            out = capsys.readouterr().out
            assert "repro top" in out
            assert "configs/s" in out
            assert "done=1" in out
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()

    def test_top_unreachable_server_is_exit_1(self, capsys):
        assert main(
            ["top", "--server", "http://127.0.0.1:1", "--iterations", "1"]
        ) == 1
        assert "error:" in capsys.readouterr().out


class TestStatsFromFile:
    def test_renders_written_report(self, tmp_path, capsys):
        target = tmp_path / "obs.json"
        assert main(
            ["stats", "compress", "--max-size", "32", "--tilings", "1",
             "--metrics-out", str(target)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "--from", str(target)]) == 0
        out = capsys.readouterr().out
        assert "per-stage timing" in out
        assert "engine.configs_evaluated" in out

    def test_missing_file_is_one_line_exit_2(self, tmp_path, capsys):
        assert main(["stats", "--from", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read metrics report")
        assert len(err.strip().splitlines()) == 1

    def test_corrupt_file_is_one_line_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", "--from", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: corrupt metrics report")
        assert len(err.strip().splitlines()) == 1

    def test_wrong_document_is_one_line_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "other.json"
        bad.write_text('{"rows": []}')
        assert main(["stats", "--from", str(bad)]) == 2
        assert "not a repro.obs document" in capsys.readouterr().err

    def test_wrong_schema_is_one_line_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "vnext.json"
        bad.write_text('{"schema": "repro.obs/99"}')
        assert main(["stats", "--from", str(bad)]) == 2
        assert "unsupported report schema" in capsys.readouterr().err

    def test_stats_without_kernel_or_file_is_exit_2(self, capsys):
        assert main(["stats"]) == 2
        assert "needs a kernel" in capsys.readouterr().err


class TestRegistryIntegration:
    def test_explore_writes_manifest(self, tmp_path, capsys):
        target = tmp_path / "run.json"
        code = main(
            [
                "explore", "compress",
                "--max-size", "32", "--min-size", "32",
                "--tilings", "1", "--manifest-out", str(target),
            ]
        )
        assert code == 0
        assert "wrote repro.manifest/1 manifest" in capsys.readouterr().err
        import json as _json

        from repro.registry import check_manifest

        manifest = check_manifest(_json.loads(target.read_text()))
        used = {(row["kind"], row["name"]) for row in manifest["plugins"]}
        assert ("kernel", "compress") in used
        # The default engine backend is the "auto" alias (one-pass grid).
        assert ("backend", "auto") in used
        assert manifest["eval_id"]
        assert manifest["sweep_fingerprint"]

    def test_explore_kamble_ghose_energy_model(self, capsys):
        code = main(
            [
                "explore", "compress",
                "--max-size", "32", "--min-size", "32",
                "--tilings", "1", "--energy-model", "kamble-ghose",
            ]
        )
        assert code == 0
        assert "Pareto frontier" in capsys.readouterr().out

    def test_unknown_kernel_is_exit_2_with_suggestion(self, capsys):
        for argv in (["explore", "comprss"], ["mincache", "comprss"],
                     ["datasheet", "comprss"]):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert "unknown kernel 'comprss'" in err
            assert "did you mean 'compress'" in err

    def test_plugins_lists_every_kind(self, capsys):
        assert main(["plugins"]) == 0
        out = capsys.readouterr().out
        for name in ("fastsim", "compress", "hwo", "CY7C-2Mbit", "sqlite"):
            assert name in out

    def test_submit_rejects_energy_model(self, capsys):
        code = main(
            ["submit", "compress", "--energy-model", "kamble-ghose",
             "--server", "http://127.0.0.1:1", "--no-wait"]
        )
        assert code == 2
        assert "does not support --energy-model" in capsys.readouterr().err
