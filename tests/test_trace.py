"""Distributed tracing (``repro.obs.trace``) and Prometheus exposition.

Unit-level claims, no server involved:

* spans closing inside a ``tracing()`` context aggregate by path into the
  recorder, with wall-clock extents, while leaving the profiling span
  collector alone;
* the worker protocol (``export_context`` -> ``activate_remote`` ->
  ``snapshot`` -> ``merge``) is lossless: counts add, extents widen,
  worker pids union;
* ``build_document`` produces ``repro.trace/1`` with deterministic,
  internally consistent parent/child links;
* the Prometheus text rendering round-trips through the strict parser,
  and the parser actually rejects malformed input;
* log-bucketed histogram percentiles merge exactly across registries
  (bucket counts are additive), which is what makes fleet-wide p95 honest.
"""

import time

import pytest

from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
)
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.spans import get_collector, span
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    build_document,
    tracing,
)
from repro.serve.top import render as render_top


class TestRecorder:
    def test_record_aggregates_by_path(self):
        recorder = TraceRecorder("t1")
        recorder.record(("sweep", "evaluate"), 1.0, 1.5)
        recorder.record(("sweep", "evaluate"), 2.0, 2.25)
        recorder.record(("sweep",), 0.5, 3.0)
        assert len(recorder) == 2
        events = {tuple(e["path"]): e for e in recorder.snapshot()}
        ev = events[("sweep", "evaluate")]
        assert ev["count"] == 2
        assert ev["total_s"] == pytest.approx(0.75)
        # Extents widen to the earliest start / latest end.
        assert ev["end_s"] - ev["start_s"] == pytest.approx(1.25)

    def test_base_path_prefixes_events(self):
        recorder = TraceRecorder("t1", base_path=("job", "sweep"))
        recorder.record(("chunk[0]",), 0.0, 1.0)
        assert recorder.snapshot()[0]["path"] == ["job", "sweep", "chunk[0]"]

    def test_first_attrs_win(self):
        recorder = TraceRecorder("t1")
        recorder.record(("a",), 0.0, 1.0, {"configs": 4})
        recorder.record(("a",), 1.0, 2.0, {"configs": 9})
        assert recorder.snapshot()[0]["attrs"] == {"configs": 4}

    def test_event_cap_counts_drops(self):
        recorder = TraceRecorder("t1")
        for index in range(obs_trace.MAX_EVENTS + 7):
            recorder.add_event((f"s{index}",), 0.0, 0.1)
        assert len(recorder) == obs_trace.MAX_EVENTS
        assert recorder.dropped == 7

    def test_merge_is_lossless(self):
        parent = TraceRecorder("t1")
        parent.record(("sweep",), 0.0, 5.0)
        worker = TraceRecorder("t1", base_path=("sweep",))
        worker.record(("chunk[0]", "evaluate"), 1.0, 2.0)
        worker.record(("chunk[0]", "evaluate"), 2.0, 3.0)
        parent.merge(worker.snapshot())
        events = {tuple(e["path"]): e for e in parent.snapshot()}
        merged = events[("sweep", "chunk[0]", "evaluate")]
        assert merged["count"] == 2
        assert merged["total_s"] == pytest.approx(2.0)
        assert merged["workers"], "worker pid carried through the merge"


class TestContext:
    def test_spans_record_into_active_trace(self):
        spans_before = len(get_collector().snapshot())
        with tracing("abc") as recorder:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.001)
        events = {tuple(e["path"]) for e in recorder.snapshot()}
        assert events == {("outer",), ("outer", "inner")}
        # Tracing alone must not feed the profiling collector.
        assert len(get_collector().snapshot()) == spans_before

    def test_no_recorder_outside_context(self):
        assert obs_trace.current_trace() is None
        with tracing("abc"):
            assert obs_trace.trace_active()
        assert obs_trace.current_trace() is None

    def test_export_activate_round_trip(self):
        with tracing("abc") as parent:
            context = obs_trace.export_context(("job", "sweep"))
        assert context == {"trace_id": "abc", "path": ["job", "sweep"]}
        token = obs_trace.activate_remote(context)
        assert token is not None
        _, remote = token
        try:
            with span("chunk[0]"):
                pass
        finally:
            obs_trace.deactivate(token)
        parent.merge(remote.snapshot())
        paths = {tuple(e["path"]) for e in parent.snapshot()}
        assert ("job", "sweep", "chunk[0]") in paths

    def test_activate_remote_none_is_noop(self):
        assert obs_trace.activate_remote(None) is None
        obs_trace.deactivate(None)  # must not raise


class TestDocument:
    def test_parent_links_are_consistent(self):
        recorder = TraceRecorder("t1")
        recorder.record(("job",), 0.0, 10.0)
        recorder.record(("job", "sweep"), 1.0, 8.0)
        recorder.record(("job", "sweep", "chunk[0]"), 2.0, 3.0)
        doc = build_document(recorder, job_id="j-1")
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["job_id"] == "j-1"
        by_path = {tuple(e["path"]): e for e in doc["events"]}
        root = by_path[("job",)]
        assert root["parent_id"] is None
        assert by_path[("job", "sweep")]["parent_id"] == root["span_id"]
        assert (
            by_path[("job", "sweep", "chunk[0]")]["parent_id"]
            == by_path[("job", "sweep")]["span_id"]
        )
        # span ids are deterministic functions of (trace_id, path).
        again = build_document(recorder, job_id="j-1")
        assert [e["span_id"] for e in again["events"]] == [
            e["span_id"] for e in doc["events"]
        ]

    def test_events_sorted_by_start_with_wall_extent(self):
        recorder = TraceRecorder("t1")
        recorder.add_event(("b",), 5.0, 1.0)
        recorder.add_event(("a",), 2.0, 10.0)
        doc = build_document(recorder)
        assert [e["name"] for e in doc["events"]] == ["a", "b"]
        assert doc["started_s"] == 2.0
        assert doc["duration_s"] == pytest.approx(10.0)

    def test_orphan_paths_have_no_parent(self):
        recorder = TraceRecorder("t1", base_path=("job",))
        recorder.record(("sweep", "chunk[0]"), 0.0, 1.0)
        doc = build_document(recorder)
        (event,) = doc["events"]
        assert event["parent_id"] is None  # ("job","sweep") never recorded


class TestPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("engine.configs_evaluated").inc(42)
        registry.gauge("serve.queue_depth").set(3)
        hist = registry.histogram("serve.http.request")
        for value in (0.001, 0.004, 0.2):
            hist.observe(value)
        return registry

    def test_render_parses_and_validates(self):
        text = render_prometheus(self._registry().snapshot())
        families = parse_prometheus(text)
        assert families["repro_engine_configs_evaluated_total"]["type"] == (
            "counter"
        )
        assert families["repro_serve_queue_depth"]["type"] == "gauge"
        request = families["repro_serve_http_request"]
        assert request["type"] == "histogram"
        # One sample per bound, plus +Inf, _sum and _count.
        assert len(request["samples"]) == len(BUCKET_BOUNDS) + 3

    def test_histogram_buckets_are_cumulative_and_complete(self):
        text = render_prometheus(self._registry().snapshot())
        count = None
        running = None
        for line in text.splitlines():
            if line.startswith("repro_serve_http_request_bucket"):
                value = float(line.rsplit(" ", 1)[1])
                assert running is None or value >= running
                running = value
            if line.startswith("repro_serve_http_request_count"):
                count = float(line.rsplit(" ", 1)[1])
        assert count == 3.0 and running == 3.0

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_x{le= 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE repro_x sideways\nrepro_x 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("no spaces or value")
        with pytest.raises(ValueError):
            # Histogram whose _count disagrees with its +Inf bucket.
            parse_prometheus(
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 1\n'
                'repro_h_bucket{le="+Inf"} 2\n'
                "repro_h_sum 1.0\n"
                "repro_h_count 5\n"
            )

    def test_percentiles_merge_exactly_across_registries(self):
        # Two processes observe disjoint halves; merging their snapshots
        # must give the same percentiles as one process seeing everything.
        samples = [0.0001 * (i + 1) for i in range(200)]
        whole = MetricsRegistry()
        left, right = MetricsRegistry(), MetricsRegistry()
        for index, value in enumerate(samples):
            whole.histogram("h").observe(value)
            (left if index % 2 else right).histogram("h").observe(value)
        merged = MetricsRegistry()
        merged.merge(left.snapshot())
        merged.merge(right.snapshot())
        for q in ("p50", "p95", "p99"):
            assert (
                merged.snapshot()["histograms"]["h"][q]
                == whole.snapshot()["histograms"]["h"][q]
            )

    def test_percentile_within_one_bucket_of_truth(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (0.001, 0.002, 0.003, 0.004, 0.1):
            hist.observe(value)
        summary = registry.snapshot()["histograms"]["h"]
        # p50 of [1,2,3,4,100]ms is 3ms; the bucket ladder may round up
        # to the covering bound but never past the next decade step.
        assert 0.002 <= summary["p50"] <= 0.005
        assert summary["p99"] == pytest.approx(0.1)


class TestTopRender:
    def _sample(self, at, evaluated, jobs=()):
        return {
            "at": at,
            "health": {"status": "ok", "version": "1.0"},
            "report": {
                "metrics": {
                    "counters": {
                        "engine.configs_evaluated": evaluated,
                        "store.hits": 30,
                        "store.misses": 10,
                    },
                    "histograms": {
                        "engine.eval": {
                            "count": 5,
                            "p50": 0.001,
                            "p95": 0.002,
                            "p99": 0.002,
                            "max": 0.003,
                        }
                    },
                }
            },
            "jobs": list(jobs),
        }

    def test_renders_rates_and_percentiles(self):
        job = {
            "job_id": "j-1",
            "state": "running",
            "done_configs": 3,
            "total_configs": 9,
            "spec": {"kernel": "compress"},
        }
        previous = self._sample(100.0, 100)
        sample = self._sample(102.0, 200, jobs=[job])
        screen = render_top(sample, previous)
        assert "50.0 configs/s" in screen
        assert "hit rate: 0.750" in screen
        assert "running=1" in screen
        assert "3/9" in screen
        assert "1.00ms" in screen  # engine.eval p50

    def test_first_sample_has_no_rate(self):
        screen = render_top(self._sample(100.0, 100))
        assert "- configs/s" in screen
        assert "(no jobs yet)" in screen
