"""Tests for the Section 2.3 energy model."""

import pytest

from repro.energy.model import EnergyModel
from repro.energy.params import SRAM_16MBIT, TechnologyParams


@pytest.fixture
def model():
    return EnergyModel()


class TestComponents:
    def test_cell_geometry(self, model):
        assert model.cell_geometry(64, 8, 1) == (64, 8)
        assert model.cell_geometry(64, 8, 2) == (128, 4)

    def test_cell_geometry_validation(self, model):
        with pytest.raises(ValueError):
            model.cell_geometry(0, 8, 1)
        with pytest.raises(ValueError):
            model.cell_geometry(16, 8, 4)

    def test_e_cell_scales_linearly_with_size(self, model):
        """word_line * bit_line == 8T: hit energy is linear in capacity."""
        e64 = model.e_cell(64, 8, 1)
        e128 = model.e_cell(128, 8, 1)
        e128_assoc = model.e_cell(128, 8, 4)
        assert e128 == pytest.approx(2 * e64)
        assert e128_assoc == pytest.approx(e128)  # independent of S and L

    def test_e_dec_proportional_to_switching(self, model):
        assert model.e_dec(4.0) == pytest.approx(2 * model.e_dec(2.0))
        assert model.e_dec(0.0) == 0.0

    def test_e_io_and_e_main_grow_with_line_size(self, model):
        assert model.e_io(32, 2.0) > model.e_io(8, 2.0)
        assert model.e_main(32) > model.e_main(8)

    def test_e_main_dominated_by_em_times_line(self, model):
        # Em * L is the headline term: 4.95 * 8 = 39.6 nJ at L=8.
        assert model.e_main(8) == pytest.approx(39.6, rel=0.05)

    def test_em_from_catalog(self):
        assert EnergyModel(sram=SRAM_16MBIT).em == 43.56


class TestBreakdown:
    def test_total_composition(self, model):
        b = model.breakdown(64, 8, 1, hit_rate=0.9, miss_rate=0.1,
                            events=100, add_bs=2.0)
        assert b.e_hit == pytest.approx(b.e_dec + b.e_cell)
        assert b.e_miss == pytest.approx(b.e_hit + b.e_io + b.e_main)
        expected = 100 * (0.9 * b.e_hit + 0.1 * b.e_miss)
        assert b.total == pytest.approx(expected)

    def test_all_hits_cost_hit_energy(self, model):
        b = model.breakdown(64, 8, 1, 1.0, 0.0, 10, 1.0)
        assert b.per_access == pytest.approx(b.e_hit)

    def test_all_misses_cost_miss_energy(self, model):
        b = model.breakdown(64, 8, 1, 0.0, 1.0, 10, 1.0)
        assert b.per_access == pytest.approx(b.e_miss)

    def test_total_energy_convenience(self, model):
        direct = model.total_energy(64, 8, 1, miss_rate=0.25, events=40, add_bs=1.0)
        b = model.breakdown(64, 8, 1, 0.75, 0.25, 40, 1.0)
        assert direct == pytest.approx(b.total)

    def test_monotone_in_miss_rate(self, model):
        low = model.total_energy(64, 8, 1, 0.1, 100, 2.0)
        high = model.total_energy(64, 8, 1, 0.5, 100, 2.0)
        assert high > low

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hit_rate": 1.2, "miss_rate": 0.0},
            {"hit_rate": 0.5, "miss_rate": 0.3},
            {"hit_rate": 0.9, "miss_rate": 0.1, "events": -1},
            {"hit_rate": 0.9, "miss_rate": 0.1, "add_bs": -0.5},
        ],
    )
    def test_validation(self, model, kwargs):
        args = {"hit_rate": 0.9, "miss_rate": 0.1, "events": 10, "add_bs": 1.0}
        args.update(kwargs)
        with pytest.raises(ValueError):
            model.breakdown(64, 8, 1, **args)


class TestEmRegimes:
    """Section 3's point: the Em value flips the energy-vs-geometry trend."""

    def test_high_em_rewards_miss_reduction(self):
        small_em = EnergyModel()
        big_em = EnergyModel(sram=SRAM_16MBIT)
        # Pay 1% miss rate at T=512 versus 10% at T=16.
        e_small_cache = {
            "low": small_em.total_energy(16, 8, 1, 0.10, 1000, 1.0),
            "high": big_em.total_energy(16, 8, 1, 0.10, 1000, 1.0),
        }
        e_big_cache = {
            "low": small_em.total_energy(512, 8, 1, 0.01, 1000, 1.0),
            "high": big_em.total_energy(512, 8, 1, 0.01, 1000, 1.0),
        }
        # With the big Em the big cache wins; with the small Em it loses.
        assert e_big_cache["high"] < e_small_cache["high"]
        assert e_big_cache["low"] > e_small_cache["low"]

    def test_custom_scale_propagates(self):
        tech = TechnologyParams(capacitive_scale_nj=1e-3)
        scaled = EnergyModel(tech=tech)
        default = EnergyModel()
        assert scaled.e_cell(64, 8, 1) == pytest.approx(
            default.e_cell(64, 8, 1) / 2
        )


class TestSubbankingAndPhased:
    def test_subbanking_divides_cell_energy(self):
        mono = EnergyModel()
        banked = EnergyModel(subbanks=4)
        assert banked.e_cell(512, 8, 1) == pytest.approx(
            mono.e_cell(512, 8, 1) / 4
        )

    def test_subbanking_must_divide_sets(self):
        banked = EnergyModel(subbanks=8)
        with pytest.raises(ValueError, match="sub-banks"):
            banked.e_cell(32, 8, 1)  # 4 sets, 8 banks

    def test_phased_divides_by_ways(self):
        normal = EnergyModel()
        phased = EnergyModel(phased=True)
        assert phased.e_cell(64, 8, 4) == pytest.approx(
            normal.e_cell(64, 8, 4) / 4
        )

    def test_phased_no_effect_direct_mapped(self):
        normal = EnergyModel()
        phased = EnergyModel(phased=True)
        assert phased.e_cell(64, 8, 1) == normal.e_cell(64, 8, 1)

    def test_off_chip_terms_untouched(self):
        banked = EnergyModel(subbanks=4, phased=True)
        plain = EnergyModel()
        assert banked.e_main(16) == plain.e_main(16)
        assert banked.e_io(16, 2.0) == plain.e_io(16, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(subbanks=0)
