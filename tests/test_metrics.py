"""Tests for PerformanceEstimate."""

import pytest

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate


def estimate(**overrides):
    defaults = dict(
        config=CacheConfig(64, 8),
        miss_rate=0.1,
        cycles=5000.0,
        energy_nj=2000.0,
        events=961,
        accesses=4805,
        reads=3844,
        read_miss_rate=0.12,
        add_bs=2.5,
    )
    defaults.update(overrides)
    return PerformanceEstimate(**defaults)


class TestEstimate:
    def test_derived_rates(self):
        e = estimate()
        assert e.hit_rate == pytest.approx(0.9)
        assert e.cycles_per_event == pytest.approx(5000 / 961)
        assert e.energy_per_event_nj == pytest.approx(2000 / 961)

    def test_empty_run(self):
        e = estimate(events=0, accesses=0, reads=0, miss_rate=0.0,
                     cycles=0.0, energy_nj=0.0, read_miss_rate=0.0)
        assert e.cycles_per_event == 0.0
        assert e.energy_per_event_nj == 0.0

    def test_record_is_paper_tuple(self):
        e = estimate(config=CacheConfig(64, 8, 2, 4))
        t, l, s, b, mr, c, energy = e.record()
        assert (t, l, s, b) == (64, 8, 2, 4)
        assert mr == e.miss_rate
        assert c == e.cycles
        assert energy == e.energy_nj

    def test_str_contains_label(self):
        assert "C64L8" in str(estimate())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"miss_rate": 1.5},
            {"read_miss_rate": -0.1},
            {"cycles": -1.0},
            {"energy_nj": -1.0},
            {"events": -1},
            {"reads": 9999999},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            estimate(**overrides)


class TestDominance:
    def test_strictly_better_dominates(self):
        a = estimate(cycles=100.0, energy_nj=100.0)
        b = estimate(cycles=200.0, energy_nj=200.0)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        a = estimate(cycles=100.0, energy_nj=300.0)
        b = estimate(cycles=300.0, energy_nj=100.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = estimate()
        b = estimate()
        assert not a.dominates(b)

    def test_better_in_one_equal_in_other(self):
        a = estimate(cycles=100.0, energy_nj=100.0)
        b = estimate(cycles=100.0, energy_nj=150.0)
        assert a.dominates(b)


class TestAveragePower:
    def test_units(self):
        # 1000 nJ over 1000 cycles at 100 MHz: runtime 10 us -> 100 mW.
        e = estimate(energy_nj=1000.0, cycles=1000.0)
        assert e.average_power_mw(100.0) == pytest.approx(100.0)

    def test_faster_clock_higher_power(self):
        e = estimate()
        assert e.average_power_mw(200.0) == pytest.approx(
            2 * e.average_power_mw(100.0)
        )

    def test_zero_cycles(self):
        e = estimate(cycles=0.0, miss_rate=0.0)
        assert e.average_power_mw(100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate().average_power_mw(0.0)
