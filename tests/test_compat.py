"""Tests for the Section 4.1 compatibility predicate."""

from repro.kernels import (
    make_compress,
    make_dequant,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
    make_transpose,
)
from repro.loops.compat import are_compatible, nest_is_compatible
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var


class TestAreCompatible:
    def test_shifted_references_compatible(self):
        """The paper's example: a[i] and a[i-2] are compatible."""
        i = var("i")
        assert are_compatible(
            ArrayRef("a", (i,)), ArrayRef("a", (i - 2,)), ("i",)
        )

    def test_different_arrays_same_h_compatible(self):
        i = var("i")
        assert are_compatible(ArrayRef("a", (i,)), ArrayRef("b", (i + 5,)), ("i",))

    def test_different_linear_parts_incompatible(self):
        i, j = var("i"), var("j")
        assert not are_compatible(
            ArrayRef("a", (i, j)), ArrayRef("a", (j, i)), ("i", "j")
        )

    def test_scaled_index_incompatible(self):
        i = var("i")
        assert not are_compatible(
            ArrayRef("a", (i,)), ArrayRef("a", (2 * i,)), ("i",)
        )

    def test_rank_mismatch_incompatible(self):
        i = var("i")
        assert not are_compatible(
            ArrayRef("a", (i,)), ArrayRef("b", (i, i)), ("i",)
        )


class TestNestCompatibility:
    def test_fully_compatible_kernels(self):
        for kernel in (
            make_compress(),
            make_matadd(),
            make_pde(),
            make_sor(),
            make_dequant(),
        ):
            assert nest_is_compatible(kernel.nest), kernel.name

    def test_incompatible_kernels(self):
        assert not nest_is_compatible(make_matmul().nest)
        assert not nest_is_compatible(make_transpose().nest)

    def test_trivial_nests_compatible(self):
        i = var("i")
        single = LoopNest(
            name="one",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (4,)),),
        )
        assert nest_is_compatible(single)
        empty = LoopNest(
            name="none", loops=(Loop("i", 0, 3),), refs=(), arrays=()
        )
        assert nest_is_compatible(empty)
