"""Tests for cache configurations and the design space."""

import pytest

from repro.core.config import CacheConfig, design_space, powers_of_two


class TestPowersOfTwo:
    def test_inclusive_range(self):
        assert powers_of_two(4, 64) == (4, 8, 16, 32, 64)

    def test_non_power_bounds(self):
        assert powers_of_two(5, 20) == (8, 16)

    def test_empty(self):
        assert powers_of_two(65, 64) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            powers_of_two(0, 8)


class TestCacheConfig:
    def test_derived_quantities(self):
        c = CacheConfig(64, 8, 2, 4)
        assert c.num_lines == 8
        assert c.num_sets == 4

    def test_labels(self):
        assert CacheConfig(64, 16).label() == "C64L16"
        assert CacheConfig(64, 16).label(full=True) == "C64L16S1B1"
        assert CacheConfig(64, 16, 2, 8).label() == "C64L16S2B8"
        assert str(CacheConfig(16, 4)) == "C16L4S1B1"

    def test_with_helpers(self):
        c = CacheConfig(64, 8)
        assert c.with_tiling(4).tiling == 4
        assert c.with_ways(2).ways == 2
        assert c.with_ways(2).size == 64

    def test_ordering(self):
        assert CacheConfig(16, 4) < CacheConfig(32, 4)

    @pytest.mark.parametrize(
        "args",
        [
            (48, 8),     # size not a power of two
            (64, 6),     # line not a power of two
            (64, 128),   # line exceeds size
            (64, 8, 3),  # ways not a power of two
            (64, 8, 16), # more ways than lines
            (64, 8, 1, 3),  # tiling not a power of two
        ],
    )
    def test_invalid_configs(self, args):
        with pytest.raises(ValueError):
            CacheConfig(*args)

    def test_tiling_beyond_line_count_allowed(self):
        """Figures 6/7 plot tiling sizes past T/L; the constructor allows it."""
        assert CacheConfig(64, 8, 1, 16).tiling == 16


class TestDesignSpace:
    def test_respects_paper_bounds(self):
        configs = list(design_space(max_size=64, min_size=16, min_line=4))
        assert configs
        for c in configs:
            assert 16 <= c.size <= 64
            assert c.line_size >= 4
            assert c.ways <= 8
            assert c.tiling <= c.num_lines  # Algorithm MemExplore's bound

    def test_all_unique(self):
        configs = list(design_space(max_size=128))
        assert len(configs) == len(set(configs))

    def test_explicit_dimensions(self):
        configs = list(
            design_space(
                max_size=64,
                sizes=(32, 64),
                line_sizes=(8,),
                ways=(1, 2),
                tilings=(1,),
            )
        )
        assert {(c.size, c.line_size) for c in configs} == {(32, 8), (64, 8)}
        assert all(c.tiling == 1 for c in configs)

    def test_infeasible_explicit_combinations_skipped(self):
        configs = list(
            design_space(
                max_size=32,
                sizes=(16,),
                line_sizes=(8, 32),  # 32 > 16 must be dropped
                ways=(1, 4),         # 4 ways > 2 lines must be dropped
                tilings=(1,),
            )
        )
        assert {(c.size, c.line_size, c.ways) for c in configs} == {(16, 8, 1)}

    def test_known_count(self):
        # T=16: L in {4, 8, 16}; per (T, L): ways x tilings as bounded.
        configs = list(design_space(max_size=16, min_size=16, min_line=4))
        by_line = {}
        for c in configs:
            by_line.setdefault(c.line_size, 0)
            by_line[c.line_size] += 1
        # L=4: 4 lines -> ways {1,2,4} x tilings {1,2,4} = 9
        assert by_line[4] == 9
        # L=16: 1 line -> ways {1} x tilings {1} = 1
        assert by_line[16] == 1
