"""Plugin registry: discovery, collisions, provenance and run manifests.

Third-party discovery is exercised without installing anything: a
:class:`~repro.registry.PluginRegistry` accepts an ``entry_points``
callable, so tests feed it fake entry points that look exactly like the
``repro.plugins`` group of an installed distribution.
"""

import json
import types
import warnings

import pytest

from repro.cli import main
from repro.engine import available_backends, get_backend
from repro.engine.backends import FastSimBackend
from repro.kernels import Kernel, available_kernels, get_kernel, make_compress
from repro.registry import (
    KINDS,
    MANIFEST_SCHEMA,
    PluginCollisionWarning,
    PluginError,
    PluginRegistry,
    UnknownPluginError,
    build_manifest,
    check_manifest,
    get_registry,
    reset_registry,
)


class FakeEntryPoint:
    """Just enough of ``importlib.metadata.EntryPoint`` for discovery."""

    def __init__(self, name, register_fn, value="demo_plugin:register",
                 dist_name="demo-plugin", dist_version="9.9"):
        self.name = name
        self.value = value
        self._register = register_fn
        self.dist = types.SimpleNamespace(name=dist_name, version=dist_version)

    def load(self):
        if isinstance(self._register, Exception):
            raise self._register
        return self._register


class DemoBackend(FastSimBackend):
    """A third-party miss-measurement backend (inherits the fast path)."""

    name = "demo"


@pytest.fixture
def install_plugins():
    """Swap in a registry whose entry points come from fake distributions.

    Returns an installer: call it with :class:`FakeEntryPoint` objects and
    the process-wide registry is replaced by one that discovers exactly
    those (plus the built-ins, which always register first).  The original
    registry is restored afterwards.
    """
    def _install(*eps):
        registry = PluginRegistry(entry_points=lambda: list(eps))
        reset_registry(registry)
        return registry

    yield _install
    reset_registry(None)


def _demo_register(hook):
    hook.backend("demo", DemoBackend)
    hook.kernel("demo-kernel", make_compress)


# ---------------------------------------------------------------------------
# built-ins


def test_builtins_cover_every_kind():
    registry = get_registry()
    assert registry.names("backend") == (
        "analytic", "auto", "fastsim", "onepass", "reference", "sampled",
    )
    assert "compress" in registry.names("kernel")
    assert "mpeg:idct" in registry.names("kernel")
    assert registry.names("energy") == ("hwo", "kamble-ghose")
    assert registry.names("sram") == (
        "16Mbit", "CY7C-2Mbit", "low-power-2Mbit",
    )
    assert registry.names("store") == ("sqlite",)
    assert registry.names("searcher") == ("ge", "greedy", "nsga2", "pruned")


def test_builtin_provenance_rows():
    for info in get_registry().infos():
        assert info.kind in KINDS
        assert info.origin == "builtin"
        assert info.version
        row = info.to_json()
        assert sorted(row) == ["kind", "name", "origin", "version"]


def test_builtin_kernel_roundtrip():
    kernel = get_registry().create("kernel", "compress")
    assert isinstance(kernel, Kernel)
    assert kernel.name == get_kernel("compress").name


# ---------------------------------------------------------------------------
# third-party discovery (no pip install involved)


def test_plugin_backend_and_kernel_discovered(install_plugins):
    install_plugins(FakeEntryPoint("demo", _demo_register))
    assert "demo" in available_backends()
    assert "demo-kernel" in available_kernels()
    assert isinstance(get_backend("demo"), DemoBackend)
    assert isinstance(get_kernel("demo-kernel"), Kernel)
    info = get_registry().get("backend", "demo")
    assert info.origin == "demo-plugin"
    assert info.version == "9.9"


def test_plugin_usable_from_cli_plugins_table(install_plugins, capsys):
    install_plugins(FakeEntryPoint("demo", _demo_register))
    assert main(["plugins", "--kind", "backend"]) == 0
    out = capsys.readouterr().out
    assert "demo" in out
    assert "demo-plugin" in out
    assert "9.9" in out
    assert "builtin" in out


def test_plugin_listed_in_cli_json(install_plugins, capsys):
    install_plugins(FakeEntryPoint("demo", _demo_register))
    assert main(["plugins", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    demo = [r for r in rows if r["name"] == "demo"]
    assert demo == [
        {"kind": "backend", "name": "demo",
         "origin": "demo-plugin", "version": "9.9"},
    ]


def test_plugin_kernel_accepted_by_job_spec(install_plugins):
    install_plugins(FakeEntryPoint("demo", _demo_register))
    from repro.serve import JobSpec

    spec = JobSpec(kernel="demo-kernel", backend="demo")
    assert spec.spec_hash
    with pytest.raises(ValueError, match="unknown kernel"):
        JobSpec(kernel="nope")


def test_broken_plugin_is_skipped_not_fatal(install_plugins, caplog):
    install_plugins(
        FakeEntryPoint("broken", RuntimeError("boom")),
        FakeEntryPoint("demo", _demo_register),
    )
    with caplog.at_level("WARNING", logger="repro.registry.core"):
        assert "demo" in available_backends()
    assert any("broken" in r.getMessage() for r in caplog.records)


def test_plugin_that_raises_during_register_is_skipped(install_plugins, caplog):
    def _bad(hook):
        hook.backend("half", DemoBackend)
        raise RuntimeError("died mid-registration")

    install_plugins(FakeEntryPoint("bad", _bad))
    with caplog.at_level("WARNING", logger="repro.registry.core"):
        # Registrations made before the failure survive.
        assert "half" in available_backends()
    assert any("died mid-registration" in r.getMessage() for r in caplog.records)


# ---------------------------------------------------------------------------
# collision semantics: deterministic, first wins, built-ins shadowproof


def test_builtin_wins_collision_with_plugin(install_plugins):
    def _shadow(hook):
        hook.kernel("compress", lambda: None)

    install_plugins(FakeEntryPoint("shadow", _shadow))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        kernel = get_kernel("compress")
    assert isinstance(kernel, Kernel)  # the builtin factory, not lambda: None
    collisions = [w for w in caught
                  if issubclass(w.category, PluginCollisionWarning)]
    assert len(collisions) == 1
    message = str(collisions[0].message)
    assert "builtin" in message and "demo-plugin" in message
    assert get_registry().get("kernel", "compress").origin == "builtin"


def test_plugin_collision_deterministic_by_entry_point_order(install_plugins):
    def _first(hook):
        hook.backend("contested", lambda: "first")

    def _second(hook):
        hook.backend("contested", lambda: "second")

    # Discovery sorts entry points by name: "aaa" registers before "bbb"
    # regardless of the order the fakes are supplied in.
    install_plugins(
        FakeEntryPoint("bbb", _second, dist_name="second-dist"),
        FakeEntryPoint("aaa", _first, dist_name="first-dist"),
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        info = get_registry().get("backend", "contested")
    assert info.origin == "first-dist"
    assert any(
        issubclass(w.category, PluginCollisionWarning) for w in caught
    )


# ---------------------------------------------------------------------------
# lookup errors


def test_unknown_name_suggests_close_match():
    with pytest.raises(UnknownPluginError) as excinfo:
        get_registry().get("kernel", "compres")
    err = excinfo.value
    assert err.suggestion == "compress"
    assert "did you mean 'compress'" in str(err)
    assert "compress" in err.available


def test_unknown_backend_still_a_value_error():
    with pytest.raises(ValueError, match="unknown backend 'nope'"):
        get_backend("nope")


def test_unknown_kernel_still_a_key_error():
    with pytest.raises(KeyError, match="unknown kernel"):
        get_kernel("nope")


def test_cli_unknown_kernel_exits_2_with_suggestion(capsys):
    assert main(["explore", "compres"]) == 2
    err = capsys.readouterr().err
    assert "unknown kernel 'compres'" in err
    assert "did you mean 'compress'" in err


def test_register_rejects_bad_input():
    registry = PluginRegistry(entry_points=lambda: [])
    with pytest.raises(PluginError, match="unknown plugin kind"):
        registry.register("gadget", "x", lambda: None)
    with pytest.raises(PluginError, match="must be callable"):
        registry.register("backend", "x", "not-a-factory")
    with pytest.raises(PluginError, match="non-empty"):
        registry.register("backend", "", lambda: None)


# ---------------------------------------------------------------------------
# run manifests


def test_build_manifest_resolves_provenance():
    doc = build_manifest(
        [("kernel", "compress"), ("backend", "fastsim")],
        spec_hash="s" * 64,
        eval_id="e" * 64,
        sweep_fingerprint="f" * 64,
        seeds={"retry_backoff": 7},
    )
    assert doc["schema"] == MANIFEST_SCHEMA
    assert doc["spec_hash"] == "s" * 64
    assert doc["eval_id"] == "e" * 64
    assert doc["sweep_fingerprint"] == "f" * 64
    assert doc["seeds"] == {"retry_backoff": 7}
    assert doc["python"]
    assert doc["packages"]["repro"]
    rows = {(r["kind"], r["name"]): r for r in doc["plugins"]}
    assert rows[("kernel", "compress")]["origin"] == "builtin"
    assert rows[("backend", "fastsim")]["origin"] == "builtin"
    assert check_manifest(doc) is doc
    # Must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(doc)) == doc


def test_manifest_records_unresolved_entries_honestly():
    doc = build_manifest([("backend", "uninstalled-later")])
    (row,) = doc["plugins"]
    assert row["origin"] == "unresolved"
    assert row["version"] == "unknown"


def test_manifest_extra_fields_merge_but_never_collide():
    doc = build_manifest([], extra={"note": "hi"})
    assert doc["note"] == "hi"
    with pytest.raises(ValueError, match="collide"):
        build_manifest([], extra={"schema": "repro.manifest/2"})


def test_check_manifest_rejects_other_documents():
    with pytest.raises(ValueError, match="JSON object"):
        check_manifest(["not", "a", "manifest"])
    with pytest.raises(ValueError, match="not a repro.manifest/1"):
        check_manifest({"schema": "repro.obs/1"})
    with pytest.raises(ValueError, match="newer"):
        check_manifest({"schema": "repro.manifest/99", "plugins": []})
    with pytest.raises(ValueError, match="plugins"):
        check_manifest({"schema": MANIFEST_SCHEMA})


def test_manifest_from_plugin_run_survives_uninstall(install_plugins):
    """A result produced by a plugin stays attributable after removal."""
    install_plugins(FakeEntryPoint("demo", _demo_register))
    doc = build_manifest([("backend", "demo")])
    reset_registry(None)  # "uninstall": a fresh registry has no demo backend
    row = doc["plugins"][0]
    assert row == {"kind": "backend", "name": "demo",
                   "origin": "demo-plugin", "version": "9.9"}
