"""Tests for the pruned exploration strategies."""

import pytest

from repro.core.config import CacheConfig, design_space
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_dequant
from repro.moo.heuristics import greedy_descent, pruned_min_energy


@pytest.fixture(scope="module")
def explorer():
    return MemExplorer(make_compress())


@pytest.fixture(scope="module")
def exhaustive(explorer):
    grid = [
        CacheConfig(t, l)
        for t in (16, 32, 64, 128, 256, 512)
        for l in (4, 8, 16, 32)
        if l <= t
    ]
    return explorer.explore(configs=grid)


class TestGreedyDescent:
    def test_finds_the_global_optimum_on_compress(self, explorer, exhaustive):
        outcome = greedy_descent(
            explorer.evaluate,
            objective="energy",
            sizes=(16, 32, 64, 128, 256, 512),
            line_sizes=(4, 8, 16, 32),
            ways=(1,),
            tilings=(1,),
        )
        assert outcome.best.config == exhaustive.min_energy().config

    def test_uses_fewer_evaluations_than_exhaustive(self, explorer, exhaustive):
        outcome = greedy_descent(
            explorer.evaluate,
            sizes=(16, 32, 64, 128, 256, 512),
            line_sizes=(4, 8, 16, 32),
            ways=(1,),
            tilings=(1,),
        )
        assert outcome.evaluations < len(exhaustive)

    def test_cycles_objective(self, explorer, exhaustive):
        outcome = greedy_descent(
            explorer.evaluate,
            objective="cycles",
            sizes=(16, 32, 64, 128, 256, 512),
            line_sizes=(4, 8, 16, 32),
            ways=(1,),
            tilings=(1,),
        )
        assert outcome.best.cycles == exhaustive.min_cycles().cycles

    def test_never_evaluates_twice(self, explorer):
        outcome = greedy_descent(
            explorer.evaluate,
            sizes=(16, 32, 64),
            line_sizes=(4, 8),
            ways=(1,),
            tilings=(1,),
        )
        assert len(outcome.visited) == len(set(outcome.visited))

    def test_bad_objective(self, explorer):
        with pytest.raises(ValueError):
            greedy_descent(explorer.evaluate, objective="area")


class TestPrunedSweep:
    def test_optimality_preserved(self):
        kernel = make_dequant()
        explorer = MemExplorer(kernel)
        configs = list(
            design_space(max_size=512, min_size=16, max_line=16,
                         ways=(1,), tilings=(1,))
        )
        exhaustive = explorer.explore(configs=configs)

        events = kernel.nest.iterations
        model = explorer.energy_model

        def bound(config):
            return events * model.e_cell(
                config.size, config.line_size, config.ways
            )

        fresh = MemExplorer(kernel)
        outcome = pruned_min_energy(fresh.evaluate, configs, bound)
        assert outcome.best.config == exhaustive.min_energy().config
        assert outcome.best.energy_nj == pytest.approx(
            exhaustive.min_energy().energy_nj
        )

    def test_pruning_skips_evaluations(self):
        kernel = make_dequant()
        explorer = MemExplorer(kernel)
        configs = list(
            design_space(max_size=1024, min_size=16, max_line=16,
                         ways=(1,), tilings=(1,))
        )
        events = kernel.nest.iterations
        model = explorer.energy_model

        def bound(config):
            return events * model.e_cell(
                config.size, config.line_size, config.ways
            )

        outcome = pruned_min_energy(explorer.evaluate, configs, bound)
        assert outcome.evaluations < len(configs)

    def test_empty_configs_rejected(self, explorer):
        with pytest.raises(ValueError):
            pruned_min_energy(explorer.evaluate, [], lambda c: 0.0)


class TestDeprecatedShims:
    """The historical repro.core.search entry points keep working."""

    def test_greedy_shim_warns_and_matches(self, explorer):
        from repro.core import search as legacy

        kwargs = dict(
            objective="energy",
            sizes=(16, 32, 64),
            line_sizes=(4, 8),
            ways=(1,),
            tilings=(1,),
        )
        with pytest.warns(DeprecationWarning, match="repro.moo.heuristics"):
            shimmed = legacy.greedy_descent(explorer.evaluate, **kwargs)
        direct = greedy_descent(explorer.evaluate, **kwargs)
        assert shimmed.best.config == direct.best.config
        assert shimmed.visited == direct.visited

    def test_pruned_shim_warns_and_matches(self, explorer):
        from repro.core import search as legacy

        configs = [CacheConfig(t, 4) for t in (16, 32, 64)]
        with pytest.warns(DeprecationWarning, match="repro.moo.heuristics"):
            shimmed = legacy.pruned_min_energy(
                explorer.evaluate, configs, lambda c: 0.0
            )
        direct = pruned_min_energy(explorer.evaluate, configs, lambda c: 0.0)
        assert shimmed.best.config == direct.best.config
