"""The observability layer: spans, metrics, cache stats, report, CLI."""

import json
import logging
import threading

import pytest

from repro import obs
from repro.core.config import CacheConfig
from repro.engine.cache import EvalCache, get_eval_cache
from repro.engine.evaluator import Evaluator
from repro.engine.workload import KernelWorkload
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector, span


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Each test starts and ends with profiling off and clean aggregates."""
    was_enabled = obs.profiling_enabled()
    yield
    if obs.profiling_enabled() and not was_enabled:
        obs.disable_profiling()
    obs.get_collector().clear()


class TestSpans:
    def test_disabled_by_default_records_nothing(self):
        assert not obs.profiling_enabled()
        with obs.collecting() as collector:
            obs.disable_profiling()  # collecting() enables; force off
            with span("trace_gen"):
                pass
        assert collector.snapshot() == []

    def test_null_span_is_shared(self):
        assert span("a") is span("b")  # one flag check, no allocation

    def test_nesting_paths(self):
        with obs.collecting() as collector:
            with span("sweep"):
                with span("evaluate"):
                    with span("trace_gen"):
                        pass
                    with span("trace_gen"):
                        pass
        paths = {tuple(r["path"]): r["count"] for r in collector.snapshot()}
        assert paths[("sweep",)] == 1
        assert paths[("sweep", "evaluate")] == 1
        assert paths[("sweep", "evaluate", "trace_gen")] == 2

    def test_by_stage_aggregates_across_parents(self):
        collector = SpanCollector()
        collector.record(("sweep", "evaluate", "trace_gen"), 0.25)
        collector.record(("trace_gen",), 0.75)
        stages = collector.by_stage()
        assert stages["trace_gen"]["calls"] == 2
        assert stages["trace_gen"]["total_s"] == pytest.approx(1.0)
        assert stages["trace_gen"]["mean_s"] == pytest.approx(0.5)

    def test_merge_adds_counts_and_totals(self):
        left, right = SpanCollector(), SpanCollector()
        left.record(("evaluate",), 1.0)
        right.record(("evaluate",), 2.0)
        right.record(("miss_measure",), 0.5)
        left.merge(right.snapshot())
        stages = left.by_stage()
        assert stages["evaluate"]["calls"] == 2
        assert stages["evaluate"]["total_s"] == pytest.approx(3.0)
        assert stages["miss_measure"]["calls"] == 1

    def test_snapshot_is_json_compatible(self):
        collector = SpanCollector()
        collector.record(("sweep", "evaluate"), 0.125)
        round_tripped = json.loads(json.dumps(collector.snapshot()))
        fresh = SpanCollector()
        fresh.merge(round_tripped)
        assert fresh.by_stage() == collector.by_stage()

    def test_exception_still_recorded_and_stack_popped(self):
        with obs.collecting() as collector:
            with pytest.raises(ValueError):
                with span("evaluate"):
                    raise ValueError("boom")
            with span("evaluate"):
                pass
        paths = {tuple(r["path"]): r["count"] for r in collector.snapshot()}
        assert paths == {("evaluate",): 2}  # not nested under the failed one


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == pytest.approx(2.0)
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_diff_then_merge_reconstructs_activity(self):
        worker = MetricsRegistry()
        worker.counter("configs").inc(7)  # fork-inherited "parent" count
        base = worker.snapshot()
        worker.counter("configs").inc(3)
        worker.histogram("t").observe(0.5)
        delta = worker.diff(base)
        assert delta["counters"] == {"configs": 3}

        parent = MetricsRegistry()
        parent.counter("configs").inc(7)
        parent.merge(delta)
        assert parent.counter("configs").value == 10
        assert parent.histogram("t").count == 1

    def test_clear_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.clear()
        assert counter.value == 0
        assert registry.counter("c") is counter  # identity preserved

    def test_counter_thread_safety(self):
        counter = MetricsRegistry().counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestEvalCacheStats:
    def test_evictions_counted(self):
        cache = EvalCache(max_traces=2, max_miss_entries=2)
        for key in range(4):
            cache.trace(key, lambda: object())
        stats = cache.stats()
        assert stats.trace_misses == 4
        assert stats.trace_evictions == 2
        assert cache.trace_entries == 2

    def test_snapshot_fields(self):
        cache = EvalCache()
        cache.miss("k", lambda: 1)
        cache.miss("k", lambda: 1)
        snap = cache.snapshot()
        assert snap["miss"]["hits"] == 1
        assert snap["miss"]["misses"] == 1
        assert snap["miss"]["entries"] == 1
        assert snap["miss"]["hit_rate"] == pytest.approx(0.5)
        json.dumps(snap)  # machine-readable

    def test_merge_remote_reflected_in_stats(self):
        cache = EvalCache()
        cache.trace("k", lambda: 1)
        cache.merge_remote(
            {
                "trace": {"hits": 5, "misses": 2, "evictions": 1},
                "miss": {"hits": 3, "misses": 4, "evictions": 0},
            }
        )
        stats = cache.stats()
        assert stats.trace_hits == 5
        assert stats.trace_misses == 3  # 1 local + 2 remote
        assert stats.trace_evictions == 1
        assert stats.miss_hits == 3
        assert stats.miss_misses == 4
        # counters() stays local-only: it is the worker baseline primitive.
        assert cache.counters()["trace"]["hits"] == 0

    def test_clear_zeroes_remote(self):
        cache = EvalCache()
        cache.merge_remote({"trace": {"hits": 5}, "miss": {}})
        cache.clear()
        assert cache.stats().trace_hits == 0

    def test_snapshot_concurrent_with_merges(self):
        cache = EvalCache()
        stop = threading.Event()

        def merger():
            while not stop.is_set():
                cache.merge_remote(
                    {"trace": {"hits": 1}, "miss": {"misses": 1}}
                )

        thread = threading.Thread(target=merger)
        thread.start()
        try:
            for _ in range(200):
                snap = cache.snapshot()
                assert snap["trace"]["hits"] >= 0
        finally:
            stop.set()
            thread.join()


class TestEvaluatorInstrumentation:
    STAGES = ("evaluate", "trace_gen", "miss_measure", "add_bs", "cycles", "energy")

    def test_profiled_evaluate_produces_stage_spans(self, compress_small):
        evaluator = Evaluator(KernelWorkload(compress_small), cache=EvalCache())
        with obs.collecting() as collector:
            evaluator.evaluate(CacheConfig(64, 8))
        stages = collector.by_stage()
        for stage in self.STAGES:
            assert stages[stage]["calls"] == 1, stage
            assert stages[stage]["total_s"] >= 0.0

    def test_configs_evaluated_counter(self, compress_small):
        evaluator = Evaluator(KernelWorkload(compress_small))
        base = obs.get_metrics().snapshot()
        evaluator.evaluate(CacheConfig(64, 8))
        evaluator.evaluate(CacheConfig(64, 8, 2))
        delta = obs.get_metrics().diff(base)
        assert delta["counters"]["engine.configs_evaluated"] == 2

    def test_backend_address_counter(self, compress_small):
        # A private cache guarantees the backend actually runs (the global
        # cache may hold this kernel's vectors from other tests).
        evaluator = Evaluator(KernelWorkload(compress_small), cache=EvalCache())
        base = obs.get_metrics().snapshot()
        evaluator.evaluate(CacheConfig(128, 16))
        delta = obs.get_metrics().diff(base)
        simulated = delta["counters"]["backend.fastsim.addresses_simulated"]
        assert simulated == len(evaluator._bundle_for(CacheConfig(128, 16)).trace)


class TestParallelMergeBack:
    def _configs(self):
        return [
            CacheConfig(size, line, ways)
            for size in (32, 64, 128)
            for line in (4, 8)
            for ways in (1, 2)
        ]

    def test_worker_spans_and_metrics_merge(self, compress_small):
        evaluator = Evaluator(KernelWorkload(compress_small), cache=EvalCache())
        configs = self._configs()
        base = obs.get_metrics().snapshot()
        cache_base = evaluator.cache.stats()
        with obs.collecting() as collector:
            result = evaluator.sweep(configs=configs, jobs=4)
        assert len(result) == len(configs)

        # Every worker-side evaluation landed in the parent collector.
        stages = collector.by_stage()
        assert stages["evaluate"]["calls"] == len(configs)
        assert stages["trace_gen"]["calls"] == len(configs)
        assert stages["sweep"]["calls"] == 1

        delta = obs.get_metrics().diff(base)
        assert delta["counters"]["engine.configs_evaluated"] == len(configs)
        assert delta["counters"]["parallel.chunks_completed"] >= 2

        # EvalCache stats account for worker activity (parent stores are
        # untouched by forked children, so only merged deltas explain this).
        cache_stats = evaluator.cache.stats()
        requests = (
            cache_stats.trace_hits
            + cache_stats.trace_misses
            - cache_base.trace_hits
            - cache_base.trace_misses
        )
        assert requests == len(configs)

    def test_parallel_matches_serial(self, compress_small):
        configs = self._configs()
        serial = Evaluator(KernelWorkload(compress_small)).sweep(configs=configs)
        with obs.collecting():
            parallel = Evaluator(KernelWorkload(compress_small)).sweep(
                configs=configs, jobs=4
            )
        for a, b in zip(serial.estimates, parallel.estimates):
            assert a.config == b.config
            assert a.energy_nj == b.energy_nj
            assert a.cycles == b.cycles

    def test_serial_fallback_warns(self, compress_small, caplog, monkeypatch):
        import concurrent.futures

        class _Broken:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _Broken
        )
        evaluator = Evaluator(KernelWorkload(compress_small))
        configs = self._configs()
        base = obs.get_metrics().snapshot()
        with caplog.at_level(logging.WARNING, logger="repro.engine.parallel"):
            result = evaluator.sweep(configs=configs, jobs=4)
        assert len(result) == len(configs)  # serial recomputation succeeded
        assert any(
            "fell back to serial" in record.getMessage()
            and record.levelno == logging.WARNING
            for record in caplog.records
        )
        delta = obs.get_metrics().diff(base)
        assert delta["counters"]["parallel.serial_fallbacks"] == 1
        assert "parallel.chunks_completed" not in delta["counters"]


class TestReport:
    def test_schema_and_sections(self):
        collector = SpanCollector()
        collector.record(("sweep", "evaluate"), 0.5)
        cache = EvalCache()
        cache.trace("k", lambda: 1)
        report = obs.build_report(
            collector=collector, cache=cache.snapshot()
        )
        assert report["schema"] == obs.SCHEMA == "repro.obs/1"
        assert report["stages"]["evaluate"]["calls"] == 1
        assert report["cache"]["trace"]["misses"] == 1
        assert set(report) == {"schema", "spans", "stages", "metrics", "cache"}

    def test_write_report_round_trip(self, tmp_path):
        collector = SpanCollector()
        collector.record(("evaluate",), 0.25)
        report = obs.build_report(collector=collector)
        path = tmp_path / "metrics.json"
        obs.write_report(str(path), report)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro.obs/1"
        assert loaded["stages"]["evaluate"]["total_s"] == pytest.approx(0.25)

    def test_render_stage_table(self):
        collector = SpanCollector()
        for stage in ("sweep", "evaluate", "trace_gen", "miss_measure"):
            collector.record((stage,), 0.01)
        cache = EvalCache()
        cache.miss("k", lambda: 1)
        table = obs.render_stage_table(
            obs.build_report(collector=collector, cache=cache.snapshot())
        )
        for needle in ("trace_gen", "miss_measure", "EvalCache", "hit rate"):
            assert needle in table
        # Stages render in pipeline order, not alphabetically.
        assert table.index("sweep") < table.index("trace_gen")

    def test_render_without_spans_hints_at_profile(self):
        table = obs.render_stage_table(
            obs.build_report(collector=SpanCollector())
        )
        assert "--profile" in table


class TestJsonLogging:
    def test_json_formatter_includes_extras(self):
        formatter = obs.JsonFormatter()
        record = logging.LogRecord(
            "repro.engine", logging.INFO, __file__, 1, "swept %d", (7,), None
        )
        record.kernel = "compress"
        payload = json.loads(formatter.format(record))
        assert payload["message"] == "swept 7"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.engine"
        assert payload["kernel"] == "compress"
        assert "ts" in payload

    def test_configure_logging_idempotent(self):
        logger = obs.configure_logging("info")
        obs.configure_logging("warning", json_format=True)
        ours = [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        assert isinstance(ours[0].formatter, obs.JsonFormatter)
        for handler in ours:
            logger.removeHandler(handler)


class TestCli:
    def test_explore_profile_and_metrics_out(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "m.json"
        code = main([
            "explore", "matmul", "--max-size", "32", "--min-size", "16",
            "--tilings", "1", "--profile", "--metrics-out", str(out_file),
            "--jobs", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("trace_gen", "miss_measure", "cycles", "energy"):
            assert stage in out
        assert "EvalCache" in out

        report = json.loads(out_file.read_text())
        assert report["schema"] == "repro.obs/1"
        evaluated = report["metrics"]["counters"]["engine.configs_evaluated"]
        assert evaluated > 0
        # The default (grid-capable) backend evaluates whole groups under
        # one "evaluate_batch" span; per-config backends keep "evaluate".
        stages = report["stages"]
        if "evaluate_batch" in stages:
            assert 0 < stages["evaluate_batch"]["calls"] <= evaluated
        else:
            assert stages["evaluate"]["calls"] == evaluated
        assert report["cache"]["trace"]["misses"] >= 1

    def test_metrics_out_without_profile_has_no_spans(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "m.json"
        main([
            "explore", "compress", "--max-size", "32", "--min-size", "32",
            "--tilings", "1", "--metrics-out", str(out_file),
        ])
        report = json.loads(out_file.read_text())
        assert report["spans"] == []
        assert report["metrics"]["counters"]["engine.configs_evaluated"] > 0
        capsys.readouterr()

    def test_stats_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "stats", "compress", "--max-size", "64", "--min-size", "16",
            "--tilings", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-stage timing" in out
        for stage in ("trace_gen", "miss_measure", "cycles", "energy"):
            assert stage in out
        assert "EvalCache" in out
        assert not obs.profiling_enabled()  # stats restored the flag

    def test_log_level_flag(self, capsys):
        from repro.cli import main

        main([
            "explore", "compress", "--max-size", "32", "--min-size", "32",
            "--tilings", "1", "--log-level", "info",
        ])
        capsys.readouterr()
        logger = logging.getLogger("repro")
        assert logger.level == logging.INFO
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
