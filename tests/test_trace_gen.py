"""Tests for address-trace generation, cross-checked against brute force."""

import itertools

import numpy as np
import pytest

from repro.layout.address_map import ArrayPlacement, DataLayout, default_layout
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.trace_gen import generate_trace, iteration_space, ref_addresses


def brute_force_trace(nest, layout):
    """Reference implementation: evaluate every subscript point by point."""
    addresses = []
    writes = []
    axes = [list(lp.values()) for lp in nest.loops]
    for point in itertools.product(*axes):
        env = dict(zip(nest.index_order, point))
        for ref in nest.refs:
            subs = ref.evaluate(env)
            addresses.append(layout.address_of(ref.array, subs))
            writes.append(ref.is_write)
    return addresses, writes


def simple_nest():
    i, j = var("i"), var("j")
    return LoopNest(
        name="t",
        loops=(Loop("i", 1, 4), Loop("j", 0, 5)),
        refs=(
            ArrayRef("a", (i, j)),
            ArrayRef("a", (i - 1, j)),
            ArrayRef("b", (j,)),
            ArrayRef("a", (i, j), is_write=True),
        ),
        arrays=(ArrayDecl("a", (5, 6)), ArrayDecl("b", (6,))),
    )


class TestIterationSpace:
    def test_shape_and_order(self):
        space = iteration_space((Loop("i", 0, 2), Loop("j", 5, 6)))
        assert space.shape == (6, 2)
        assert space.tolist() == [[0, 5], [0, 6], [1, 5], [1, 6], [2, 5], [2, 6]]

    def test_step(self):
        space = iteration_space((Loop("i", 0, 8, 4),))
        assert space.reshape(-1).tolist() == [0, 4, 8]

    def test_empty_loop_list_single_point(self):
        space = iteration_space(())
        assert space.shape == (1, 0)


class TestGenerateTrace:
    def test_matches_brute_force_default_layout(self):
        nest = simple_nest()
        layout = default_layout(nest)
        trace = generate_trace(nest, layout)
        expected_addrs, expected_writes = brute_force_trace(nest, layout)
        assert trace.addresses.tolist() == expected_addrs
        assert trace.is_write.tolist() == expected_writes

    def test_matches_brute_force_padded_layout(self):
        nest = simple_nest()
        layout = DataLayout.from_dict(
            {
                "a": ArrayPlacement(base=16, pitches=(9, 1)),
                "b": ArrayPlacement(base=80, pitches=(1,)),
            }
        )
        trace = generate_trace(nest, layout)
        expected_addrs, _ = brute_force_trace(nest, layout)
        assert trace.addresses.tolist() == expected_addrs

    def test_element_size_scales_addresses(self):
        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (4,), element_size=4),),
        )
        trace = generate_trace(nest)
        assert trace.addresses.tolist() == [0, 4, 8, 12]

    def test_ref_ids_cycle_in_program_order(self):
        nest = simple_nest()
        trace = generate_trace(nest)
        n_refs = len(nest.refs)
        assert trace.ref_ids[:n_refs].tolist() == list(range(n_refs))
        assert trace.ref_ids[n_refs : 2 * n_refs].tolist() == list(range(n_refs))

    def test_trace_length(self):
        nest = simple_nest()
        assert len(generate_trace(nest)) == nest.accesses

    def test_repeat_concatenates(self):
        nest = simple_nest()
        once = generate_trace(nest)
        thrice = generate_trace(nest, repeat=3)
        assert len(thrice) == 3 * len(once)
        assert thrice.addresses[: len(once)].tolist() == once.addresses.tolist()
        assert thrice.addresses[-len(once):].tolist() == once.addresses.tolist()

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_trace(simple_nest(), repeat=0)

    def test_negative_address_rejected(self):
        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i - 1,)),),  # i=0 -> subscript -1
            arrays=(ArrayDecl("a", (4,)),),
        )
        with pytest.raises(ValueError, match="negative address"):
            generate_trace(nest)

    def test_tiled_trace_is_permutation(self):
        nest = simple_nest()
        plain = generate_trace(nest)
        tiled = generate_trace(nest, tile=2)
        assert len(tiled) == len(plain)
        assert sorted(tiled.addresses.tolist()) == sorted(plain.addresses.tolist())


class TestRefAddresses:
    def test_single_reference_column(self):
        nest = simple_nest()
        layout = default_layout(nest)
        space = iteration_space(nest.loops)
        col = ref_addresses(nest, 2, layout, space)  # b[j]
        b_base = layout.placement("b").base
        assert col.tolist() == [b_base + j for _i in range(4) for j in range(6)]
