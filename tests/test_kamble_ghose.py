"""Tests for the detailed Kamble-Ghose energy model."""

import pytest

from repro.energy.kamble_ghose import KambleGhoseModel
from repro.energy.model import EnergyModel


@pytest.fixture
def model():
    return KambleGhoseModel()


class TestOnChipBreakdown:
    def test_components_positive(self, model):
        b = model.on_chip_breakdown(64, 8, 1)
        assert b.bit_lines > 0
        assert b.word_lines > 0
        assert b.tag_compare > 0
        assert b.output_drive > 0
        assert b.total == pytest.approx(
            b.bit_lines + b.word_lines + b.tag_compare + b.output_drive
        )

    def test_bit_lines_dominate(self, model):
        """Kamble & Ghose's headline decomposition for realistic caches."""
        b = model.on_chip_breakdown(512, 16, 1)
        assert b.bit_lines > b.word_lines
        assert b.bit_lines > b.tag_compare

    def test_energy_grows_with_size(self, model):
        assert model.e_cell(128, 8, 1) > model.e_cell(64, 8, 1)

    def test_tag_energy_grows_with_ways(self, model):
        narrow = model.on_chip_breakdown(64, 8, 1)
        wide = model.on_chip_breakdown(64, 8, 4)
        assert wide.tag_compare > narrow.tag_compare


class TestPaperClaim:
    """"The set associative cache consumes more power in ... tag
    comparators ... [but] the amount is not significant [3].\""""

    @pytest.mark.parametrize("size,line", [(64, 8), (128, 16), (512, 16)])
    def test_associativity_overhead_small(self, model, size, line):
        """Under ~10% at realistic points; the worst case of the space (a
        64-byte fully-associative cache) peaks at ~25%, still a minority
        share -- the paper's simplification is directionally sound."""
        for ways in (1, 2, 4, 8):
            if ways * line > size:
                continue
            overhead = model.associativity_overhead(size, line, ways)
            assert overhead < 0.30, (size, line, ways)
        assert model.associativity_overhead(size, line, 1) < 0.05

    def test_overhead_shrinks_for_bigger_caches(self, model):
        small = model.associativity_overhead(64, 8, 8)
        large = model.associativity_overhead(1024, 8, 8)
        assert large < small


class TestInterface:
    def test_breakdown_compatible(self, model):
        b = model.breakdown(64, 8, 2, hit_rate=0.9, miss_rate=0.1,
                            events=100, add_bs=2.0)
        assert b.total > 0
        assert b.e_miss > b.e_hit

    def test_off_chip_terms_inherited(self, model):
        simple = EnergyModel()
        assert model.e_main(16) == pytest.approx(simple.e_main(16))
        assert model.e_io(16, 2.0) == pytest.approx(simple.e_io(16, 2.0))

    def test_detailed_hit_energy_same_order_as_simple(self, model):
        simple = EnergyModel()
        for size in (64, 256, 1024):
            detailed = model.e_cell(size, 8, 1)
            base = simple.e_cell(size, 8, 1)
            assert base / 5 < detailed < base * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            KambleGhoseModel(address_bits=0)
