"""Tests for the replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(3)
        for way in (0, 1, 2):
            p.insert(way)
        assert p.victim() == 0
        p.touch(0)
        assert p.victim() == 1

    def test_insert_refreshes_existing(self):
        p = LRUPolicy(2)
        p.insert(0)
        p.insert(1)
        p.insert(0)
        assert p.victim() == 1

    def test_invalidate(self):
        p = LRUPolicy(2)
        p.insert(0)
        p.insert(1)
        p.invalidate(0)
        assert p.victim() == 1
        p.invalidate(0)  # idempotent on absent ways


class TestFIFO:
    def test_victim_is_oldest_fill(self):
        p = FIFOPolicy(3)
        for way in (0, 1, 2):
            p.insert(way)
        p.touch(0)  # hits do not reorder
        assert p.victim() == 0

    def test_invalidate(self):
        p = FIFOPolicy(2)
        p.insert(0)
        p.insert(1)
        p.invalidate(0)
        assert p.victim() == 1


class TestRandom:
    def test_victim_is_a_valid_way(self):
        p = RandomPolicy(4, seed=42)
        for way in range(4):
            p.insert(way)
        for _ in range(20):
            assert p.victim() in range(4)

    def test_seeded_clone_repeats(self):
        a = RandomPolicy(4, seed=7)
        b = a.clone()
        for way in range(4):
            a.insert(way)
            b.insert(way)
        assert [a.victim() for _ in range(10)] == [b.victim() for _ in range(10)]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy),
        ("LRU", LRUPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 2), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru", 2)

    def test_clone_is_fresh(self):
        p = LRUPolicy(2)
        p.insert(0)
        q = p.clone()
        q.insert(1)
        assert q.victim() == 1
        assert p.victim() == 0

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)
