"""Tests for the closed-form (paper-methodology) miss model."""

import pytest

from repro.core.analytic import (
    AnalyticExplorer,
    analytic_miss_rate,
    analytic_misses,
)
from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_dequant, make_matadd, make_sor


class TestAnalyticMisses:
    def test_compress_counts(self):
        """Compress at L=4: 2 classes x 31 sweeps x 8 lines = 496 misses."""
        nest = make_compress().nest
        assert analytic_misses(nest, 4) == 496
        assert analytic_miss_rate(nest, 4) == pytest.approx(496 / 4805)

    def test_line_size_halves_misses(self):
        nest = make_compress().nest
        assert analytic_misses(nest, 8) == analytic_misses(nest, 4) / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_misses(make_compress().nest, 0)

    def test_miss_rate_capped_at_one(self):
        # A tiny line on a strided kernel cannot exceed 100% misses.
        nest = make_matadd().nest
        assert analytic_miss_rate(nest, 1) <= 1.0


class TestAgainstSimulator:
    """At the minimum conflict-free size, the two methods agree exactly
    for kernels without cross-sweep retention."""

    @pytest.mark.parametrize("make,line", [
        (make_compress, 2), (make_compress, 4), (make_compress, 8),
        (make_sor, 2), (make_sor, 4), (make_sor, 8),
        (make_dequant, 2), (make_dequant, 4), (make_dequant, 8),
        (make_matadd, 2), (make_matadd, 4),
    ])
    def test_exact_at_minimum_size(self, make, line):
        kernel = make()
        min_size = kernel.min_cache_size(line)
        size = 1
        while size < max(min_size, line):
            size *= 2
        simulated = MemExplorer(kernel).evaluate(CacheConfig(size, line))
        assert analytic_miss_rate(kernel.nest, line) == pytest.approx(
            simulated.miss_rate
        )

    def test_simulator_never_worse_above_minimum(self):
        """Cross-sweep retention only lowers the real miss rate."""
        kernel = make_compress()
        for line in (2, 4, 8, 16):
            analytic = analytic_miss_rate(kernel.nest, line)
            for size in (64, 128, 256):
                if size < kernel.min_cache_size(line):
                    continue
                simulated = MemExplorer(kernel).evaluate(CacheConfig(size, line))
                assert simulated.miss_rate <= analytic + 1e-9


class TestAnalyticExplorer:
    def test_below_minimum_size_thrashes(self):
        explorer = AnalyticExplorer(make_compress())
        # C16L8: minimum for L=8 is 32 bytes.
        assert explorer.miss_rate(CacheConfig(16, 8)) == 1.0
        assert explorer.miss_rate(CacheConfig(32, 8)) < 0.1

    def test_estimate_fields(self):
        explorer = AnalyticExplorer(make_compress())
        est = explorer.evaluate(CacheConfig(64, 8))
        assert est.events == 961
        assert est.conflict_free_layout
        assert est.energy_nj > 0
        assert est.cycles > est.events  # at least one cycle per iteration

    def test_explore_and_selection(self):
        explorer = AnalyticExplorer(make_compress())
        result = explorer.explore(max_size=512, ways=(1,), tilings=(1,))
        assert result.min_energy() is not None
        # The analytic layer reproduces the C16L4 minimum-energy anchor.
        assert result.min_energy().config == CacheConfig(16, 4)

    def test_matches_memexplorer_ranking_coarsely(self):
        kernel = make_dequant()
        grid = [CacheConfig(t, l) for t in (32, 64, 128) for l in (4, 8)]
        fast = AnalyticExplorer(kernel).explore(configs=grid)
        slow = MemExplorer(kernel).explore(configs=grid)
        assert fast.min_energy().config == slow.min_energy().config

    def test_negative_add_bs_rejected(self):
        with pytest.raises(ValueError):
            AnalyticExplorer(make_compress(), add_bs=-1.0)
