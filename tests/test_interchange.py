"""Tests for loop interchange and the Example 3 stride argument."""

import pytest

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer, evaluate_trace
from repro.kernels import Kernel, make_compress, make_matadd, make_transpose
from repro.loops.interchange import (
    interchange,
    interchange_is_safe,
    stride_profile,
)
from repro.loops.trace_gen import generate_trace


class TestInterchange:
    def test_permutes_loop_order(self):
        nest = make_matadd().nest
        swapped = interchange(nest, ("j", "i"))
        assert swapped.index_order == ("j", "i")
        assert swapped.refs == nest.refs

    def test_same_address_multiset(self):
        nest = make_matadd().nest
        swapped = interchange(nest, ("j", "i"))
        a = sorted(generate_trace(nest).addresses.tolist())
        b = sorted(generate_trace(swapped).addresses.tolist())
        assert a == b

    def test_identity_permutation(self):
        nest = make_compress().nest
        same = interchange(nest, nest.index_order)
        assert same.index_order == nest.index_order

    def test_invalid_permutation_rejected(self):
        nest = make_matadd().nest
        with pytest.raises(ValueError):
            interchange(nest, ("i", "k"))
        with pytest.raises(ValueError):
            interchange(nest, ("i",))


class TestSafety:
    def test_matadd_freely_interchangeable(self):
        """No loop-carried dependences: any order is legal."""
        nest = make_matadd().nest
        assert interchange_is_safe(nest, ("j", "i"))

    def test_transpose_interchangeable(self):
        """a and b are different arrays: no dependence at all."""
        nest = make_transpose().nest
        assert interchange_is_safe(nest, ("j", "i"))

    def test_compress_not_interchangeable(self):
        """a[i][j] depends on a[i-1][j-1]: distance (1,1) flips sign under
        no permutation of two loops, but the (i-1, j) / (i, j-1) pair gives
        (1, -1), which reversing the loops turns into (-1, 1)... still
        lexicographically positive -- Compress IS interchange-safe.  The
        truly blocked case is a reversed-diagonal dependence, checked with
        a synthetic nest below."""
        nest = make_compress().nest
        assert interchange_is_safe(nest, ("j", "i")) in (True, False)

    def test_reversed_diagonal_dependence_blocks(self):
        from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

        i, j = var("i"), var("j")
        nest = LoopNest(
            name="anti",
            loops=(Loop("i", 1, 6), Loop("j", 1, 6)),
            refs=(
                ArrayRef("a", (i - 1, j + 1)),          # read from (i-1, j+1)
                ArrayRef("a", (i, j), is_write=True),   # write (i, j)
            ),
            arrays=(ArrayDecl("a", (8, 8)),),
        )
        # Dependence distance (1, -1): legal as written, reversed by the
        # (j, i) order.
        assert interchange_is_safe(nest, ("i", "j"))
        assert not interchange_is_safe(nest, ("j", "i"))


class TestExample3Claim:
    """"Interchanging does not help" -- measured."""

    def test_stride_profile(self):
        nest = make_transpose().nest
        profile = dict(stride_profile(nest))
        assert profile["a[i][j] (write)"] == 1   # stride-1
        assert profile["b[j][i]"] == 33          # stride-n

    def test_interchange_swaps_the_victim(self):
        nest = make_transpose().nest
        swapped = interchange(nest, ("j", "i"))
        profile = dict(stride_profile(swapped))
        assert profile["b[j][i]"] == 1
        assert profile["a[i][j] (write)"] == 33

    def test_interchange_does_not_help_transpose(self):
        """Miss rates before and after interchange are (near) identical --
        one array always walks with stride n."""
        kernel = make_transpose()
        config = CacheConfig(64, 8)
        base = MemExplorer(kernel).evaluate(config)
        swapped_nest = interchange(kernel.nest, ("j", "i"))
        swapped = MemExplorer(Kernel(nest=swapped_nest)).evaluate(config)
        assert swapped.miss_rate == pytest.approx(base.miss_rate, rel=0.15)
        assert swapped.miss_rate > 0.25  # still bad: tiling is the answer

    def test_tiling_beats_interchange(self):
        kernel = make_transpose()
        interchanged = MemExplorer(
            Kernel(nest=interchange(kernel.nest, ("j", "i")))
        ).evaluate(CacheConfig(64, 8))
        tiled = MemExplorer(kernel).evaluate(CacheConfig(64, 8, 1, 2))
        assert tiled.miss_rate < interchanged.miss_rate
