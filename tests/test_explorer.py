"""Tests for Algorithm MemExplore."""

import pytest

from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig
from repro.core.explorer import ExplorationResult, MemExplorer, evaluate_trace
from repro.energy.model import EnergyModel
from repro.energy.params import SRAM_16MBIT


class TestEvaluateTrace:
    def test_hand_computed_miss_rate(self):
        trace = MemoryTrace([0, 0, 32, 32, 0])
        est = evaluate_trace(trace, CacheConfig(32, 4))
        # 0 miss, hit, 32 miss (evicts 0), hit, 0 miss again.
        assert est.miss_rate == pytest.approx(3 / 5)
        assert est.accesses == 5

    def test_events_default_to_accesses(self):
        trace = MemoryTrace([0, 1, 2])
        est = evaluate_trace(trace, CacheConfig(32, 4))
        assert est.events == 3

    def test_events_scale_totals(self):
        trace = MemoryTrace([0, 1, 2, 3])
        small = evaluate_trace(trace, CacheConfig(32, 4), events=1)
        big = evaluate_trace(trace, CacheConfig(32, 4), events=100)
        assert big.cycles == pytest.approx(100 * small.cycles)
        assert big.energy_nj == pytest.approx(100 * small.energy_nj)
        assert big.miss_rate == small.miss_rate

    def test_read_only_energy_accounting(self):
        # All accesses are writes: read miss rate is 0 -> hit-energy only.
        trace = MemoryTrace([0, 32, 0, 32], [True] * 4)
        est = evaluate_trace(trace, CacheConfig(32, 4))
        assert est.miss_rate == 1.0
        assert est.read_miss_rate == 0.0
        assert est.energy_breakdown.per_access == pytest.approx(
            est.energy_breakdown.e_hit
        )

    def test_associativity_changes_cycles(self):
        trace = MemoryTrace(list(range(64)))
        direct = evaluate_trace(trace, CacheConfig(64, 8, 1))
        assoc = evaluate_trace(trace, CacheConfig(64, 8, 2))
        assert direct.miss_rate == assoc.miss_rate  # sequential stream
        assert assoc.cycles > direct.cycles  # 1.1 cycles per hit

    def test_empty_trace(self):
        est = evaluate_trace(MemoryTrace([]), CacheConfig(32, 4))
        assert est.miss_rate == 0.0
        assert est.cycles == 0.0
        assert est.energy_nj == 0.0


class TestMemExplorer:
    def test_events_are_iterations(self, compress):
        est = MemExplorer(compress).evaluate(CacheConfig(64, 8))
        assert est.events == 961
        assert est.accesses == 961 * 5

    def test_optimized_beats_unoptimized(self):
        from repro.kernels import make_compress

        kernel = make_compress(element_size=4)
        config = CacheConfig(64, 8)
        opt = MemExplorer(kernel, optimize_layout=True).evaluate(config)
        unopt = MemExplorer(kernel, optimize_layout=False).evaluate(config)
        assert opt.miss_rate < unopt.miss_rate
        assert opt.conflict_free_layout
        assert not unopt.conflict_free_layout

    def test_energy_model_propagates(self, compress_small):
        config = CacheConfig(64, 8)
        cheap = MemExplorer(compress_small).evaluate(config)
        costly = MemExplorer(
            compress_small, energy_model=EnergyModel(sram=SRAM_16MBIT)
        ).evaluate(config)
        assert costly.energy_nj > cheap.energy_nj

    def test_trace_cache_consistency(self, compress_small):
        """Re-evaluating after a trace-key change must be deterministic."""
        explorer = MemExplorer(compress_small)
        first = explorer.evaluate(CacheConfig(64, 8))
        explorer.evaluate(CacheConfig(32, 4))  # evicts the cached trace
        again = explorer.evaluate(CacheConfig(64, 8))
        assert first.miss_rate == again.miss_rate
        assert first.energy_nj == again.energy_nj

    def test_explore_default_space(self, compress_small):
        result = MemExplorer(compress_small).explore(
            max_size=64, min_size=32, ways=(1,), tilings=(1,)
        )
        labels = {e.config.label() for e in result}
        assert "C32L4" in labels and "C64L8" in labels

    def test_explore_explicit_configs_and_progress(self, compress_small):
        seen = []
        configs = [CacheConfig(32, 4), CacheConfig(64, 8)]
        result = MemExplorer(compress_small).explore(
            configs=configs, progress=seen.append
        )
        assert len(result) == 2
        assert len(seen) == 2


class TestExplorationResult:
    def _result(self):
        trace = MemoryTrace(list(range(128)))
        configs = [CacheConfig(t, l) for t in (16, 64) for l in (4, 8)]
        return ExplorationResult(
            [evaluate_trace(trace, c) for c in configs]
        )

    def test_min_energy_and_cycles(self):
        result = self._result()
        assert result.min_energy().energy_nj == min(e.energy_nj for e in result)
        assert result.min_cycles().cycles == min(e.cycles for e in result)

    def test_bounds_filter(self):
        result = self._result()
        tight = result.min_energy(cycle_bound=0.0)
        assert tight is None
        loose = result.min_energy(cycle_bound=float("inf"))
        assert loose == result.min_energy()

    def test_for_config(self):
        result = self._result()
        est = result.for_config(CacheConfig(64, 8))
        assert est.config == CacheConfig(64, 8)
        with pytest.raises(KeyError):
            result.for_config(CacheConfig(128, 8))

    def test_rows(self):
        rows = self._result().to_rows()
        assert len(rows) == 4
        assert all(len(r) == 4 for r in rows)
