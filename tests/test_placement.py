"""Tests for instruction-cache code placement."""

import pytest

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.icache.blocks import BasicBlock, ControlFlowTrace, Program
from repro.icache.placement import place_blocks, temporal_affinity


def conflicting_program():
    """Two hot blocks exactly one cache span apart: guaranteed thrash."""
    return Program(
        (
            BasicBlock("hot_a", 0, 8),        # 32 bytes
            BasicBlock("hot_b", 64, 8),       # 32 bytes, aliases in a 64B cache
        )
    )


@pytest.fixture
def thrashing_execution():
    program = conflicting_program()
    return ControlFlowTrace.loop(program, ["hot_a", "hot_b"], iterations=100)


class TestTemporalAffinity:
    def test_adjacent_blocks_have_affinity(self, thrashing_execution):
        affinity = temporal_affinity(thrashing_execution)
        assert affinity[("hot_a", "hot_b")] > 100

    def test_window_widens_pairs(self):
        program = Program.sequential([("a", 2), ("b", 2), ("c", 2)])
        execution = ControlFlowTrace(program, ("a", "b", "c"))
        narrow = temporal_affinity(execution, window=1)
        wide = temporal_affinity(execution, window=2)
        assert ("a", "c") not in narrow
        assert wide[("a", "c")] == 1

    def test_self_pairs_excluded(self):
        program = Program.sequential([("a", 2)])
        execution = ControlFlowTrace(program, ("a", "a", "a"))
        assert temporal_affinity(execution) == {}

    def test_validation(self, thrashing_execution):
        with pytest.raises(ValueError):
            temporal_affinity(thrashing_execution, window=0)


class TestPlacement:
    CACHE, LINE = 64, 16

    def _miss_rate(self, execution):
        sim = CacheSimulator(CacheGeometry(self.CACHE, self.LINE, 1))
        return sim.run(execution.fetch_trace()).miss_rate

    def test_placement_eliminates_thrash(self, thrashing_execution):
        before = self._miss_rate(thrashing_execution)
        result = place_blocks(thrashing_execution, self.CACHE, self.LINE)
        after_execution = ControlFlowTrace(
            result.program, thrashing_execution.sequence
        )
        after = self._miss_rate(after_execution)
        # Aliased: both lines of each block are re-fetched every visit
        # (2 misses per 8 sequential fetches).
        assert before == pytest.approx(0.25, abs=0.02)
        assert after < 0.05           # relocated: only cold misses remain
        assert result.estimated_conflict_weight == 0

    def test_relocated_blocks_do_not_overlap(self, thrashing_execution):
        result = place_blocks(thrashing_execution, self.CACHE, self.LINE)
        blocks = sorted(result.program.blocks, key=lambda b: b.address)
        for a, b in zip(blocks, blocks[1:]):
            assert a.address + a.size_bytes <= b.address

    def test_instruction_counts_preserved(self, thrashing_execution):
        result = place_blocks(thrashing_execution, self.CACHE, self.LINE)
        original = {b.name: b.instructions for b in conflicting_program().blocks}
        relocated = {b.name: b.instructions for b in result.program.blocks}
        assert relocated == original

    def test_no_conflict_no_padding(self):
        """Blocks that already fit disjoint lines stay densely packed."""
        program = Program.sequential([("a", 4), ("b", 4)])  # 16 + 16 bytes
        execution = ControlFlowTrace.loop(program, ["a", "b"], 50)
        result = place_blocks(execution, self.CACHE, self.LINE)
        assert result.padding_bytes == 0

    def test_validation(self, thrashing_execution):
        with pytest.raises(ValueError):
            place_blocks(thrashing_execution, 60, 16)

    def test_cold_block_placed_last_can_conflict(self):
        """When the cache is too small for everything, the cold block takes
        the hit, not the hot pair."""
        program = Program(
            (
                BasicBlock("hot_a", 0, 8),
                BasicBlock("hot_b", 64, 8),
                BasicBlock("cold", 128, 16),  # 64 bytes: fills the cache
            )
        )
        execution = ControlFlowTrace.loop(
            program, ["hot_a", "hot_b"], 100, epilogue=["cold"]
        )
        result = place_blocks(execution, 64, 16)
        relocated = ControlFlowTrace(result.program, execution.sequence)
        sim = CacheSimulator(CacheGeometry(64, 16, 1))
        stats = sim.run(relocated.fetch_trace())
        assert stats.miss_rate < 0.1
