"""Tests for technology parameters and the SRAM catalog."""

import pytest

from repro.energy.params import (
    CY7C_2MBIT,
    LOW_POWER_2MBIT,
    SRAM_16MBIT,
    SRAM_CATALOG,
    SRAMPart,
    TechnologyParams,
)


class TestSRAMCatalog:
    def test_paper_em_values(self):
        """The three Em points quoted in the paper."""
        assert CY7C_2MBIT.energy_per_access_nj == 4.95
        assert LOW_POWER_2MBIT.energy_per_access_nj == 2.31
        assert SRAM_16MBIT.energy_per_access_nj == 43.56

    def test_cypress_datasheet_consistency(self):
        """3.3 V x 375 mA x 4 ns = 4.95 nJ, exactly as the paper states."""
        assert CY7C_2MBIT.datasheet_energy_nj() == pytest.approx(4.95)

    def test_datasheet_energy_none_when_unknown(self):
        assert SRAM_16MBIT.datasheet_energy_nj() is None

    def test_catalog_keys(self):
        assert set(SRAM_CATALOG) == {"CY7C-2Mbit", "low-power-2Mbit", "16Mbit"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMPart("bad", 0, 1.0)
        with pytest.raises(ValueError):
            SRAMPart("bad", 1024, 0.0)


class TestTechnologyParams:
    def test_paper_defaults(self):
        t = TechnologyParams()
        assert t.alpha == 0.001
        assert t.beta == 2.0
        assert t.gamma == 20.0
        assert t.data_bus_activity == 0.5

    def test_data_bs(self):
        t = TechnologyParams(data_bus_activity=0.5, data_bus_width_bits=8)
        assert t.data_bs == 4.0

    def test_with_activity(self):
        t = TechnologyParams().with_activity(0.25)
        assert t.data_bus_activity == 0.25
        assert t.alpha == 0.001  # other fields preserved

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -1},
            {"data_bus_activity": 1.5},
            {"data_bus_activity": -0.1},
            {"address_bus_width": 0},
            {"data_bus_width_bits": 0},
            {"capacitive_scale_nj": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TechnologyParams(**kwargs)
