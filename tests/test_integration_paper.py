"""Integration tests: the paper's headline claims, end to end.

Each test reproduces one qualitative result the paper reports; the absolute
values are this reproduction's own (see EXPERIMENTS.md for the side-by-side
with the paper's printed numbers).
"""

import pytest

from repro.core.composite import CompositeProgram
from repro.core.config import CacheConfig, design_space
from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.energy.params import LOW_POWER_2MBIT, SRAM_16MBIT
from repro.kernels import make_compress, make_matmul, mpeg_decoder_kernels

FIG_GRID = [
    CacheConfig(t, l)
    for t in (16, 32, 64, 128, 256, 512)
    for l in (4, 8, 16, 32, 64)
    if l <= t
]


class TestSection3EnergyTrends:
    """Figure 1: the Em value flips the direction of the energy trend."""

    def _grid(self, sram):
        explorer = MemExplorer(make_compress(), energy_model=EnergyModel(sram=sram))
        return explorer.explore(configs=FIG_GRID)

    def test_small_em_favours_small_cache(self):
        result = self._grid(LOW_POWER_2MBIT)
        assert result.min_energy().config == CacheConfig(16, 4)

    def test_large_em_favours_larger_cache(self):
        result = self._grid(SRAM_16MBIT)
        best = result.min_energy().config
        assert best.size > 16

    def test_large_em_energy_decreases_then_small_em_increases(self):
        """Along L=4, growing the cache past the conflict-free knee raises
        energy at Em=2.31 but saves energy at Em=43.56 relative to the
        smallest cache."""
        low = {e.config.size: e.energy_nj
               for e in self._grid(LOW_POWER_2MBIT) if e.config.line_size == 4}
        high = {e.config.size: e.energy_nj
                for e in self._grid(SRAM_16MBIT) if e.config.line_size == 4}
        assert low[512] > low[16]
        assert high[64] < high[16]


class TestSection3Selection:
    """Figure 4's narrative: min-energy and min-time points differ, and
    bounds move the selection."""

    @pytest.fixture(scope="class")
    def result(self):
        return MemExplorer(make_compress()).explore(configs=FIG_GRID)

    def test_min_energy_is_C16L4(self, result):
        assert result.min_energy().config == CacheConfig(16, 4)

    def test_min_time_is_a_large_cache_with_long_lines(self, result):
        best = result.min_cycles().config
        assert best.size >= 64
        assert best.line_size >= 32

    def test_min_energy_differs_from_min_time(self, result):
        assert result.min_energy().config != result.min_cycles().config

    def test_cycle_bound_moves_the_energy_choice(self, result):
        unbounded = result.min_energy().config
        tight = result.min_energy(cycle_bound=result.min_cycles().cycles * 1.2)
        assert tight.config != unbounded

    def test_energy_bound_keeps_a_feasible_fast_point(self, result):
        bound = result.min_energy().energy_nj * 2.5
        constrained = result.min_cycles(energy_bound=bound)
        assert constrained is not None
        assert constrained.energy_nj <= bound


class TestSection41Layout:
    """Figure 5 / Figure 9: off-chip assignment is the largest win."""

    @pytest.mark.parametrize("config", [
        CacheConfig(32, 4), CacheConfig(64, 8), CacheConfig(128, 16),
    ])
    def test_optimized_miss_rate_much_lower(self, config):
        kernel = make_compress(element_size=4)  # int rows alias these caches
        opt = MemExplorer(kernel, optimize_layout=True).evaluate(config)
        unopt = MemExplorer(kernel, optimize_layout=False).evaluate(config)
        assert unopt.miss_rate > 0.5
        assert opt.miss_rate < unopt.miss_rate / 1.9

    def test_energy_and_cycles_improve_too(self):
        kernel = make_compress(element_size=4)
        config = CacheConfig(64, 8)
        opt = MemExplorer(kernel, optimize_layout=True).evaluate(config)
        unopt = MemExplorer(kernel, optimize_layout=False).evaluate(config)
        assert opt.cycles < unopt.cycles
        assert opt.energy_nj < unopt.energy_nj


class TestSection42Tiling:
    """Figure 6/7 shape on the reuse kernel: miss rate and energy fall with
    the tiling size until the tile exceeds the cache lines, then rise."""

    @pytest.fixture(scope="class")
    def sweep(self):
        explorer = MemExplorer(make_matmul())
        return {
            b: explorer.evaluate(CacheConfig(256, 16, 1, b))
            for b in (1, 2, 4, 8, 16, 32)
        }

    def test_miss_rate_falls_through_the_fitting_tiles(self, sweep):
        assert sweep[2].miss_rate < sweep[1].miss_rate
        assert sweep[4].miss_rate < sweep[2].miss_rate
        assert sweep[8].miss_rate < sweep[4].miss_rate

    def test_energy_falls_with_it(self, sweep):
        assert sweep[8].energy_nj < sweep[1].energy_nj

    def test_oversized_tile_degrades(self, sweep):
        """"If the tiling size is greater than the number of cache lines,
        the data in the cache gets replaced before being used.\""""
        assert sweep[16].miss_rate > sweep[8].miss_rate
        assert sweep[16].energy_nj > sweep[8].energy_nj


class TestSection43Associativity:
    """Figure 8: associativity removes conflict misses (Dequant's three
    aliasing streams need >= 4 ways at the dense layout)."""

    def test_dequant_unoptimized_fixed_by_ways(self):
        from repro.kernels import make_dequant

        explorer = MemExplorer(make_dequant(), optimize_layout=False)
        direct = explorer.evaluate(CacheConfig(64, 8, 1))
        four_way = explorer.evaluate(CacheConfig(64, 8, 4))
        assert direct.miss_rate > 0.9
        assert four_way.miss_rate < 0.2

    def test_hit_time_penalty_appears_when_no_conflicts_remain(self):
        explorer = MemExplorer(make_compress())
        direct = explorer.evaluate(CacheConfig(256, 16, 1))
        eight_way = explorer.evaluate(CacheConfig(256, 16, 8))
        # Conflict-free layout: associativity buys nothing, costs hit time.
        assert eight_way.cycles >= direct.cycles


class TestSection5MPEG:
    """The case study: the whole-decoder optimum differs from the
    per-kernel optima, and the min-energy/min-time configurations differ."""

    @pytest.fixture(scope="class")
    def program(self):
        return CompositeProgram(mpeg_decoder_kernels(macroblocks=2))

    @pytest.fixture(scope="class")
    def configs(self):
        return list(
            design_space(
                max_size=512,
                min_size=16,
                max_line=16,
                ways=(1, 8),
                tilings=(1, 8),
            )
        )

    def test_min_energy_and_min_time_differ(self, program, configs):
        result = program.explore(configs)
        assert result.min_energy().config != result.min_cycles().config

    def test_min_time_prefers_large_cache(self, program, configs):
        result = program.explore(configs)
        assert result.min_cycles().config.size >= 256

    def test_whole_program_optimum_not_any_kernel_optimum(self, program, configs):
        result = program.explore(configs)
        whole = result.min_energy().config
        per_kernel = program.per_kernel_optima(configs)
        assert any(cfg != whole for cfg, _ in per_kernel.values())
