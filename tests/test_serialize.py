"""Tests for exploration result serialization."""

import io

import pytest

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.core.serialize import (
    load_results_csv,
    load_results_json,
    save_results_csv,
    save_results_json,
)
from repro.kernels import make_compress


@pytest.fixture(scope="module")
def result():
    explorer = MemExplorer(make_compress(n=7))
    configs = [CacheConfig(32, 4), CacheConfig(64, 8, 2, 4)]
    return explorer.explore(configs=configs)


class TestCSV:
    def test_round_trip_file(self, result, tmp_path):
        path = tmp_path / "results.csv"
        assert save_results_csv(result, path) == len(result)
        back = load_results_csv(path)
        assert len(back) == len(result)
        for a, b in zip(result, back):
            assert a.config == b.config
            assert a.miss_rate == b.miss_rate
            assert a.cycles == b.cycles
            assert a.energy_nj == b.energy_nj
            assert a.conflict_free_layout == b.conflict_free_layout

    def test_round_trip_stream(self, result):
        buf = io.StringIO()
        save_results_csv(result, buf)
        buf.seek(0)
        back = load_results_csv(buf)
        assert back.min_energy().config == result.min_energy().config

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing columns"):
            load_results_csv(io.StringIO("size,line_size\n32,4\n"))

    def test_selection_survives_round_trip(self, result, tmp_path):
        path = tmp_path / "r.csv"
        save_results_csv(result, path)
        back = load_results_csv(path)
        assert back.min_cycles().config == result.min_cycles().config


class TestJSON:
    def test_round_trip_file(self, result, tmp_path):
        path = tmp_path / "results.json"
        assert save_results_json(result, path) == len(result)
        back = load_results_json(path)
        for a, b in zip(result, back):
            assert a.config == b.config
            assert a.energy_nj == pytest.approx(b.energy_nj)
            assert a.add_bs == pytest.approx(b.add_bs)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro exploration"):
            load_results_json(io.StringIO('{"format": "other"}'))

    def test_record_fields_preserved(self, result):
        buf = io.StringIO()
        save_results_json(result, buf)
        buf.seek(0)
        back = load_results_json(buf)
        assert [e.record() for e in back] == [e.record() for e in result]
