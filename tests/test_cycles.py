"""Tests for the Section 2.2 cycle model."""

import pytest

from repro.core.cycles import (
    CYCLES_PER_HIT,
    CYCLES_PER_MISS,
    cycles_per_hit,
    cycles_per_miss,
    processor_cycles,
)


class TestTables:
    def test_paper_hit_latencies(self):
        assert CYCLES_PER_HIT == {1: 1.0, 2: 1.1, 4: 1.12, 8: 1.14}

    def test_paper_miss_penalties(self):
        assert CYCLES_PER_MISS == {
            4: 40, 8: 40, 16: 42, 32: 44, 64: 48, 128: 56, 256: 72,
        }


class TestLookups:
    def test_tabulated_values(self):
        assert cycles_per_hit(2) == 1.1
        assert cycles_per_miss(64) == 48.0

    def test_hit_extrapolation(self):
        assert cycles_per_hit(16) == pytest.approx(1.16)
        assert cycles_per_hit(32) == pytest.approx(1.18)

    def test_miss_extrapolation(self):
        assert cycles_per_miss(512) == 88.0
        assert cycles_per_miss(2) == 40.0
        assert cycles_per_miss(1) == 40.0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            cycles_per_hit(3)
        with pytest.raises(ValueError):
            cycles_per_hit(0)
        with pytest.raises(ValueError):
            cycles_per_miss(24)


class TestProcessorCycles:
    def test_all_hits(self):
        assert processor_cycles(0.0, 1000, ways=1, line_size=4) == 1000.0

    def test_all_misses(self):
        # miss cost = tiling + penalty = 1 + 40.
        assert processor_cycles(1.0, 100, ways=1, line_size=4) == 4100.0

    def test_paper_formula(self):
        """cycles = hr*trip*cph + mr*trip*(B + cpm)."""
        mr, trip, ways, line, tile = 0.25, 961, 2, 16, 8
        expected = 961 * (0.75 * 1.1 + 0.25 * (8 + 42))
        assert processor_cycles(mr, trip, ways, line, tile) == pytest.approx(expected)

    def test_figure9_anchor(self):
        """The legible Figure 9 baseline: Compress unoptimized at C64L8 has
        miss rate 0.969 and ~37,300 cycles over 961 iterations."""
        cycles = processor_cycles(0.969, 961, ways=1, line_size=8, tiling=1)
        assert cycles == pytest.approx(38200, rel=0.05)

    def test_tiling_enters_miss_penalty(self):
        base = processor_cycles(0.5, 100, 1, 8, tiling=1)
        tiled = processor_cycles(0.5, 100, 1, 8, tiling=8)
        assert tiled - base == pytest.approx(0.5 * 100 * 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            processor_cycles(1.5, 100)
        with pytest.raises(ValueError):
            processor_cycles(0.5, -1)
        with pytest.raises(ValueError):
            processor_cycles(0.5, 100, tiling=0)
