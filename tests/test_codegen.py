"""Tests for code generation, verified by execution."""

import pytest

from repro.kernels import (
    make_compress,
    make_conv2d,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
    make_transpose,
)
from repro.layout.assignment import assign_offchip_layout
from repro.loops.codegen import generate_c, generate_python, run_generated
from repro.loops.trace_gen import generate_trace

ALL_MAKERS = [
    make_compress, make_matadd, make_matmul, make_pde, make_sor,
    make_transpose, make_conv2d,
]


class TestExecutionEquivalence:
    """The strongest codegen check: run the generated program and compare
    its recorded addresses byte-for-byte with the analytic trace."""

    @pytest.mark.parametrize("make", ALL_MAKERS)
    def test_dense_layout(self, make):
        kernel = make()
        nest = kernel.nest
        recorded = run_generated(nest)
        expected = generate_trace(nest).addresses.tolist()
        assert recorded == expected

    @pytest.mark.parametrize("make", [make_compress, make_matadd, make_pde])
    def test_padded_layout(self, make):
        kernel = make()
        layout = assign_offchip_layout(kernel.nest, 64, 8).layout
        recorded = run_generated(kernel.nest, layout=layout)
        expected = generate_trace(kernel.nest, layout=layout).addresses.tolist()
        assert recorded == expected

    @pytest.mark.parametrize("tile", [2, 4, 8])
    def test_tiled(self, tile):
        nest = make_compress(n=7).nest
        recorded = run_generated(nest, tile=tile)
        expected = generate_trace(nest, tile=tile).addresses.tolist()
        assert recorded == expected

    def test_tiled_subset_of_loops(self):
        kernel = make_matmul(n=5)
        nest = kernel.nest
        recorded = run_generated(nest, tile=2, n_tiled=kernel.n_tiled)
        expected = generate_trace(
            nest, tile=2, n_tiled=kernel.n_tiled
        ).addresses.tolist()
        assert recorded == expected


class TestCSource:
    def test_contains_padded_declaration(self):
        kernel = make_compress()
        layout = assign_offchip_layout(kernel.nest, 8, 2).layout
        source = generate_c(kernel.nest, layout=layout)
        # pitch 36 over 32 rows: flat extent 35*36 + 32 = 1292 elements.
        assert "int a[" in source
        assert "/* padded */" in source
        assert "36*(i" in source or "36*(i - 1)" in source

    def test_tiled_headers(self):
        source = generate_c(make_compress(n=7).nest, tile=4)
        assert "for (int ti = 1; ti <= 7; ti += 4)" in source
        assert "ti + 3 < 7 ? ti + 3 : 7" in source

    def test_write_statement_collects_reads(self):
        source = generate_c(make_matadd().nest)
        assert "c[" in source and "= a[" in source and "+ b[" in source

    def test_untiled_has_plain_loops(self):
        source = generate_c(make_matadd().nest)
        assert "for (int i = 0; i <= 5; i += 1)" in source
        assert "ti" not in source

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_c(make_matadd().nest, tile=0)
        with pytest.raises(ValueError):
            generate_python(make_matadd().nest, tile=0)


class TestPythonSource:
    def test_defines_named_function(self):
        source = generate_python(make_matadd().nest)
        assert source.startswith("def matadd(record):")

    def test_read_only_nest(self):
        from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

        i = var("i")
        nest = LoopNest(
            name="reads",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i,)),),
            arrays=(ArrayDecl("a", (4,)),),
        )
        assert run_generated(nest) == [0, 1, 2, 3]
        c_source = generate_c(nest)
        assert "(void)a[" in c_source
