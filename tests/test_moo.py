"""Tests for the multi-objective search subsystem (``repro.moo``)."""

import random
import threading

import pytest

from repro.core.config import CacheConfig, design_space
from repro.core.metrics import PerformanceEstimate
from repro.engine import Evaluator, KernelWorkload
from repro.engine.resilience import CheckpointMismatchError, SweepCancelledError
from repro.kernels import get_kernel
from repro.moo import (
    ConfigGrammar,
    FrontArchive,
    GrammaticalEvolutionSearcher,
    NSGA2Searcher,
    SearchSettings,
    analytic_seeds,
    fast_nondominated_sort,
    objective_vector,
    run_search,
    search_fingerprint,
)


def small_space():
    return list(design_space(max_size=128, min_size=16, ways=(1, 2)))


def make_evaluator():
    return Evaluator(KernelWorkload(get_kernel("compress")))


def estimate_for(config, cycles, energy):
    return PerformanceEstimate(
        config=config,
        miss_rate=0.1,
        cycles=float(cycles),
        energy_nj=float(energy),
        events=10,
        accesses=10,
        reads=10,
        read_miss_rate=0.1,
        add_bs=1.0,
    )


class TestGrammar:
    def test_encode_decode_round_trip_over_whole_space(self):
        grammar = ConfigGrammar.from_space(small_space())
        for config in grammar.configs():
            assert grammar.decode(grammar.encode(config)) == config

    def test_random_genomes_always_decode_in_space(self):
        grammar = ConfigGrammar.from_space(small_space())
        space = set(grammar.configs())
        rng = random.Random(42)
        for _ in range(200):
            genome = grammar.random_genome(rng)
            assert grammar.decode(genome) in space

    def test_short_genome_wraps(self):
        grammar = ConfigGrammar.from_space(small_space())
        config = grammar.decode((1,))
        assert isinstance(config, CacheConfig)

    def test_empty_genome_rejected(self):
        grammar = ConfigGrammar.from_space(small_space())
        with pytest.raises(ValueError):
            grammar.decode(())

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ConfigGrammar.from_space([])

    def test_decode_respects_feasibility(self):
        # A grammar with 8-way candidates must never emit more ways than
        # the derived cache has lines.
        grammar = ConfigGrammar(
            sizes=(16, 64), line_sizes=(4, 16), ways=(1, 8), tilings=(1, 4)
        )
        rng = random.Random(7)
        for _ in range(200):
            config = grammar.decode(grammar.random_genome(rng))
            assert config.ways <= config.size // config.line_size
            assert config.tiling <= config.size // config.line_size


class TestFrontArchive:
    def test_dominated_points_never_admitted(self):
        archive = FrontArchive()
        a = estimate_for(CacheConfig(16, 4), 1, 9)
        b = estimate_for(CacheConfig(32, 4), 9, 1)
        dominated = estimate_for(CacheConfig(64, 4), 10, 10)
        archive.add([a, b, dominated])
        assert len(archive) == 2
        assert dominated not in archive.estimates()

    def test_duplicate_vectors_collapse_to_smallest_config(self):
        archive = FrontArchive()
        big = estimate_for(CacheConfig(64, 4), 5, 5)
        small = estimate_for(CacheConfig(16, 4), 5, 5)
        archive.add([big, small])
        assert archive.estimates() == [small]

    def test_capacity_pruning_keeps_extremes(self):
        archive = FrontArchive(capacity=4)
        estimates = [
            estimate_for(CacheConfig(2 ** (4 + i % 6), 4), i + 1, 10 - i)
            for i in range(10)
        ]
        archive.add(estimates)
        assert len(archive) == 4
        points = archive.points()
        assert (1.0, 10.0) in points
        assert (10.0, 1.0) in points

    def test_hypervolume_monotone_despite_capacity_pruning(self):
        # The hypervolume series must stay monotone even when the bounded
        # estimate archive prunes points that still contribute volume.
        archive = FrontArchive(capacity=4, reference=(100.0, 100.0))
        rng = random.Random(3)
        last = 0.0
        for _ in range(30):
            c = rng.randrange(1, 90)
            e = rng.randrange(1, 90)
            config = CacheConfig(2 ** rng.randrange(4, 12), 4)
            archive.add([estimate_for(config, c, e)])
            current = archive.hypervolume()
            assert current >= last - 1e-12
            last = current

    def test_reference_fixed_once_set(self):
        archive = FrontArchive()
        archive.set_reference((10.0, 10.0))
        archive.set_reference((10.0, 10.0))  # idempotent re-set is fine
        with pytest.raises(ValueError):
            archive.set_reference((20.0, 20.0))

    def test_hypervolume_requires_reference(self):
        with pytest.raises(ValueError):
            FrontArchive().hypervolume()

    def test_record_generation_event_shape(self):
        archive = FrontArchive(reference=(10.0, 10.0))
        archive.add([estimate_for(CacheConfig(16, 4), 2, 2)])
        event = archive.record_generation(generation=0, evaluations=1)
        assert event["schema"] == "repro.front/1"
        assert event["event"] == "front"
        assert event["generation"] == 0
        assert event["evaluations"] == 1
        assert event["archive_size"] == 1
        assert event["objectives"] == ["cycles", "energy"]
        assert event["reference"] == [10.0, 10.0]
        assert event["hypervolume"] == pytest.approx(64.0)
        assert event["points"][0]["objectives"] == {"cycles": 2.0, "energy": 2.0}

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            FrontArchive(capacity=2)


class TestFastNondominatedSort:
    def test_ranks(self):
        vectors = [(1.0, 9.0), (9.0, 1.0), (5.0, 5.0), (6.0, 6.0), (9.0, 9.0)]
        fronts = fast_nondominated_sort(vectors)
        assert fronts[0] == [0, 1, 2]
        assert fronts[1] == [3]
        assert fronts[2] == [4]

    def test_empty(self):
        assert fast_nondominated_sort([]) == []


class TestSearchSettings:
    def test_round_trip(self):
        settings = SearchSettings(
            searcher="ge",
            generations=5,
            population=8,
            seed=3,
            objectives=("cycles", "energy", "area"),
            archive_capacity=16,
            reference=(10.0, 20.0, 30.0),
            seed_population=False,
        )
        assert SearchSettings.from_json(settings.to_json()) == settings

    def test_reference_omitted_when_none(self):
        assert "reference" not in SearchSettings().to_json()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            SearchSettings.from_json({"searcher": "nsga2", "bogus": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"generations": 0},
            {"population": 0},
            {"archive_capacity": 3},
            {"objectives": ()},
            {"objectives": ("cycles", "cycles")},
            {"objectives": ("latency",)},
            {"reference": (1.0,)},
            {"reference": (0.0, 1.0)},
            {"searcher": ""},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SearchSettings(**kwargs)

    def test_budget(self):
        assert SearchSettings(generations=4, population=6).budget == 24


class TestSeeding:
    def test_seeds_lie_in_space_and_are_unique(self):
        evaluator = make_evaluator()
        space = small_space()
        seeds = analytic_seeds(evaluator, space)
        assert seeds
        assert len(seeds) == len(set(seeds))
        assert set(seeds) <= set(space)

    def test_limit_respected(self):
        evaluator = make_evaluator()
        seeds = analytic_seeds(evaluator, small_space(), limit=2)
        assert len(seeds) <= 2

    def test_no_kernel_seeds_nothing(self):
        class Bare:
            workload = None

        assert analytic_seeds(Bare(), small_space()) == []


class TestRunSearch:
    SETTINGS = dict(generations=4, population=8, seed=11)

    def _run(self, **kwargs):
        settings = SearchSettings(**{**self.SETTINGS, **kwargs.pop("settings", {})})
        return run_search(make_evaluator(), small_space(), settings, **kwargs)

    def test_front_is_nondominated_and_events_monotone(self):
        run = self._run()
        assert run.generations == 4
        assert len(run.events) == 4
        vectors = [objective_vector(e) for e in run.front]
        for v in vectors:
            assert not any(
                w != v and all(a <= b for a, b in zip(w, v)) and w < v
                for w in vectors
            )
        series = [event["hypervolume"] for event in run.events]
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
        assert run.hypervolume == series[-1]

    def test_fixed_seed_is_deterministic(self):
        first = self._run()
        second = self._run()
        assert first.events == second.events
        assert [e.config for e in first.front] == [e.config for e in second.front]
        assert first.evaluations == second.evaluations

    def test_parallel_jobs_match_serial(self):
        serial = self._run(jobs=1)
        parallel = self._run(jobs=4)
        assert serial.events == parallel.events
        assert [e.config for e in serial.front] == [
            e.config for e in parallel.front
        ]

    def test_ge_searcher_runs(self):
        run = self._run(settings={"searcher": "ge"})
        assert run.generations == 4
        assert run.front

    def test_evaluations_count_unique_requests(self):
        run = self._run()
        assert run.evaluations == len(run.estimates)
        assert run.evaluations <= SearchSettings(**self.SETTINGS).budget

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            run_search(make_evaluator(), [])

    def test_unknown_searcher_rejected(self):
        with pytest.raises(LookupError):
            self._run(settings={"searcher": "simulated-annealing"})

    def test_resume_is_bit_identical(self, tmp_path):
        journal = str(tmp_path / "search.moo.jsonl")
        clean = self._run()

        cancel = threading.Event()

        def stop_after_two(event, archive):
            if event["generation"] == 1:
                cancel.set()

        with pytest.raises(SweepCancelledError):
            self._run(
                checkpoint=journal,
                cancel_event=cancel,
                on_generation=stop_after_two,
            )
        resumed = self._run(checkpoint=journal, resume=True)
        assert resumed.events == clean.events
        assert [e.config for e in resumed.front] == [
            e.config for e in clean.front
        ]
        assert resumed.evaluations == clean.evaluations

    def test_resume_rejects_changed_settings(self, tmp_path):
        journal = str(tmp_path / "search.moo.jsonl")
        self._run(checkpoint=journal)
        with pytest.raises(CheckpointMismatchError):
            self._run(checkpoint=journal, resume=True, settings={"seed": 99})

    def test_cancel_before_first_generation(self):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(SweepCancelledError):
            self._run(cancel_event=cancel)

    def test_fingerprint_tracks_settings_and_space(self):
        evaluator = make_evaluator()
        space = small_space()
        base = search_fingerprint(evaluator, space, SearchSettings())
        assert base == search_fingerprint(evaluator, space, SearchSettings())
        assert base != search_fingerprint(
            evaluator, space, SearchSettings(seed=1)
        )
        assert base != search_fingerprint(evaluator, space[:-1], SearchSettings())


class TestSearcherUnits:
    def test_nsga2_population_floor(self):
        with pytest.raises(ValueError):
            NSGA2Searcher().setup(
                small_space(), population=1, generations=1, seed=0
            )

    def test_ge_genome_floor(self):
        with pytest.raises(ValueError):
            GrammaticalEvolutionSearcher(genome_length=2)

    def test_ask_returns_population_sized_batches(self):
        searcher = NSGA2Searcher()
        searcher.setup(small_space(), population=6, generations=3, seed=5)
        asked = searcher.ask()
        assert len(asked) == 6
        results = [
            (config, (float(config.size), float(config.line_size)))
            for config in dict.fromkeys(asked)
        ]
        searcher.tell(results)
        assert searcher.ask()
