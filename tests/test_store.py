"""The persistent result store (``repro.serve.store``).

The load-bearing claims:

* an estimate round-trips through the sqlite store bit-identically
  (floats serialise via ``repr``, dataclass equality is exact);
* rows are addressed by ``(evaluator fingerprint, config)``: different
  energy models or backends never share rows, identical evaluators
  always do -- across store instances and processes;
* an empty database migrates to ``repro.store/1`` on first open, a
  future-schema database is refused with a clear error, and garbage
  files are refused rather than clobbered;
* :class:`StoreBackedEvaluator` is a transparent L2 tier: store hits
  bypass the engine entirely, misses delegate and write back, and the
  wrapper leaves sweep fingerprints unchanged.
"""

import json
import sqlite3

import pytest

from repro.core.config import CacheConfig
from repro.energy.model import EnergyModel
from repro.energy.params import SRAM_CATALOG
from repro.engine import Evaluator, KernelWorkload, order_configs
from repro.engine.resilience import sweep_fingerprint
from repro.kernels import get_kernel, make_compress
from repro.obs.metrics import get_metrics
from repro.serve import (
    STORE_SCHEMA,
    ResultStore,
    StoreBackedEvaluator,
    StoreError,
    StoreSchemaError,
    config_key,
    evaluator_fingerprint,
    open_store,
)


def _evaluator(**kwargs):
    return Evaluator(KernelWorkload(make_compress(n=7)), **kwargs)


def _configs():
    return order_configs(
        CacheConfig(size, line) for size in (32, 64) for line in (4, 8)
    )


def _counter(name):
    return get_metrics().counter(name).value


class TestRoundTrip:
    def test_estimate_round_trips_exactly(self, tmp_path):
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        estimate = evaluator.evaluate(config)
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", config, estimate)
        loaded = store.get("eval-a", config)
        # Frozen-dataclass equality: every field, floats included, exact.
        assert loaded == estimate
        assert loaded.energy_nj == estimate.energy_nj
        assert repr(loaded) == repr(estimate)

    def test_full_result_round_trips_exactly(self, tmp_path):
        evaluator = _evaluator()
        configs = _configs()
        run = evaluator.sweep(configs=configs)
        store = ResultStore(str(tmp_path / "r.db"))
        store.put_many("eval-a", zip(configs, run.estimates))
        result = store.result_for("eval-a", configs)
        assert list(result.estimates) == list(run.estimates)

    def test_config_identity_keys_rows(self, tmp_path):
        evaluator = _evaluator()
        a, b = CacheConfig(64, 8, 1, 1), CacheConfig(64, 8, 2, 1)
        assert config_key(a) != config_key(b)
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", a, evaluator.evaluate(a))
        assert store.get("eval-a", b) is None
        assert store.get("eval-a", CacheConfig(64, 8, 1, 1)) is not None

    def test_partial_sweep_yields_no_result(self, tmp_path):
        evaluator = _evaluator()
        configs = _configs()
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", configs[0], evaluator.evaluate(configs[0]))
        assert store.result_for("eval-a", configs) is None

    def test_shared_across_instances(self, tmp_path):
        path = str(tmp_path / "r.db")
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        with ResultStore(path) as writer:
            writer.put("eval-a", config, evaluator.evaluate(config))
        with ResultStore(path) as reader:
            assert reader.get("eval-a", config) == evaluator.evaluate(config)

    def test_first_writer_wins(self, tmp_path):
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        first = evaluator.evaluate(config)
        second = evaluator.evaluate(CacheConfig(32, 4))
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", config, first)
        store.put("eval-a", config, second)  # ignored, not replaced
        assert store.get("eval-a", config) == first

    def test_hit_miss_put_counters(self, tmp_path):
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        store = ResultStore(str(tmp_path / "r.db"))
        misses, hits, puts = (
            _counter("store.misses"), _counter("store.hits"),
            _counter("store.puts"),
        )
        assert store.get("eval-a", config) is None
        store.put("eval-a", config, evaluator.evaluate(config))
        assert store.get("eval-a", config) is not None
        assert _counter("store.misses") == misses + 1
        assert _counter("store.hits") == hits + 1
        assert _counter("store.puts") == puts + 1


class TestSchema:
    def test_empty_db_migrates(self, tmp_path):
        path = str(tmp_path / "fresh.db")
        store = ResultStore(path)
        assert len(store) == 0
        store.close()
        conn = sqlite3.connect(path)
        tag = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()[0]
        conn.close()
        assert tag == STORE_SCHEMA

    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = 'repro.store/2' WHERE key = 'schema'"
            )
        conn.close()
        with pytest.raises(StoreSchemaError, match="newer than"):
            ResultStore(path)

    def test_unrecognised_schema_tag_refused(self, tmp_path):
        path = str(tmp_path / "odd.db")
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = 'something-else' WHERE key = 'schema'"
            )
        conn.close()
        with pytest.raises(StoreError, match="not a repro.store/1 store"):
            ResultStore(path)

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_text("this is not sqlite at all, not even close........\n")
        with pytest.raises(StoreError, match="not a repro.store/1 store"):
            ResultStore(str(path))

    def test_open_store_creates_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "r.db"
        store = open_store(str(path))
        assert path.exists()
        store.close()


class TestEvaluatorFingerprint:
    def test_same_setup_same_fingerprint(self):
        assert evaluator_fingerprint(_evaluator()) == evaluator_fingerprint(
            _evaluator()
        )

    def test_backend_changes_fingerprint(self):
        assert evaluator_fingerprint(
            _evaluator(backend="fastsim")
        ) != evaluator_fingerprint(_evaluator(backend="reference"))

    def test_energy_model_changes_fingerprint(self):
        sloww = EnergyModel(sram=SRAM_CATALOG["low-power-2Mbit"])
        assert evaluator_fingerprint(
            _evaluator(energy_model=sloww)
        ) != evaluator_fingerprint(_evaluator())

    def test_workload_changes_fingerprint(self):
        other = Evaluator(KernelWorkload(get_kernel("conv2d")))
        assert evaluator_fingerprint(other) != evaluator_fingerprint(
            _evaluator()
        )


class TestStoreBackedEvaluator:
    def test_miss_delegates_and_writes_back(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        wrapped = StoreBackedEvaluator(_evaluator(), store)
        config = CacheConfig(64, 8)
        estimate = wrapped.evaluate(config)
        assert store.get(wrapped.eval_id, config) == estimate

    def test_hit_bypasses_engine(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        first = StoreBackedEvaluator(_evaluator(), store)
        config = CacheConfig(64, 8)
        expected = first.evaluate(config)

        class Exploding:
            workload = backend = energy_model = gray_code = cache = None

            def evaluate(self, config):
                raise AssertionError("store hit must not reach the engine")

        second = StoreBackedEvaluator(
            Exploding(), store, eval_id=first.eval_id
        )
        assert second.evaluate(config) == expected

    def test_sweep_fingerprint_unchanged_by_wrapper(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        configs = _configs()
        assert sweep_fingerprint(
            StoreBackedEvaluator(evaluator, store), configs
        ) == sweep_fingerprint(evaluator, configs)

    def test_pickles_without_connection(self, tmp_path):
        import pickle

        store = ResultStore(str(tmp_path / "r.db"))
        wrapped = StoreBackedEvaluator(_evaluator(), store)
        config = CacheConfig(64, 8)
        expected = wrapped.evaluate(config)
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone.evaluate(config) == expected

    def test_distinct_evaluators_do_not_share_rows(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        config = CacheConfig(64, 8)
        fast = StoreBackedEvaluator(_evaluator(), store)
        fast.evaluate(config)
        other = StoreBackedEvaluator(
            Evaluator(KernelWorkload(get_kernel("conv2d"))), store
        )
        assert store.get(other.eval_id, config) is None


class TestJobPersistence:
    def test_job_records_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        doc = {"job_id": "j1", "state": "queued", "nested": {"a": [1, 2]}}
        store.save_job("j1", doc)
        assert store.load_jobs() == [doc]
        store.save_job("j1", {"job_id": "j1", "state": "done"})
        assert store.load_jobs() == [{"job_id": "j1", "state": "done"}]
        store.delete_job("j1")
        assert store.load_jobs() == []
