"""The persistent result store (``repro.serve.store``).

The load-bearing claims:

* an estimate round-trips through the sqlite store bit-identically
  (floats serialise via ``repr``, dataclass equality is exact);
* rows are addressed by ``(evaluator fingerprint, config)``: different
  energy models or backends never share rows, identical evaluators
  always do -- across store instances and processes;
* an empty database migrates to ``repro.store/1`` on first open, a
  future-schema database is refused with a clear error, and garbage
  files are refused rather than clobbered;
* :class:`StoreBackedEvaluator` is a transparent L2 tier: store hits
  bypass the engine entirely, misses delegate and write back, and the
  wrapper leaves sweep fingerprints unchanged.
"""

import json
import sqlite3

import pytest

from repro.core.config import CacheConfig
from repro.energy.model import EnergyModel
from repro.energy.params import SRAM_CATALOG
from repro.engine import Evaluator, KernelWorkload, order_configs
from repro.engine.resilience import sweep_fingerprint
from repro.kernels import get_kernel, make_compress
from repro.obs.metrics import get_metrics
from repro.serve import (
    STORE_SCHEMA,
    ResultStore,
    StoreBackedEvaluator,
    StoreError,
    StoreSchemaError,
    config_key,
    evaluator_fingerprint,
    open_store,
)


def _evaluator(**kwargs):
    return Evaluator(KernelWorkload(make_compress(n=7)), **kwargs)


def _configs():
    return order_configs(
        CacheConfig(size, line) for size in (32, 64) for line in (4, 8)
    )


def _counter(name):
    return get_metrics().counter(name).value


class TestRoundTrip:
    def test_estimate_round_trips_exactly(self, tmp_path):
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        estimate = evaluator.evaluate(config)
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", config, estimate)
        loaded = store.get("eval-a", config)
        # Frozen-dataclass equality: every field, floats included, exact.
        assert loaded == estimate
        assert loaded.energy_nj == estimate.energy_nj
        assert repr(loaded) == repr(estimate)

    def test_full_result_round_trips_exactly(self, tmp_path):
        evaluator = _evaluator()
        configs = _configs()
        run = evaluator.sweep(configs=configs)
        store = ResultStore(str(tmp_path / "r.db"))
        store.put_many("eval-a", zip(configs, run.estimates))
        result = store.result_for("eval-a", configs)
        assert list(result.estimates) == list(run.estimates)

    def test_config_identity_keys_rows(self, tmp_path):
        evaluator = _evaluator()
        a, b = CacheConfig(64, 8, 1, 1), CacheConfig(64, 8, 2, 1)
        assert config_key(a) != config_key(b)
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", a, evaluator.evaluate(a))
        assert store.get("eval-a", b) is None
        assert store.get("eval-a", CacheConfig(64, 8, 1, 1)) is not None

    def test_partial_sweep_yields_no_result(self, tmp_path):
        evaluator = _evaluator()
        configs = _configs()
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", configs[0], evaluator.evaluate(configs[0]))
        assert store.result_for("eval-a", configs) is None

    def test_shared_across_instances(self, tmp_path):
        path = str(tmp_path / "r.db")
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        with ResultStore(path) as writer:
            writer.put("eval-a", config, evaluator.evaluate(config))
        with ResultStore(path) as reader:
            assert reader.get("eval-a", config) == evaluator.evaluate(config)

    def test_first_writer_wins(self, tmp_path):
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        first = evaluator.evaluate(config)
        second = evaluator.evaluate(CacheConfig(32, 4))
        store = ResultStore(str(tmp_path / "r.db"))
        store.put("eval-a", config, first)
        store.put("eval-a", config, second)  # ignored, not replaced
        assert store.get("eval-a", config) == first

    def test_hit_miss_put_counters(self, tmp_path):
        evaluator = _evaluator()
        config = CacheConfig(64, 8)
        store = ResultStore(str(tmp_path / "r.db"))
        misses, hits, puts = (
            _counter("store.misses"), _counter("store.hits"),
            _counter("store.puts"),
        )
        assert store.get("eval-a", config) is None
        store.put("eval-a", config, evaluator.evaluate(config))
        assert store.get("eval-a", config) is not None
        assert _counter("store.misses") == misses + 1
        assert _counter("store.hits") == hits + 1
        assert _counter("store.puts") == puts + 1


class TestSchema:
    def test_empty_db_migrates(self, tmp_path):
        path = str(tmp_path / "fresh.db")
        store = ResultStore(path)
        assert len(store) == 0
        store.close()
        conn = sqlite3.connect(path)
        tag = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()[0]
        conn.close()
        assert tag == STORE_SCHEMA

    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = 'repro.store/2' WHERE key = 'schema'"
            )
        conn.close()
        with pytest.raises(StoreSchemaError, match="newer than"):
            ResultStore(path)

    def test_unrecognised_schema_tag_refused(self, tmp_path):
        path = str(tmp_path / "odd.db")
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = 'something-else' WHERE key = 'schema'"
            )
        conn.close()
        with pytest.raises(StoreError, match="not a repro.store/1 store"):
            ResultStore(path)

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_text("this is not sqlite at all, not even close........\n")
        with pytest.raises(StoreError, match="not a repro.store/1 store"):
            ResultStore(str(path))

    def test_open_store_creates_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "r.db"
        store = open_store(str(path))
        assert path.exists()
        store.close()


class TestEvaluatorFingerprint:
    def test_same_setup_same_fingerprint(self):
        assert evaluator_fingerprint(_evaluator()) == evaluator_fingerprint(
            _evaluator()
        )

    def test_backend_changes_fingerprint(self):
        assert evaluator_fingerprint(
            _evaluator(backend="fastsim")
        ) != evaluator_fingerprint(_evaluator(backend="reference"))

    def test_energy_model_changes_fingerprint(self):
        sloww = EnergyModel(sram=SRAM_CATALOG["low-power-2Mbit"])
        assert evaluator_fingerprint(
            _evaluator(energy_model=sloww)
        ) != evaluator_fingerprint(_evaluator())

    def test_workload_changes_fingerprint(self):
        other = Evaluator(KernelWorkload(get_kernel("conv2d")))
        assert evaluator_fingerprint(other) != evaluator_fingerprint(
            _evaluator()
        )


class TestStoreBackedEvaluator:
    def test_miss_delegates_and_writes_back(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        wrapped = StoreBackedEvaluator(_evaluator(), store)
        config = CacheConfig(64, 8)
        estimate = wrapped.evaluate(config)
        assert store.get(wrapped.eval_id, config) == estimate

    def test_hit_bypasses_engine(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        first = StoreBackedEvaluator(_evaluator(), store)
        config = CacheConfig(64, 8)
        expected = first.evaluate(config)

        class Exploding:
            workload = backend = energy_model = gray_code = cache = None

            def evaluate(self, config):
                raise AssertionError("store hit must not reach the engine")

        second = StoreBackedEvaluator(
            Exploding(), store, eval_id=first.eval_id
        )
        assert second.evaluate(config) == expected

    def test_sweep_fingerprint_unchanged_by_wrapper(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        configs = _configs()
        assert sweep_fingerprint(
            StoreBackedEvaluator(evaluator, store), configs
        ) == sweep_fingerprint(evaluator, configs)

    def test_pickles_without_connection(self, tmp_path):
        import pickle

        store = ResultStore(str(tmp_path / "r.db"))
        wrapped = StoreBackedEvaluator(_evaluator(), store)
        config = CacheConfig(64, 8)
        expected = wrapped.evaluate(config)
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone.evaluate(config) == expected

    def test_distinct_evaluators_do_not_share_rows(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        config = CacheConfig(64, 8)
        fast = StoreBackedEvaluator(_evaluator(), store)
        fast.evaluate(config)
        other = StoreBackedEvaluator(
            Evaluator(KernelWorkload(get_kernel("conv2d"))), store
        )
        assert store.get(other.eval_id, config) is None


class TestJobPersistence:
    def test_job_records_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.db"))
        doc = {"job_id": "j1", "state": "queued", "nested": {"a": [1, 2]}}
        store.save_job("j1", doc)
        assert store.load_jobs() == [doc]
        store.save_job("j1", {"job_id": "j1", "state": "done"})
        assert store.load_jobs() == [{"job_id": "j1", "state": "done"}]
        store.delete_job("j1")
        assert store.load_jobs() == []


def _poison_estimate(path, text="{this is not json"):
    """Corrupt one estimate row in place, bypassing the store API."""
    conn = sqlite3.connect(path)
    with conn:
        conn.execute("UPDATE estimates SET estimate = ? WHERE rowid = 1",
                     (text,))
    conn.close()


class TestChecksums:
    def test_new_rows_carry_sha256_checksums(self, tmp_path):
        import hashlib

        store = open_store(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        eval_id = evaluator_fingerprint(evaluator)
        config = _configs()[0]
        store.put(eval_id, config, evaluator.evaluate(config))
        conn = sqlite3.connect(store.path)
        text, checksum = conn.execute(
            "SELECT estimate, checksum FROM estimates"
        ).fetchone()
        conn.close()
        assert checksum == hashlib.sha256(text.encode()).hexdigest()

    def test_corrupt_row_quarantined_and_reported_as_miss(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        eval_id = evaluator_fingerprint(evaluator)
        config = _configs()[0]
        store.put(eval_id, config, evaluator.evaluate(config))
        store.close()
        _poison_estimate(str(tmp_path / "r.db"))

        store = open_store(str(tmp_path / "r.db"))
        detected = _counter("store.corruption.detected")
        quarantined = _counter("store.corruption.quarantined")
        assert store.get(eval_id, config) is None
        assert _counter("store.corruption.detected") == detected + 1
        assert _counter("store.corruption.quarantined") == quarantined + 1
        stats = store.stats()
        assert stats["quarantine"] == 1
        assert stats["estimates"] == 0  # moved, not lurking

    def test_checksum_mismatch_alone_quarantines(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        eval_id = evaluator_fingerprint(evaluator)
        config = _configs()[0]
        store.put(eval_id, config, evaluator.evaluate(config))
        conn = sqlite3.connect(store.path)
        with conn:
            # Valid JSON, wrong bytes for the recorded checksum.
            conn.execute("UPDATE estimates SET checksum = ?", ("0" * 64,))
        conn.close()
        assert store.get(eval_id, config) is None
        assert store.stats()["quarantine"] == 1

    def test_get_many_skips_corrupt_rows(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        eval_id = evaluator_fingerprint(evaluator)
        configs = _configs()
        store.put_many(
            eval_id, [(c, evaluator.evaluate(c)) for c in configs]
        )
        _poison_estimate(store.path)
        found = store.get_many(eval_id, configs)
        assert len(found) == len(configs) - 1

    def test_corruption_transparently_reevaluated_byte_identically(
        self, tmp_path
    ):
        store = open_store(str(tmp_path / "r.db"))
        backed = StoreBackedEvaluator(_evaluator(), store)
        config = _configs()[0]
        original = backed.evaluate(config)
        _poison_estimate(store.path)
        # The corrupt row reads as a miss; the evaluator recomputes and
        # the fresh estimate (equal to the original) repopulates the row.
        again = backed.evaluate(config)
        assert again == original
        assert store.get(backed.eval_id, config) == original

    def test_manifest_and_trace_checksummed(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        store.save_manifest("job-1", {"schema": "repro.manifest/1"})
        store.save_trace("job-1", {"schema": "repro.trace/1"})
        assert store.load_manifest("job-1") == {"schema": "repro.manifest/1"}
        assert store.load_trace("job-1") == {"schema": "repro.trace/1"}
        conn = sqlite3.connect(store.path)
        with conn:
            conn.execute("UPDATE manifests SET doc = ?", ("{broken",))
        conn.close()
        assert store.load_manifest("job-1") is None
        assert store.stats()["quarantine"] == 1
        assert store.load_trace("job-1") is not None

    def test_legacy_rows_without_checksum_still_read(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        eval_id = evaluator_fingerprint(evaluator)
        config = _configs()[0]
        estimate = evaluator.evaluate(config)
        store.put(eval_id, config, estimate)
        conn = sqlite3.connect(store.path)
        with conn:  # pre-hardening rows have no checksum at all
            conn.execute("UPDATE estimates SET checksum = NULL")
        conn.close()
        assert store.get(eval_id, config) == estimate


class TestVerify:
    def _stored(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        evaluator = _evaluator()
        eval_id = evaluator_fingerprint(evaluator)
        configs = _configs()
        store.put_many(
            eval_id, [(c, evaluator.evaluate(c)) for c in configs]
        )
        return store, evaluator, eval_id, configs

    def test_clean_store_verifies_clean(self, tmp_path):
        store, _, _, configs = self._stored(tmp_path)
        store.save_manifest("j", {"a": 1})
        store.save_trace("j", {"b": 2})
        report = store.verify()
        assert report["clean"] is True
        assert report["corrupt"] == 0
        assert report["scanned"] == len(configs) + 2

    def test_audit_reports_without_touching(self, tmp_path):
        store, _, _, _ = self._stored(tmp_path)
        _poison_estimate(store.path)
        report = store.verify(repair=False)
        assert report["clean"] is False
        assert report["corrupt"] == 1
        assert report["corrupt_rows"][0]["table"] == "estimates"
        # Pure audit: the corrupt row is still where it was.
        assert store.stats()["quarantine"] == 0

    def test_repair_quarantines_and_backfills(self, tmp_path):
        store, evaluator, eval_id, configs = self._stored(tmp_path)
        conn = sqlite3.connect(store.path)
        with conn:  # one legacy row, one corrupt row
            conn.execute(
                "UPDATE estimates SET checksum = NULL WHERE rowid = 2"
            )
        conn.close()
        _poison_estimate(store.path)
        report = store.verify(repair=True)
        assert report["clean"] is True
        assert report["quarantined"] == 1
        assert report["checksums_added"] == 1
        assert store.stats()["quarantine"] == 1
        # After repair the store audits clean end to end.
        again = store.verify()
        assert again["clean"] is True and again["corrupt"] == 0
        assert again["missing_checksum"] == 0

    def test_repair_rebuilds_estimates_from_journal(self, tmp_path):
        from repro.engine.resilience import ResilienceOptions
        from repro.serve import JobManager, JobSpec

        spec = JobSpec(kernel="compress", max_size=32, min_size=16,
                       tilings=(1,))
        store = open_store(str(tmp_path / "r.db"))
        # A persisted job record names the spec (as after a crash or
        # cancellation)...
        JobManager(store).submit(spec)
        # ...and its spool journal holds the committed chunks.
        spool = tmp_path / "spool"
        spool.mkdir()
        journal = str(spool / f"{spec.spec_hash}.jsonl")
        evaluator = spec.build_evaluator()
        estimates = evaluator.sweep(
            configs=spec.configs(),
            resilience=ResilienceOptions(checkpoint=journal),
        ).estimates
        eval_id = spec.eval_id()
        store.put_many(eval_id, list(zip(spec.configs(), estimates)))
        _poison_estimate(store.path)
        report = store.verify(repair=True, spool_dir=str(spool))
        assert report["quarantined"] == 1
        assert report["rows_rebuilt"] == 1
        # The hole is refilled byte-identically from the journal.
        found = store.get_many(eval_id, spec.configs())
        assert [found[c] for c in spec.configs()] == list(estimates)


class TestBusyRetry:
    def test_write_retries_on_locked_database(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))
        attempts = []

        def flaky(conn):
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        before = _counter("store.busy_retries")
        assert store._write(flaky) == "ok"
        assert len(attempts) == 3
        assert _counter("store.busy_retries") == before + 2

    def test_non_busy_errors_surface_immediately(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))

        def broken(conn):
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            store._write(broken)

    def test_retries_exhaust_and_surface(self, tmp_path):
        store = open_store(str(tmp_path / "r.db"))

        def always_locked(conn):
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store._write(always_locked)
