"""The vectorized fast path must be bit-exact with the reference simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.fastsim import fast_hit_miss_counts, fast_miss_vector
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.trace import MemoryTrace


def reference_miss_vector(line_ids, num_sets, ways):
    """Miss flags from the object-oriented simulator."""
    line_size = 1  # feed line ids directly as byte addresses
    geo = CacheGeometry(num_sets * ways * line_size, line_size, ways)
    sim = CacheSimulator(geo)
    return np.array([not sim.access(int(line)) for line in line_ids])


class TestAgainstReference:
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_strided_pattern(self, ways):
        line_ids = np.arange(0, 400, 7) % 64
        fast = fast_miss_vector(line_ids, num_sets=8, ways=ways)
        ref = reference_miss_vector(line_ids, 8, ways)
        assert np.array_equal(fast, ref)

    @pytest.mark.parametrize("num_sets,ways", [(1, 1), (1, 4), (16, 1), (4, 2)])
    def test_repeating_pattern(self, num_sets, ways):
        line_ids = np.tile(np.array([0, 5, 9, 0, 5, 13, 9]), 20)
        fast = fast_miss_vector(line_ids, num_sets, ways)
        ref = reference_miss_vector(line_ids, num_sets, ways)
        assert np.array_equal(fast, ref)

    @given(
        lines=st.lists(st.integers(0, 40), min_size=0, max_size=200),
        sets_log=st.integers(0, 4),
        ways_log=st.integers(0, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_traces_match(self, lines, sets_log, ways_log):
        line_ids = np.asarray(lines, dtype=np.int64)
        num_sets, ways = 2 ** sets_log, 2 ** ways_log
        fast = fast_miss_vector(line_ids, num_sets, ways)
        ref = reference_miss_vector(line_ids, num_sets, ways)
        assert np.array_equal(fast, ref)


class TestBehaviour:
    def test_empty_trace(self):
        assert fast_miss_vector(np.array([], dtype=np.int64), 4, 1).size == 0
        assert fast_hit_miss_counts(np.array([], dtype=np.int64), 4, 1) == (0, 0)

    def test_counts(self):
        line_ids = np.array([0, 0, 1, 0])
        hits, misses = fast_hit_miss_counts(line_ids, 4, 1)
        assert (hits, misses) == (2, 2)

    def test_first_access_always_misses(self):
        line_ids = np.array([3])
        assert fast_miss_vector(line_ids, 8, 1).tolist() == [True]

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            fast_miss_vector(np.array([0]), 0, 1)
        with pytest.raises(ValueError):
            fast_miss_vector(np.array([0]), 4, 0)

    def test_order_restored_after_grouping(self):
        # Interleave two sets; the miss flags must align with input order.
        line_ids = np.array([0, 1, 0, 1, 2, 3])  # sets 0,1,0,1,0,1 (2 sets)
        miss = fast_miss_vector(line_ids, 2, 1)
        assert miss.tolist() == [True, True, False, False, True, True]


class TestMonotonicityProperties:
    @given(lines=st.lists(st.integers(0, 30), min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_lru_inclusion_more_ways_same_sets_never_hurts(self, lines):
        """LRU inclusion: with the set count fixed, doubling ways cannot
        increase misses."""
        line_ids = np.asarray(lines, dtype=np.int64)
        for ways in (1, 2, 4):
            _, m_small = fast_hit_miss_counts(line_ids, 4, ways)
            _, m_big = fast_hit_miss_counts(line_ids, 4, ways * 2)
            assert m_big <= m_small

    @given(lines=st.lists(st.integers(0, 30), min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_fully_associative_stack_property(self, lines):
        """A larger fully-associative LRU cache never misses more."""
        line_ids = np.asarray(lines, dtype=np.int64)
        misses = [
            fast_hit_miss_counts(line_ids, 1, ways)[1] for ways in (1, 2, 4, 8, 16)
        ]
        assert misses == sorted(misses, reverse=True)
