"""Tests for the Pareto frontier utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.core.pareto import dominated_by_any, pareto_front, tradeoff_range


def point(cycles, energy, size=64):
    return PerformanceEstimate(
        config=CacheConfig(size, 4),
        miss_rate=0.1,
        cycles=float(cycles),
        energy_nj=float(energy),
        events=10,
        accesses=10,
        reads=10,
        read_miss_rate=0.1,
        add_bs=1.0,
    )


class TestParetoFront:
    def test_simple_frontier(self):
        pts = [point(1, 9), point(5, 5), point(9, 1), point(6, 6)]
        front = pareto_front(pts)
        assert [(p.cycles, p.energy_nj) for p in front] == [(1, 9), (5, 5), (9, 1)]

    def test_dominated_points_removed(self):
        pts = [point(1, 1), point(2, 2), point(3, 3)]
        assert len(pareto_front(pts)) == 1

    def test_duplicates_collapse(self):
        pts = [point(1, 1), point(1, 1)]
        assert len(pareto_front(pts)) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_dominated_by_any(self):
        pts = [point(1, 1)]
        assert dominated_by_any(point(2, 2), pts)
        assert not dominated_by_any(point(0, 5), pts)

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.integers(1, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_front_properties(self, coords):
        pts = [point(c, e) for c, e in coords]
        front = pareto_front(pts)
        # Non-empty, sorted by cycles, strictly improving energy.
        assert front
        cycles = [p.cycles for p in front]
        energies = [p.energy_nj for p in front]
        assert cycles == sorted(cycles)
        assert energies == sorted(energies, reverse=True)
        assert len(set(energies)) == len(energies)
        # No front member dominates another; everything else is dominated.
        for p in front:
            assert not dominated_by_any(p, front)
        for p in pts:
            if all(
                (p.cycles, p.energy_nj) != (q.cycles, q.energy_nj) for q in front
            ):
                assert dominated_by_any(p, front)


class TestTradeoffRange:
    def test_ends(self):
        pts = [point(1, 9), point(5, 5), point(9, 1)]
        fastest, leanest = tradeoff_range(pts)
        assert fastest.cycles == 1
        assert leanest.energy_nj == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tradeoff_range([])
