"""Tests for the Pareto frontier utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.core.pareto import (
    dominated_by_any,
    dominates,
    hypervolume,
    pareto_front,
    pareto_points,
    tradeoff_range,
)


def point(cycles, energy, size=64):
    return PerformanceEstimate(
        config=CacheConfig(size, 4),
        miss_rate=0.1,
        cycles=float(cycles),
        energy_nj=float(energy),
        events=10,
        accesses=10,
        reads=10,
        read_miss_rate=0.1,
        add_bs=1.0,
    )


class TestParetoFront:
    def test_simple_frontier(self):
        pts = [point(1, 9), point(5, 5), point(9, 1), point(6, 6)]
        front = pareto_front(pts)
        assert [(p.cycles, p.energy_nj) for p in front] == [(1, 9), (5, 5), (9, 1)]

    def test_dominated_points_removed(self):
        pts = [point(1, 1), point(2, 2), point(3, 3)]
        assert len(pareto_front(pts)) == 1

    def test_duplicates_collapse(self):
        pts = [point(1, 1), point(1, 1)]
        assert len(pareto_front(pts)) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_dominated_by_any(self):
        pts = [point(1, 1)]
        assert dominated_by_any(point(2, 2), pts)
        assert not dominated_by_any(point(0, 5), pts)

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.integers(1, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_front_properties(self, coords):
        pts = [point(c, e) for c, e in coords]
        front = pareto_front(pts)
        # Non-empty, sorted by cycles, strictly improving energy.
        assert front
        cycles = [p.cycles for p in front]
        energies = [p.energy_nj for p in front]
        assert cycles == sorted(cycles)
        assert energies == sorted(energies, reverse=True)
        assert len(set(energies)) == len(energies)
        # No front member dominates another; everything else is dominated.
        for p in front:
            assert not dominated_by_any(p, front)
        for p in pts:
            if all(
                (p.cycles, p.energy_nj) != (q.cycles, q.energy_nj) for q in front
            ):
                assert dominated_by_any(p, front)


class TestTradeoffRange:
    def test_ends(self):
        pts = [point(1, 9), point(5, 5), point(9, 1)]
        fastest, leanest = tradeoff_range(pts)
        assert fastest.cycles == 1
        assert leanest.energy_nj == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tradeoff_range([])


coords2d = st.lists(
    st.tuples(st.integers(1, 50), st.integers(1, 50)),
    min_size=1,
    max_size=30,
)


class TestParetoPoints:
    """Properties of the plain-tuple front (`pareto_points`)."""

    @given(coords2d)
    @settings(max_examples=60, deadline=None)
    def test_front_of_front_is_itself(self, coords):
        points = [tuple(map(float, c)) for c in coords]
        front = pareto_points(points)
        assert pareto_points(front) == front

    @given(coords2d, st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_adding_dominated_point_changes_nothing(self, coords, bump):
        points = [tuple(map(float, c)) for c in coords]
        front = pareto_points(points)
        x, y = front[0]
        dominated = (x + 1.0 + bump, y + 1.0 + bump)
        assert pareto_points(points + [dominated]) == front

    @given(coords2d)
    @settings(max_examples=60, deadline=None)
    def test_front_is_input_order_independent(self, coords):
        points = [tuple(map(float, c)) for c in coords]
        assert pareto_points(points) == pareto_points(list(reversed(points)))

    def test_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))


class TestHypervolume:
    def test_single_point_2d(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_two_point_staircase(self):
        volume = hypervolume([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0))
        assert volume == pytest.approx(3.0)

    def test_point_outside_reference_contributes_nothing(self):
        assert hypervolume([(4.0, 4.0)], (3.0, 3.0)) == 0.0

    def test_3d_box(self):
        assert hypervolume([(1.0, 1.0, 1.0)], (2.0, 2.0, 2.0)) == pytest.approx(1.0)

    def test_3d_matches_inclusion_exclusion(self):
        points = [(1.0, 3.0, 2.0), (2.0, 1.0, 3.0), (3.0, 2.0, 1.0)]
        reference = (4.0, 4.0, 4.0)
        # The slab decomposition is exact; compare against an independent
        # inclusion-exclusion over the three dominated boxes.
        import itertools

        total = 0.0
        for r in range(1, 4):
            for combo in itertools.combinations(points, r):
                corner = tuple(max(p[i] for p in combo) for i in range(3))
                volume = 1.0
                for i in range(3):
                    volume *= max(0.0, reference[i] - corner[i])
                total += (-1) ** (r + 1) * volume
        assert hypervolume(points, reference) == pytest.approx(total)

    @given(coords2d)
    @settings(max_examples=60, deadline=None)
    def test_2d_monotone_under_union(self, coords):
        points = [tuple(map(float, c)) for c in coords]
        reference = (60.0, 60.0)
        base = hypervolume(points[:-1], reference) if len(points) > 1 else 0.0
        assert hypervolume(points, reference) >= base - 1e-12

    @given(coords2d)
    @settings(max_examples=40, deadline=None)
    def test_2d_equals_unit_cell_count(self, coords):
        points = [tuple(map(float, c)) for c in coords]
        reference = (51.0, 51.0)
        cells = sum(
            1
            for x in range(1, 51)
            for y in range(1, 51)
            if any(p[0] <= x and p[1] <= y for p in points)
        )
        assert hypervolume(points, reference) == pytest.approx(float(cells))

    def test_dimension_limit(self):
        with pytest.raises(ValueError):
            hypervolume([(1.0,) * 4], (2.0,) * 4)

    def test_reference_dimension_mismatch(self):
        with pytest.raises(ValueError):
            hypervolume([(1.0, 1.0)], (2.0, 2.0, 2.0))
