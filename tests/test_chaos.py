"""Chaos harness: the resumed-equals-clean guarantee, adversarially.

Two layers of assurance on top of ``tests/test_resilience.py``:

* a hypothesis property: for *any* kill point in the checkpoint journal
  and either job count, resuming yields the same result table and the
  same winning configuration as an uninterrupted run;
* seeded end-to-end chaos runs (the nightly CI job's entry point):
  a sweep suffering injected crashes, hard kills and corrupt payloads is
  additionally killed mid-journal and resumed, and must still match the
  clean run byte for byte.

The nightly job parameterises the seeds through ``REPRO_CHAOS_SEEDS``
(comma-separated ints, default ``0,1,2``); a kill point is derived from
each seed so different nights exercise different tears.
"""

import os
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.engine import (
    Evaluator,
    FaultInjector,
    KernelWorkload,
    ParallelSweep,
    ResilienceOptions,
    RetryPolicy,
    order_configs,
)
from repro.engine.result import ExplorationResult
from repro.kernels import get_kernel
from repro.obs.metrics import get_metrics
from repro.serve import (
    ClientPolicy,
    ExplorationService,
    JobSpec,
    RateLimitedError,
    TenancyPolicy,
)

SEEDS = [
    int(part)
    for part in os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2").split(",")
    if part.strip()
]

FAST_RETRY = RetryPolicy(
    max_retries=5, backoff_base_s=0.001, backoff_cap_s=0.01
)

_STATE = {}


def _configs():
    return order_configs(
        CacheConfig(size, line, ways)
        for size in (32, 64, 128)
        for line in (4, 8, 16)
        for ways in (1, 2)
        if line <= size
    )


def _baseline(tmp_path_factory):
    """Clean estimates plus a complete journal, computed once per session."""
    if not _STATE:
        evaluator = Evaluator(KernelWorkload(get_kernel("compress")))
        configs = _configs()
        path = str(tmp_path_factory.mktemp("chaos") / "full.jsonl")
        # chunk_size=2 maximises journal lines, i.e. distinct kill points.
        estimates = ParallelSweep(
            jobs=1,
            chunk_size=2,
            resilience=ResilienceOptions(checkpoint=path),
        ).run(evaluator, configs)
        lines = open(path, encoding="utf-8").read().splitlines()
        _STATE.update(
            evaluator=evaluator,
            configs=configs,
            clean=estimates,
            journal_lines=lines,
            chunk_lines=len(lines) - 1,  # minus the header
        )
    return _STATE


def _killed_journal(lines, path, kill_after):
    """A journal as left behind by a sweep killed after ``kill_after`` chunks."""
    kept = lines[: 1 + kill_after]
    with open(path, "w", encoding="utf-8") as handle:
        if kept:
            handle.write("\n".join(kept) + "\n")


@pytest.fixture(scope="session")
def baseline(tmp_path_factory):
    return _baseline(tmp_path_factory)


class TestKillPointProperty:
    @given(
        fraction=st.floats(0.0, 1.0),
        jobs=st.sampled_from([1, 4]),
        torn=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_kill_point_resumes_identically(
        self, baseline, tmp_path_factory, fraction, jobs, torn
    ):
        kill_after = round(fraction * baseline["chunk_lines"])
        path = str(
            tmp_path_factory.mktemp("kill") / f"k{kill_after}-j{jobs}.jsonl"
        )
        _killed_journal(baseline["journal_lines"], path, kill_after)
        if torn:  # the kill landed mid-write of the next chunk line
            with open(path, "a", encoding="utf-8") as handle:
                handle.write('{"chunk": [[0, {"conf')
        resumed = ParallelSweep(
            jobs=jobs,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        ).run(baseline["evaluator"], baseline["configs"])
        assert resumed == baseline["clean"]
        clean_best = ExplorationResult(baseline["clean"]).min_energy()
        assert ExplorationResult(resumed).min_energy() == clean_best

    def test_resume_of_untouched_journal_is_complete(
        self, baseline, tmp_path_factory
    ):
        path = str(tmp_path_factory.mktemp("kill") / "whole.jsonl")
        _killed_journal(
            baseline["journal_lines"], path, baseline["chunk_lines"]
        )
        resumed = ParallelSweep(
            jobs=1,
            resilience=ResilienceOptions(checkpoint=path, resume=True),
        ).run(baseline["evaluator"], baseline["configs"])
        assert resumed == baseline["clean"]


class TestSeededChaos:
    """The nightly job: faults + a mid-sweep kill + resume == clean."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaotic_killed_resumed_matches_clean(
        self, baseline, tmp_path_factory, seed
    ):
        path = str(tmp_path_factory.mktemp("chaos") / f"seed{seed}.jsonl")
        injector = FaultInjector(
            seed=seed, crash_rate=0.25, kill_rate=0.15, corrupt_rate=0.2
        )
        faulty = ParallelSweep(
            jobs=2,
            resilience=ResilienceOptions(
                checkpoint=path, retry=FAST_RETRY, fault_injector=injector
            ),
        ).run(baseline["evaluator"], baseline["configs"])
        assert faulty == baseline["clean"]

        # Kill the journal at a seed-derived point and resume under faults
        # drawn from a different seed (the infrastructure stays unreliable
        # across the restart).
        lines = open(path, encoding="utf-8").read().splitlines()
        kill_after = seed % max(1, len(lines) - 1)
        _killed_journal(lines, path, kill_after)
        resumed = ParallelSweep(
            jobs=2,
            resilience=ResilienceOptions(
                checkpoint=path,
                resume=True,
                retry=FAST_RETRY,
                fault_injector=FaultInjector(
                    seed=seed + 1000, crash_rate=0.25, corrupt_rate=0.2
                ),
            ),
        ).run(baseline["evaluator"], baseline["configs"])
        assert resumed == baseline["clean"]
        best = ExplorationResult(baseline["clean"]).min_energy()
        assert ExplorationResult(resumed).min_energy() == best

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_under_serial_jobs(self, baseline, tmp_path_factory, seed):
        # kill_rate must stay 0 here: a hard kill in the serial path would
        # take the test process down (that scenario *is* the journal kill).
        path = str(tmp_path_factory.mktemp("chaos") / f"serial{seed}.jsonl")
        run = ParallelSweep(
            jobs=1,
            resilience=ResilienceOptions(
                checkpoint=path,
                retry=FAST_RETRY,
                fault_injector=FaultInjector(seed=seed, crash_rate=0.4),
            ),
        ).run(baseline["evaluator"], baseline["configs"])
        assert run == baseline["clean"]


class TestMultiTenantChaos:
    """kill -9 under multi-client load, service-layer edition.

    Two tenants with unequal fair-share weights submit distinct sweeps
    through a quota-enforcing :class:`JobManager`; the server dies with
    one job mid-journal and one tenant's finished rows corrupted on
    disk.  A fresh service over the same store must hand every tenant
    back bit-identical results, quarantine the torn row instead of
    serving it, and account for every dequeue in the fair-share
    counters.
    """

    SPECS = {
        "chaos-a": (
            JobSpec(kernel="compress", max_size=32, min_size=16,
                    tilings=(1,)),
            JobSpec(kernel="compress", max_size=64, min_size=32,
                    tilings=(1,)),
        ),
        "chaos-b": (
            JobSpec(kernel="compress", max_size=32, min_size=16,
                    tilings=(2,)),
        ),
    }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_killed_multi_client_service_recovers(
        self, tmp_path_factory, seed
    ):
        root = tmp_path_factory.mktemp("mtchaos")
        db = str(root / "results.db")
        spool = str(root / "spool")
        direct = {
            spec.spec_hash: spec.build_evaluator().sweep(
                configs=spec.configs()
            )
            for specs in self.SPECS.values()
            for spec in specs
        }
        policy = TenancyPolicy(
            default=ClientPolicy(max_inflight=8),
            overrides={
                "chaos-a": ClientPolicy(max_inflight=8, weight=2.0),
                "chaos-b": ClientPolicy(rate=50.0, burst=1, max_inflight=8),
            },
        )
        metrics = get_metrics()
        dequeued_before = {
            client: metrics.counter(
                f"serve.fairshare.dequeued.{client}"
            ).value
            for client in self.SPECS
        }
        quarantined_before = metrics.counter(
            "store.corruption.quarantined"
        ).value

        # Session one: both tenants submit, chaos-b's burst of one is
        # spent so its immediate follow-up is rate limited with an exact
        # retry hint -- the quotas stay live under the chaos load.
        first = ExplorationService(db, spool, tenancy=policy)
        jobs = {}
        for client, specs in self.SPECS.items():
            for spec in specs:
                job, coalesced = first.manager.submit(spec, client_id=client)
                assert not coalesced
                jobs[job.job_id] = spec
        with pytest.raises(RateLimitedError) as excinfo:
            first.manager.submit(
                self.SPECS["chaos-b"][0], client_id="chaos-b"
            )
        assert excinfo.value.retry_after_s > 0

        # chaos-b's sweep finishes and lands in the store before the
        # crash; a seed-picked row of it is then torn on disk.
        done_spec = self.SPECS["chaos-b"][0]
        warm = done_spec.build_evaluator(first.store)
        for config in done_spec.configs():
            warm.evaluate(config)

        # The first DRR visit credits chaos-a's weight of two, so the
        # claim that dies mid-journal is deterministically chaos-a's.
        claimed = first.manager.next_job()
        assert claimed is not None and claimed.client_id == "chaos-a"
        journal = first.runner.checkpoint_path(claimed)
        claimed_spec = jobs[claimed.job_id]
        claimed_spec.build_evaluator().sweep(
            configs=claimed_spec.configs(),
            resilience=ResilienceOptions(checkpoint=journal),
        )
        lines = open(journal, encoding="utf-8").read().splitlines()
        _killed_journal(lines, journal, seed % max(1, len(lines) - 1))

        conn = sqlite3.connect(db)
        with conn:
            rows = conn.execute(
                "SELECT COUNT(*) FROM estimates"
            ).fetchone()[0]
            assert rows > 0
            conn.execute(
                "UPDATE estimates SET estimate = '{torn' WHERE rowid = ?",
                (1 + seed % rows,),
            )
        conn.close()
        # Session one vanishes here: no stop(), no close() -- kill -9.

        # Session two: recovery re-enqueues the claimed job, the torn
        # journal resumes, the torn row is quarantined and re-evaluated,
        # and every tenant's results match the direct sweeps exactly.
        second = ExplorationService(db, spool, tenancy=policy).start()
        try:
            for job_id, spec in jobs.items():
                done = second.manager.wait(job_id, timeout_s=120)
                assert done is not None and done.state == "done"
                assert list(done.result.estimates) == list(
                    direct[spec.spec_hash].estimates
                )
            assert second.store.stats()["quarantine"] == 1
            assert (
                metrics.counter("store.corruption.quarantined").value
                == quarantined_before + 1
            )
            # Fair-share ledger: chaos-a was dequeued once before the
            # kill and twice after recovery, chaos-b exactly once.
            deltas = {
                client: metrics.counter(
                    f"serve.fairshare.dequeued.{client}"
                ).value
                - dequeued_before[client]
                for client in self.SPECS
            }
            assert deltas == {"chaos-a": 3, "chaos-b": 1}
        finally:
            second.stop()


class TestSearchChaos:
    """kill -9 mid-search: the generation journal resumes bit-identically."""

    SETTINGS_DOC = {"generations": 6, "population": 8, "seed": 13}

    def _clean(self):
        from repro.core.config import design_space
        from repro.moo import SearchSettings, run_search

        if "search_clean" not in _STATE:
            space = list(design_space(max_size=64, min_size=16))
            run = run_search(
                Evaluator(KernelWorkload(get_kernel("compress"))),
                space,
                SearchSettings(**self.SETTINGS_DOC),
            )
            _STATE["search_clean"] = (space, run)
        return _STATE["search_clean"]

    @given(fraction=st.floats(0.0, 1.0), torn=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_any_kill_point_resumes_identically(
        self, tmp_path_factory, fraction, torn
    ):
        from repro.moo import SearchSettings, run_search

        space, clean = self._clean()
        settings_ = SearchSettings(**self.SETTINGS_DOC)
        root = tmp_path_factory.mktemp("moo-chaos")
        journal = str(root / "search.moo.jsonl")

        # A completed journal, then the kill: keep the header plus the
        # first ``kill_after`` generation records, optionally tearing a
        # half-written line on the end (fsync raced the kill).
        run_search(
            Evaluator(KernelWorkload(get_kernel("compress"))),
            space,
            settings_,
            checkpoint=journal,
        )
        lines = open(journal, encoding="utf-8").read().splitlines()
        generations = len(lines) - 1
        kill_after = min(generations, int(fraction * (generations + 1)))
        kept = lines[: 1 + kill_after]
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(kept) + "\n")
            if torn and kill_after < generations:
                handle.write(lines[1 + kill_after][: 20])

        resumed = run_search(
            Evaluator(KernelWorkload(get_kernel("compress"))),
            space,
            settings_,
            checkpoint=journal,
            resume=True,
        )
        assert resumed.events == clean.events
        assert [e.config for e in resumed.front] == [
            e.config for e in clean.front
        ]
        assert resumed.evaluations == clean.evaluations

    def test_killed_search_service_recovers(self, tmp_path_factory):
        from repro.moo import SearchSettings, run_search

        root = tmp_path_factory.mktemp("moo-service-chaos")
        db = str(root / "results.db")
        spool = str(root / "spool")
        spec = JobSpec(
            kernel="compress",
            max_size=64,
            min_size=16,
            search=SearchSettings(**self.SETTINGS_DOC),
        )
        direct = run_search(
            spec.build_evaluator(), spec.configs(), spec.search
        )

        # Fabricate the wreckage of a service killed mid-search: the
        # spool holds a journal cut off after two generations with a torn
        # trailing line -- exactly what SIGKILL mid-write leaves behind.
        os.makedirs(spool, exist_ok=True)
        scratch = str(root / "scratch.moo.jsonl")
        run_search(
            spec.build_evaluator(), spec.configs(), spec.search,
            checkpoint=scratch,
        )
        lines = open(scratch, encoding="utf-8").read().splitlines()
        journal = os.path.join(spool, f"{spec.spec_hash}.moo.jsonl")
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
            handle.write(lines[3][:25])

        service = ExplorationService(db, spool).start()
        try:
            job, _ = service.manager.submit(spec)
            done = service.manager.wait(job.job_id, timeout_s=120)
            assert done is not None and done.state == "done"
            served = service.job_result(done)
            assert [row["config"] for row in served["estimates"]] == [
                [e.config.size, e.config.line_size, e.config.ways,
                 e.config.tiling]
                for e in direct.front
            ]
            manifest = service.store.load_manifest(job.job_id)
            assert manifest["search"]["hypervolume"] == direct.hypervolume
        finally:
            service.stop()
