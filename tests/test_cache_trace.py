"""Tests for the MemoryTrace container."""

import numpy as np
import pytest

from repro.cache.trace import MemoryAccess, MemoryTrace


class TestMemoryAccess:
    def test_defaults(self):
        a = MemoryAccess(10)
        assert not a.is_write
        assert a.ref_id == 0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(-1)


class TestMemoryTrace:
    def test_basic_construction(self):
        t = MemoryTrace([1, 2, 3], [False, True, False], [0, 1, 2])
        assert len(t) == 3
        assert t.num_reads == 2
        assert t.num_writes == 1

    def test_defaults_all_reads(self):
        t = MemoryTrace([5, 6])
        assert t.num_reads == 2
        assert t.ref_ids.tolist() == [0, 0]

    def test_indexing_and_iteration(self):
        t = MemoryTrace([1, 2], [False, True], [3, 4])
        assert t[1] == MemoryAccess(2, True, 4)
        assert [a.address for a in t] == [1, 2]

    def test_equality(self):
        assert MemoryTrace([1, 2]) == MemoryTrace([1, 2])
        assert MemoryTrace([1, 2]) != MemoryTrace([1, 3])
        assert MemoryTrace([1], [True]) != MemoryTrace([1], [False])

    def test_from_accesses_round_trip(self):
        accesses = [MemoryAccess(1), MemoryAccess(2, True, 7)]
        t = MemoryTrace.from_accesses(accesses)
        assert list(t) == accesses

    def test_concatenate(self):
        t = MemoryTrace.concatenate([MemoryTrace([1]), MemoryTrace([2, 3])])
        assert t.addresses.tolist() == [1, 2, 3]
        assert MemoryTrace.concatenate([]) == MemoryTrace([])

    def test_reads_only(self):
        t = MemoryTrace([1, 2, 3], [False, True, False])
        assert t.reads_only().addresses.tolist() == [1, 3]

    def test_line_ids(self):
        t = MemoryTrace([0, 3, 4, 8])
        assert t.line_ids(4).tolist() == [0, 0, 1, 2]
        with pytest.raises(ValueError):
            t.line_ids(0)

    def test_footprint_and_unique_lines(self):
        t = MemoryTrace([10, 20, 30])
        assert t.footprint_bytes() == 21
        assert t.unique_lines(16) == 2
        empty = MemoryTrace([])
        assert empty.footprint_bytes() == 0
        assert empty.unique_lines(16) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryTrace([-1])
        with pytest.raises(ValueError):
            MemoryTrace([1, 2], [True])
        with pytest.raises(ValueError):
            MemoryTrace(np.zeros((2, 2)))
