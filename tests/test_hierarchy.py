"""Tests for the two-level hierarchy extension."""

import pytest

from repro.cache.hierarchy import TwoLevelCache
from repro.cache.simulator import CacheGeometry
from repro.cache.trace import MemoryTrace


class TestTwoLevel:
    def _caches(self):
        return TwoLevelCache(CacheGeometry(32, 4, 1), CacheGeometry(128, 8, 2))

    def test_l2_filters_l1_misses(self):
        # Conflict pair in L1 (32 bytes apart) co-resident in the bigger L2.
        stats = self._caches().run(MemoryTrace([0, 32] * 10))
        assert stats.l1_misses == 20
        assert stats.l2_misses == 2
        assert stats.l2_hits == 18

    def test_accounting_consistency(self):
        stats = self._caches().run(MemoryTrace(list(range(64))))
        assert stats.l1_hits + stats.l1_misses == stats.accesses
        assert stats.l2_hits + stats.l2_misses == stats.l1_misses

    def test_rates(self):
        stats = self._caches().run(MemoryTrace([0, 32] * 10))
        assert stats.l1_miss_rate == 1.0
        assert stats.l2_local_miss_rate == pytest.approx(0.1)
        assert stats.global_miss_rate == pytest.approx(0.1)

    def test_empty_trace(self):
        stats = self._caches().run(MemoryTrace([]))
        assert stats.accesses == 0
        assert stats.l1_miss_rate == 0.0
        assert stats.l2_local_miss_rate == 0.0

    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError):
            TwoLevelCache(CacheGeometry(128, 8, 1), CacheGeometry(64, 8, 1))

    def test_l2_line_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError):
            TwoLevelCache(CacheGeometry(32, 8, 1), CacheGeometry(128, 4, 1))

    def test_l2_never_misses_more_than_l1(self, compress_small):
        trace = compress_small.trace()
        stats = TwoLevelCache(
            CacheGeometry(16, 4, 1), CacheGeometry(256, 8, 2)
        ).run(trace)
        assert stats.l2_misses <= stats.l1_misses
