"""Shared fixtures for the test suite."""

import logging

import numpy as np
import pytest

from repro.cache.trace import MemoryTrace
from repro.kernels import (
    make_compress,
    make_dequant,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
    make_transpose,
)


class _ErrorRecordGuard(logging.Handler):
    """Collects ERROR+ records emitted by the ``repro`` logger hierarchy."""

    def __init__(self) -> None:
        super().__init__(level=logging.ERROR)
        self.records = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)


@pytest.fixture(scope="session", autouse=True)
def fail_on_error_logs():
    """Fail the run if any ERROR-level log record escapes during the suite.

    The library logs through the ``repro`` hierarchy; an ERROR record means
    something went wrong that no test asserted on.  CI relies on this to
    turn stray errors into a red build.  Tests that legitimately provoke
    ERROR logs should clear ``guard.records`` or log below ERROR.
    """
    guard = _ErrorRecordGuard()
    logger = logging.getLogger("repro")
    logger.addHandler(guard)
    try:
        yield guard
    finally:
        logger.removeHandler(guard)
        messages = [
            f"{r.name}: {r.getMessage()}" for r in guard.records
        ]
        assert not messages, (
            "ERROR-level log records were emitted during the test suite:\n"
            + "\n".join(messages)
        )


@pytest.fixture
def compress():
    """The paper's Example 1 kernel (1-byte elements, 31x31)."""
    return make_compress()


@pytest.fixture
def compress_small():
    """A reduced Compress (7x7) for tests that iterate many geometries."""
    return make_compress(n=7)


@pytest.fixture
def matadd():
    """The paper's Example 2 kernel."""
    return make_matadd()


@pytest.fixture
def matmul_small():
    """A reduced Matrix Multiplication (7x7x7)."""
    return make_matmul(n=7)


@pytest.fixture
def all_small_kernels():
    """Reduced instances of every 2D/3D bundled kernel."""
    return [
        make_compress(n=7),
        make_matadd(n=6),
        make_matmul(n=5),
        make_pde(n=7),
        make_sor(n=7),
        make_dequant(n=7),
        make_transpose(n=8),
    ]


@pytest.fixture
def sequential_trace():
    """64 sequential byte addresses, all reads."""
    return MemoryTrace(np.arange(64))


@pytest.fixture
def strided_trace():
    """Strided accesses that alias heavily in small caches."""
    return MemoryTrace(np.arange(0, 64 * 32, 32))
