"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cache.trace import MemoryTrace
from repro.kernels import (
    make_compress,
    make_dequant,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
    make_transpose,
)


@pytest.fixture
def compress():
    """The paper's Example 1 kernel (1-byte elements, 31x31)."""
    return make_compress()


@pytest.fixture
def compress_small():
    """A reduced Compress (7x7) for tests that iterate many geometries."""
    return make_compress(n=7)


@pytest.fixture
def matadd():
    """The paper's Example 2 kernel."""
    return make_matadd()


@pytest.fixture
def matmul_small():
    """A reduced Matrix Multiplication (7x7x7)."""
    return make_matmul(n=7)


@pytest.fixture
def all_small_kernels():
    """Reduced instances of every 2D/3D bundled kernel."""
    return [
        make_compress(n=7),
        make_matadd(n=6),
        make_matmul(n=5),
        make_pde(n=7),
        make_sor(n=7),
        make_dequant(n=7),
        make_transpose(n=8),
    ]


@pytest.fixture
def sequential_trace():
    """64 sequential byte addresses, all reads."""
    return MemoryTrace(np.arange(64))


@pytest.fixture
def strided_trace():
    """Strided accesses that alias heavily in small caches."""
    return MemoryTrace(np.arange(0, 64 * 32, 32))
