"""Tests for the reference cache simulator."""

import pytest

from repro.cache.simulator import CacheGeometry, CacheSimulator, simulate_trace
from repro.cache.trace import MemoryTrace


class TestGeometry:
    def test_derived_quantities(self):
        g = CacheGeometry(64, 8, 2)
        assert g.num_lines == 8
        assert g.num_sets == 4

    def test_fully_associative(self):
        g = CacheGeometry(64, 8, 8)
        assert g.num_sets == 1

    def test_set_and_tag(self):
        g = CacheGeometry(32, 4, 1)  # 8 sets
        assert g.set_of(0) == 0
        assert g.set_of(4) == 1
        assert g.set_of(32) == 0
        assert g.tag_of(32) == 1

    @pytest.mark.parametrize(
        "size,line,ways",
        [(48, 8, 1), (64, 3, 1), (64, 8, 3), (4, 8, 1), (16, 8, 4)],
    )
    def test_invalid_geometries(self, size, line, ways):
        with pytest.raises(ValueError):
            CacheGeometry(size, line, ways)

    def test_label(self):
        assert str(CacheGeometry(64, 8, 2)) == "C64L8S2"


class TestDirectMapped:
    def test_sequential_spatial_locality(self):
        # 16 sequential bytes with 4-byte lines: one miss per line.
        stats = simulate_trace(MemoryTrace(list(range(16))), 32, 4)
        assert stats.misses == 4
        assert stats.hits == 12

    def test_conflict_thrashing(self):
        # Two addresses one cache-span apart alternate: every access misses.
        addrs = [0, 32] * 10
        stats = simulate_trace(MemoryTrace(addrs), 32, 4)
        assert stats.misses == 20

    def test_repeat_hits(self):
        stats = simulate_trace(MemoryTrace([0, 0, 0, 1]), 32, 4)
        assert stats.misses == 1
        assert stats.hits == 3

    def test_miss_rate_property(self):
        stats = simulate_trace(MemoryTrace([0, 0]), 32, 4)
        assert stats.miss_rate == 0.5
        assert stats.hit_rate == 0.5


class TestSetAssociative:
    def test_two_way_absorbs_pairwise_conflict(self):
        # Same two conflicting addresses: a 2-way set holds both.
        addrs = [0, 32] * 10
        stats = simulate_trace(MemoryTrace(addrs), 32, 4, ways=2)
        assert stats.misses == 2
        assert stats.hits == 18

    def test_lru_eviction_order(self):
        # 2-way set; A, B, C map to the same set; C evicts A (LRU).
        addrs = [0, 32, 64, 0]
        stats = simulate_trace(MemoryTrace(addrs), 32, 4, ways=2)
        assert stats.misses == 4  # final 0 was evicted by 64

    def test_lru_touch_protects(self):
        addrs = [0, 32, 0, 64, 0]  # re-touch 0 so 32 is the victim
        stats = simulate_trace(MemoryTrace(addrs), 32, 4, ways=2)
        assert stats.misses == 3
        assert stats.hits == 2

    def test_fifo_ignores_touches(self):
        addrs = [0, 32, 0, 64, 0]  # FIFO evicts 0 despite the re-touch
        stats = simulate_trace(MemoryTrace(addrs), 32, 4, ways=2, policy="fifo")
        assert stats.misses == 4


class TestWritePolicies:
    def test_write_back_writebacks_on_dirty_eviction(self):
        geo = CacheGeometry(32, 4, 1)
        sim = CacheSimulator(geo, write_back=True)
        sim.access(0, is_write=True)
        sim.access(32)  # evicts dirty line 0
        assert sim.stats.writebacks == 1
        assert sim.stats.evictions == 1

    def test_clean_eviction_no_writeback(self):
        sim = CacheSimulator(CacheGeometry(32, 4, 1))
        sim.access(0)
        sim.access(32)
        assert sim.stats.writebacks == 0

    def test_write_through_counts_every_write(self):
        sim = CacheSimulator(CacheGeometry(32, 4, 1), write_back=False)
        sim.access(0, is_write=True)
        sim.access(0, is_write=True)
        assert sim.stats.writebacks == 2

    def test_no_write_allocate_skips_fill(self):
        sim = CacheSimulator(CacheGeometry(32, 4, 1), write_allocate=False)
        sim.access(0, is_write=True)  # miss, not allocated
        assert sim.access(0) is False  # still a miss
        assert sim.stats.writebacks == 1


class TestAccounting:
    def test_read_write_split_and_per_ref(self):
        trace = MemoryTrace([0, 0, 32, 0], [False, True, False, True], [0, 1, 2, 1])
        sim = CacheSimulator(CacheGeometry(32, 4, 1))
        stats = sim.run(trace)
        stats.check_consistency()
        assert stats.read_misses == 2
        assert stats.write_hits == 1
        assert stats.write_misses == 1
        assert stats.per_ref_misses == {0: 1, 2: 1, 1: 1}

    def test_reset(self):
        sim = CacheSimulator(CacheGeometry(32, 4, 1))
        sim.access(0)
        sim.reset()
        assert sim.stats.accesses == 0
        assert sim.access(0) is False  # cold again

    def test_contents_snapshot(self):
        sim = CacheSimulator(CacheGeometry(16, 4, 1))
        sim.access(0)
        contents = sim.contents()
        assert contents[0][0] == 0
        assert contents[1][0] is None

    def test_policy_ways_mismatch_rejected(self):
        from repro.cache.replacement import LRUPolicy

        with pytest.raises(ValueError):
            CacheSimulator(CacheGeometry(32, 4, 2), policy=LRUPolicy(4))


class TestMissClassification:
    def test_sequential_all_compulsory(self):
        trace = MemoryTrace(list(range(64)))
        sim = CacheSimulator(CacheGeometry(32, 4, 1))
        mc = sim.classified_misses(trace)
        assert mc.compulsory == 16
        assert mc.conflict == 0

    def test_conflict_detected(self):
        trace = MemoryTrace([0, 32] * 8)
        sim = CacheSimulator(CacheGeometry(32, 4, 1))
        mc = sim.classified_misses(trace)
        assert mc.compulsory == 2
        assert mc.capacity == 0  # both lines fit a fully-associative cache
        assert mc.conflict == 14

    def test_capacity_detected(self):
        # Cycle through 3 lines in a 2-line fully-associative cache.
        trace = MemoryTrace([0, 8, 16] * 5)
        sim = CacheSimulator(CacheGeometry(16, 8, 2))
        mc = sim.classified_misses(trace)
        assert mc.compulsory == 3
        assert mc.capacity == 12
        assert mc.total == 15
