"""Tests for the Section 5 composite-program model."""

import pytest

from repro.core.composite import CompositeProgram
from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.kernels import make_compress, make_matadd


@pytest.fixture
def program():
    return CompositeProgram(
        [
            make_compress(n=7).with_invocations(3),
            make_matadd(n=6).with_invocations(5),
        ]
    )


class TestAggregation:
    def test_paper_formulas_exact(self, program):
        """MISS_R, CYCLES and ENERGY follow the printed Section 5 sums."""
        config = CacheConfig(64, 8)
        parts = program.contributions(config)
        total_trip = sum(p.trip for p in parts)
        agg = program.evaluate(config)
        assert agg.miss_rate == pytest.approx(
            sum(p.estimate.miss_rate * p.trip for p in parts) / total_trip
        )
        assert agg.cycles == pytest.approx(
            sum(p.estimate.cycles * p.trip for p in parts)
        )
        assert agg.energy_nj == pytest.approx(
            sum(p.estimate.energy_nj * p.trip for p in parts)
        )

    def test_trip_weights_from_invocations(self, program):
        assert program.trips == {"compress": 3, "matadd": 5}
        assert program.total_trips == 8

    def test_trip_override(self):
        program = CompositeProgram(
            [make_compress(n=7)], trips={"compress": 10}
        )
        assert program.trips["compress"] == 10

    def test_contributions_match_standalone_explorers(self, program):
        config = CacheConfig(64, 8)
        parts = {p.kernel_name: p.estimate for p in program.contributions(config)}
        solo = MemExplorer(make_compress(n=7)).evaluate(config)
        assert parts["compress"].miss_rate == solo.miss_rate
        assert parts["compress"].energy_nj == pytest.approx(solo.energy_nj)

    def test_single_kernel_composite_equals_scaled_kernel(self):
        kernel = make_compress(n=7).with_invocations(4)
        program = CompositeProgram([kernel])
        config = CacheConfig(64, 8)
        agg = program.evaluate(config)
        solo = MemExplorer(make_compress(n=7)).evaluate(config)
        assert agg.cycles == pytest.approx(4 * solo.cycles)
        assert agg.energy_nj == pytest.approx(4 * solo.energy_nj)
        assert agg.miss_rate == pytest.approx(solo.miss_rate)


class TestExploration:
    def test_explore_returns_all_configs(self, program):
        configs = [CacheConfig(32, 4), CacheConfig(64, 8)]
        result = program.explore(configs)
        assert len(result) == 2

    def test_per_kernel_optima(self, program):
        configs = [CacheConfig(32, 4), CacheConfig(64, 8), CacheConfig(128, 8)]
        optima = program.per_kernel_optima(configs)
        assert set(optima) == {"compress", "matadd"}
        for config, energy in optima.values():
            assert config in configs
            assert energy > 0


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            CompositeProgram([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CompositeProgram([make_compress(), make_compress()])

    def test_non_positive_trips_rejected(self):
        with pytest.raises(ValueError):
            CompositeProgram([make_compress()], trips={"compress": 0})


class TestSharedCache:
    def test_trace_volume(self, program):
        config = CacheConfig(64, 8)
        trace = program.shared_cache_trace(config)
        expected = sum(
            k.accesses_per_invocation * program.trips[k.name]
            for k in program.kernels
        )
        assert len(trace) == expected

    def test_kernels_occupy_disjoint_memory(self, program):
        config = CacheConfig(64, 8)
        trace = program.shared_cache_trace(config)
        # The first round starts with one compress invocation followed by
        # one matadd invocation; their address ranges must not intersect.
        compress_accesses = program.kernels[0].accesses_per_invocation
        matadd_accesses = program.kernels[1].accesses_per_invocation
        first = trace.addresses[:compress_accesses]
        second = trace.addresses[compress_accesses:compress_accesses + matadd_accesses]
        assert int(first.max()) < int(second.min())

    def test_events_match_record_model(self, program):
        config = CacheConfig(64, 8)
        record = program.evaluate(config)
        shared = program.evaluate_shared_cache(config)
        assert shared.events == record.events

    def test_shared_cache_close_to_record_model(self):
        """The paper's independence assumption: for the MPEG-style small
        kernels, totals agree within a modest factor."""
        from repro.kernels import mpeg_decoder_kernels

        program = CompositeProgram(mpeg_decoder_kernels(macroblocks=2))
        config = CacheConfig(64, 8)
        record = program.evaluate(config)
        shared = program.evaluate_shared_cache(config)
        assert shared.cycles == pytest.approx(record.cycles, rel=0.25)
        assert shared.energy_nj == pytest.approx(record.energy_nj, rel=0.25)
