"""Tests for array placements and address mapping."""

import pytest

from repro.layout.address_map import (
    ArrayPlacement,
    DataLayout,
    cache_line_of,
    cache_set_of,
    default_layout,
    layouts_overlap,
)
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var


def two_array_nest():
    i = var("i")
    return LoopNest(
        name="t",
        loops=(Loop("i", 0, 3),),
        refs=(ArrayRef("a", (i,)), ArrayRef("b", (i,))),
        arrays=(ArrayDecl("a", (10,)), ArrayDecl("b", (6,), element_size=2)),
    )


class TestArrayPlacement:
    def test_address_of_row_major(self):
        p = ArrayPlacement(base=100, pitches=(8, 1))
        assert p.address_of((0, 0)) == 100
        assert p.address_of((2, 3)) == 100 + 19

    def test_element_size(self):
        p = ArrayPlacement(base=0, pitches=(4, 1), element_size=4)
        assert p.address_of((1, 1)) == 20

    def test_padded_pitch(self):
        """The paper's Compress padding: pitch 36 puts a[1][0] at byte 36."""
        p = ArrayPlacement(base=0, pitches=(36, 1))
        assert p.address_of((1, 0)) == 36

    def test_extent(self):
        p = ArrayPlacement(base=0, pitches=(8, 1))
        assert p.extent_bytes((4, 5)) == 3 * 8 + 4 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayPlacement(base=-1, pitches=(1,))
        with pytest.raises(ValueError):
            ArrayPlacement(base=0, pitches=(0,))
        with pytest.raises(ValueError):
            ArrayPlacement(base=0, pitches=(1,), element_size=0)
        with pytest.raises(ValueError):
            ArrayPlacement(base=0, pitches=(1,)).address_of((1, 2))


class TestDataLayout:
    def test_lookup_and_dict(self):
        layout = DataLayout.from_dict({"a": ArrayPlacement(0, (1,))})
        assert layout.placement("a").base == 0
        assert "a" in layout.as_dict()
        with pytest.raises(KeyError):
            layout.placement("zzz")

    def test_address_of(self):
        layout = DataLayout.from_dict({"a": ArrayPlacement(64, (8, 1))})
        assert layout.address_of("a", (1, 2)) == 74


class TestDefaultLayout:
    def test_arrays_back_to_back(self):
        nest = two_array_nest()
        layout = default_layout(nest)
        assert layout.placement("a").base == 0
        assert layout.placement("b").base == 10  # right after a's 10 bytes

    def test_alignment(self):
        nest = two_array_nest()
        layout = default_layout(nest, align=16)
        assert layout.placement("b").base == 16

    def test_bad_alignment(self):
        with pytest.raises(ValueError):
            default_layout(two_array_nest(), align=0)

    def test_no_overlap(self):
        nest = two_array_nest()
        assert not layouts_overlap(nest, default_layout(nest))

    def test_overlap_detected(self):
        nest = two_array_nest()
        bad = DataLayout.from_dict(
            {
                "a": ArrayPlacement(0, (1,)),
                "b": ArrayPlacement(5, (1,), element_size=2),
            }
        )
        assert layouts_overlap(nest, bad)


class TestCacheMapping:
    def test_line_of(self):
        assert cache_line_of(0, 8) == 0
        assert cache_line_of(15, 8) == 1
        with pytest.raises(ValueError):
            cache_line_of(0, 0)

    def test_set_of(self):
        assert cache_set_of(36, 2, 4) == 2  # the paper's padded a[1][0]
        assert cache_set_of(32, 2, 4) == 0  # the conflicting dense address
        with pytest.raises(ValueError):
            cache_set_of(0, 2, 0)
