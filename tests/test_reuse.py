"""Tests for the Section 3 reuse analysis (classes, cases, minimum size)."""

import pytest

from repro.kernels import (
    make_compress,
    make_dequant,
    make_matadd,
    make_matmul,
    make_pde,
    make_sor,
)
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var
from repro.loops.reuse import (
    ReferenceGroup,
    group_references,
    groups_by_linear_part,
    min_cache_lines,
    min_cache_size,
)


class TestCompressClasses:
    """Example 1 of the paper: two classes of two references each."""

    def test_two_classes(self, compress):
        groups = group_references(compress.nest)
        assert len(groups) == 2

    def test_class_membership(self, compress):
        nest = compress.nest
        groups = group_references(nest)
        by_rows = {}
        for g in groups:
            rows = {nest.refs[i].constant_vector()[0] for i in g.ref_indices}
            assert len(rows) == 1  # a class stays on one row
            by_rows[rows.pop()] = g
        # Class 1: a[i-1][j-1], a[i-1][j]; class 2: a[i][j-1], a[i][j] (x2).
        assert len(by_rows[-1].ref_indices) == 2
        assert len(by_rows[0].ref_indices) == 3  # read + read + write

    def test_two_lines_per_class(self, compress):
        for group in group_references(compress.nest):
            assert group.cache_lines(line_size=2) == 2
            assert group.cache_lines(line_size=4) == 2

    def test_min_cache_size_is_4L(self, compress):
        """"The minimum cache size is 4*L.\""""
        for line_size in (2, 4, 8, 16):
            assert min_cache_lines(compress.nest, line_size) == 4
            assert min_cache_size(compress.nest, line_size) == 4 * line_size


class TestMatAddCases:
    """Example 2: three arrays, one H -- three cases, one line each."""

    def test_three_cases_one_h(self, matadd):
        groups = group_references(matadd.nest)
        assert len(groups) == 3
        by_h = groups_by_linear_part(matadd.nest)
        assert len(by_h) == 1
        (cases,) = by_h.values()
        assert {g.array for g in cases} == {"a", "b", "c"}

    def test_minimum_three_lines(self, matadd):
        assert min_cache_lines(matadd.nest, 2) == 3


class TestOtherKernels:
    def test_matmul_groups(self):
        nest = make_matmul().nest
        by_h = groups_by_linear_part(nest)
        # Three distinct linear parts: [i,j], [i,k], [k,j].
        assert len(by_h) == 3

    def test_pde_groups(self):
        groups = group_references(make_pde().nest)
        # a row i-1; a row i (two refs); b row i.
        assert len(groups) == 3

    def test_sor_groups(self):
        groups = group_references(make_sor().nest)
        assert len(groups) == 2  # rows i and i-1 of a

    def test_dequant_three_cases(self):
        assert len(group_references(make_dequant().nest)) == 3


class TestDistanceFormula:
    def _group(self, offsets, element_size=1):
        return ReferenceGroup(
            array="a",
            h_matrix=((1,),),
            ref_indices=tuple(range(len(offsets))),
            offsets=tuple(offsets),
            element_size=element_size,
        )

    def test_distance_single_ref(self):
        assert self._group([5]).distance() == 1

    def test_distance_pair(self):
        assert self._group([0, 1]).distance() == 2
        assert self._group([0, 7]).distance() == 8

    def test_distance_with_stride(self):
        assert self._group([0, 4]).distance(loop_stride=2) == 3

    def test_lines_remainder_zero_or_one(self):
        # distance 1: 1 mod 4 == 1 -> floor(1/4) + 1 == 1
        assert self._group([0]).cache_lines(4) == 1
        # distance 4: 4 mod 4 == 0 -> floor(4/4) + 1 == 2
        assert self._group([0, 3]).cache_lines(4) == 2

    def test_lines_remainder_other(self):
        # distance 2: 2 mod 4 == 2 -> floor(2/4) + 2 == 2
        assert self._group([0, 1]).cache_lines(4) == 2
        # distance 6: 6 mod 4 == 2 -> floor(6/4) + 2 == 3
        assert self._group([0, 5]).cache_lines(4) == 3

    def test_element_size_converts_line_capacity(self):
        # 4-byte elements in a 4-byte line: one element per line.
        group = self._group([0, 1], element_size=4)
        assert group.cache_lines(4) == 3  # distance 2, line holds 1 element

    def test_invalid_arguments(self):
        group = self._group([0, 1])
        with pytest.raises(ValueError):
            group.cache_lines(0)
        with pytest.raises(ValueError):
            group.distance(0)


class TestGroupingEdgeCases:
    def test_reversed_subscripts_are_separate_groups(self):
        i, j = var("i"), var("j")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 1, 3), Loop("j", 1, 3)),
            refs=(ArrayRef("a", (i, j)), ArrayRef("a", (j, i))),
            arrays=(ArrayDecl("a", (4, 4)),),
        )
        assert len(group_references(nest)) == 2

    def test_constant_only_reference(self):
        i = var("i")
        nest = LoopNest(
            name="t",
            loops=(Loop("i", 0, 3),),
            refs=(ArrayRef("a", (i,)), ArrayRef("a", (0,))),
            arrays=(ArrayDecl("a", (4,)),),
        )
        groups = group_references(nest)
        assert len(groups) == 2
        assert min_cache_lines(nest, 2) >= 2

    def test_program_order_preserved(self, compress):
        groups = group_references(compress.nest)
        assert groups[0].ref_indices[0] == 0
