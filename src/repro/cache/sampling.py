"""Set sampling: estimate miss rates from a fraction of the cache sets.

The classic trick for scaling trace-driven studies (Puzak; later the
backbone of hardware utility monitors): because a set-associative cache's
sets operate independently, simulating only every ``k``-th set and scaling
by the sampled fraction estimates the whole cache's miss count from a
fraction of the trace.  Exact for uniformly spread traffic; the error on
skewed traffic is what the sampling ablation bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.fastsim import fast_miss_vector

__all__ = ["SampledEstimate", "sampled_miss_rate"]


@dataclass(frozen=True)
class SampledEstimate:
    """A sampled miss-rate estimate and its coverage."""

    miss_rate: float
    sampled_accesses: int
    total_accesses: int
    sampled_sets: int
    total_sets: int

    @property
    def coverage(self) -> float:
        """Fraction of the trace actually simulated."""
        if not self.total_accesses:
            return 0.0
        return self.sampled_accesses / self.total_accesses


def sampled_miss_rate(
    line_ids: np.ndarray,
    num_sets: int,
    ways: int,
    sample_every: int = 4,
    offset: int = 0,
) -> SampledEstimate:
    """Estimate the LRU miss rate simulating every ``sample_every``-th set.

    The sampled sets are ``{offset, offset + sample_every, ...}``; their
    accesses are simulated exactly (set behaviour is independent of the
    discarded traffic) and the miss rate of the sample estimates the whole.
    ``sample_every = 1`` degenerates to the exact computation.
    """
    if sample_every < 1:
        raise ValueError("sampling stride must be at least 1")
    if not 0 <= offset < sample_every:
        raise ValueError("offset must lie in [0, sample_every)")
    line_ids = np.ascontiguousarray(line_ids, dtype=np.int64)
    total = int(line_ids.size)
    set_ids = line_ids % num_sets
    mask = (set_ids % sample_every) == offset
    sampled = line_ids[mask]
    sampled_sets = len(
        {s for s in range(num_sets) if s % sample_every == offset}
    )
    if sampled.size == 0:
        return SampledEstimate(0.0, 0, total, sampled_sets, num_sets)
    miss = fast_miss_vector(sampled, num_sets, ways)
    return SampledEstimate(
        miss_rate=float(miss.mean()),
        sampled_accesses=int(sampled.size),
        total_accesses=total,
        sampled_sets=sampled_sets,
        total_sets=num_sets,
    )
