"""Cache statistics and 3C miss classification.

:class:`CacheStats` is what the simulator fills in: overall and per-reference
hit/miss counts, plus write-back traffic.  :func:`classify_misses` implements
Hill's classic three-C breakdown -- compulsory (first touch of a line),
capacity (misses a fully-associative LRU cache of the same size also takes),
and conflict (the rest).  Conflict misses are the quantity the Section 4.1
off-chip assignment eliminates, so this classification is how the
reproduction *verifies* that claim rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.cache.trace import MemoryTrace

__all__ = ["CacheStats", "MissClassification", "classify_misses"]


@dataclass
class CacheStats:
    """Counters produced by one simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    per_ref_hits: Dict[int, int] = field(default_factory=dict)
    per_ref_misses: Dict[int, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 for an empty trace)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 for an empty trace)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def read_accesses(self) -> int:
        """Total read accesses."""
        return self.read_hits + self.read_misses

    @property
    def write_accesses(self) -> int:
        """Total write accesses."""
        return self.write_hits + self.write_misses

    @property
    def read_miss_rate(self) -> float:
        """Miss rate over read accesses only (the paper's energy input)."""
        reads = self.read_accesses
        return self.read_misses / reads if reads else 0.0

    def record(self, hit: bool, is_write: bool, ref_id: int) -> None:
        """Account one access."""
        self.accesses += 1
        if hit:
            self.hits += 1
            self.per_ref_hits[ref_id] = self.per_ref_hits.get(ref_id, 0) + 1
            if is_write:
                self.write_hits += 1
            else:
                self.read_hits += 1
        else:
            self.misses += 1
            self.per_ref_misses[ref_id] = self.per_ref_misses.get(ref_id, 0) + 1
            if is_write:
                self.write_misses += 1
            else:
                self.read_misses += 1

    def check_consistency(self) -> None:
        """Raise :class:`AssertionError` if the counters disagree."""
        assert self.hits + self.misses == self.accesses
        assert self.read_hits + self.write_hits == self.hits
        assert self.read_misses + self.write_misses == self.misses
        assert sum(self.per_ref_hits.values()) == self.hits
        assert sum(self.per_ref_misses.values()) == self.misses


@dataclass(frozen=True)
class MissClassification:
    """Three-C breakdown of the misses of one run."""

    compulsory: int
    capacity: int
    conflict: int

    @property
    def total(self) -> int:
        """Total misses across the three classes."""
        return self.compulsory + self.capacity + self.conflict


def _fully_associative_misses(line_ids: np.ndarray, capacity_lines: int) -> np.ndarray:
    """Boolean miss vector of a fully-associative LRU cache.

    Computed via LRU stack distances: access ``t`` hits iff the number of
    distinct lines referenced since the previous access to the same line is
    at most ``capacity_lines``.
    """
    misses = np.zeros(line_ids.size, dtype=bool)
    stack: list = []  # most recent last
    position: Dict[int, int] = {}
    for t, line in enumerate(line_ids):
        line = int(line)
        if line in position:
            idx = stack.index(line)
            distance = len(stack) - idx  # 1 == most recently used
            if distance > capacity_lines:
                misses[t] = True
            del stack[idx]
        else:
            misses[t] = True
        stack.append(line)
        position[line] = t
    return misses


def classify_misses(
    trace: MemoryTrace, size: int, line_size: int
) -> MissClassification:
    """Three-C classification for a cache of ``size`` bytes, ``line_size`` lines.

    The classification is associativity-independent by construction: it
    compares the trace against an idealised fully-associative LRU cache of
    the same capacity.  The caller pairs it with the simulator's actual miss
    count for the geometry of interest; ``conflict`` here is reported as
    ``actual - compulsory - capacity`` by
    :meth:`repro.cache.simulator.CacheSimulator.classified_misses`.
    """
    if size <= 0 or line_size <= 0 or size % line_size:
        raise ValueError("cache size must be a positive multiple of line size")
    line_ids = trace.line_ids(line_size)
    seen: set = set()
    compulsory = 0
    for line in line_ids.tolist():
        if line not in seen:
            seen.add(line)
            compulsory += 1
    fa_misses = _fully_associative_misses(line_ids, size // line_size)
    capacity = int(fa_misses.sum()) - compulsory
    return MissClassification(compulsory=compulsory, capacity=capacity, conflict=0)
