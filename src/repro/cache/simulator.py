"""Reference set-associative cache simulator.

This is the Dinero-style substrate the paper chose not to build ("we chose to
do this rather than developing a trace driven simulator"); we build it as the
ground truth against which the analytic Section 3 expressions are validated.

Geometry follows the paper's MemExplore parameters: cache size ``T``, line
size ``L`` and set associativity ``S``, all powers of two, with
``sets = T / (L * S)``.  The simulator models an optional write policy pair
(write-through/write-back x allocate/no-allocate); the paper's metrics only
consume read behaviour, which is the default accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats, MissClassification, classify_misses
from repro.cache.trace import MemoryTrace

__all__ = ["CacheGeometry", "CacheSimulator", "simulate_trace"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Cache geometry: total size, line size and associativity (bytes, ways).

    All three follow the paper in being powers of two; a fully-associative
    cache is expressed by ``ways == size // line_size``.
    """

    size: int
    line_size: int
    ways: int = 1

    def __post_init__(self) -> None:
        for label, value in (
            ("cache size", self.size),
            ("line size", self.line_size),
            ("associativity", self.ways),
        ):
            if not _is_pow2(value):
                raise ValueError(f"{label} must be a power of two, got {value}")
        if self.line_size > self.size:
            raise ValueError(
                f"line size {self.line_size} exceeds cache size {self.size}"
            )
        if self.ways * self.line_size > self.size:
            raise ValueError(
                f"{self.ways} ways of {self.line_size}-byte lines do not fit "
                f"in {self.size} bytes"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (1 for fully associative)."""
        return self.num_lines // self.ways

    def set_of(self, address: int) -> int:
        """Set index of a byte address."""
        return (address // self.line_size) % self.num_sets

    def tag_of(self, address: int) -> int:
        """Tag of a byte address."""
        return (address // self.line_size) // self.num_sets

    def __str__(self) -> str:
        return f"C{self.size}L{self.line_size}S{self.ways}"


class _CacheSet:
    """One set: valid/tag/dirty per way plus a replacement-policy instance."""

    __slots__ = ("tags", "dirty", "policy", "lookup")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.tags: List[Optional[int]] = [None] * ways
        self.dirty: List[bool] = [False] * ways
        self.policy = policy
        self.lookup: Dict[int, int] = {}  # tag -> way

    def find(self, tag: int) -> Optional[int]:
        return self.lookup.get(tag)

    def fill(self, tag: int) -> "tuple[int, bool, bool]":
        """Insert ``tag``; returns (way, evicted_valid, evicted_dirty)."""
        for way, existing in enumerate(self.tags):
            if existing is None:
                self.tags[way] = tag
                self.lookup[tag] = way
                self.policy.insert(way)
                return way, False, False
        way = self.policy.victim()
        old_tag = self.tags[way]
        was_dirty = self.dirty[way]
        if old_tag is not None:
            del self.lookup[old_tag]
        self.tags[way] = tag
        self.dirty[way] = False
        self.lookup[tag] = way
        self.policy.insert(way)
        return way, True, was_dirty


class CacheSimulator:
    """Trace-driven simulator for one cache geometry.

    Parameters
    ----------
    geometry:
        The :class:`CacheGeometry` to simulate.
    policy:
        Replacement policy name (``lru``, ``fifo``, ``random``) or a template
        :class:`ReplacementPolicy` instance that is cloned per set.
    write_allocate:
        Whether write misses allocate a line (default True, as in Dinero's
        default data-cache configuration).
    write_back:
        Write-back (True, default) or write-through accounting for the
        ``writebacks`` counter.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: "str | ReplacementPolicy" = "lru",
        write_allocate: bool = True,
        write_back: bool = True,
    ) -> None:
        self.geometry = geometry
        if isinstance(policy, str):
            template: ReplacementPolicy = make_policy(policy, geometry.ways)
        else:
            template = policy
            if template.ways != geometry.ways:
                raise ValueError(
                    f"policy configured for {template.ways} ways, "
                    f"geometry has {geometry.ways}"
                )
        self._policy_template = template
        self.write_allocate = write_allocate
        self.write_back = write_back
        self.reset()

    def reset(self) -> None:
        """Empty the cache and zero all statistics."""
        geo = self.geometry
        self._sets = [
            _CacheSet(geo.ways, self._policy_template.clone())
            for _ in range(geo.num_sets)
        ]
        self.stats = CacheStats()

    def access(self, address: int, is_write: bool = False, ref_id: int = 0) -> bool:
        """Simulate one access; returns True on a hit."""
        geo = self.geometry
        line = address // geo.line_size
        set_index = line % geo.num_sets
        tag = line // geo.num_sets
        cache_set = self._sets[set_index]
        way = cache_set.find(tag)
        hit = way is not None
        if hit:
            cache_set.policy.touch(way)
            if is_write:
                if self.write_back:
                    cache_set.dirty[way] = True
                else:
                    self.stats.writebacks += 1  # write-through traffic
        else:
            if is_write and not self.write_allocate:
                self.stats.writebacks += 1  # goes straight to memory
            else:
                way, evicted, was_dirty = cache_set.fill(tag)
                if evicted:
                    self.stats.evictions += 1
                    if was_dirty:
                        self.stats.writebacks += 1
                if is_write:
                    if self.write_back:
                        cache_set.dirty[way] = True
                    else:
                        self.stats.writebacks += 1
        self.stats.record(hit, is_write, ref_id)
        return hit

    def run(self, trace: MemoryTrace) -> CacheStats:
        """Simulate a whole trace (continuing from current contents)."""
        access = self.access
        for addr, wr, ref in zip(
            trace.addresses.tolist(),
            trace.is_write.tolist(),
            trace.ref_ids.tolist(),
        ):
            access(addr, wr, ref)
        return self.stats

    def contents(self) -> Dict[int, List[Optional[int]]]:
        """Snapshot ``set index -> list of resident tags`` (None = invalid)."""
        return {i: list(s.tags) for i, s in enumerate(self._sets)}

    def classified_misses(self, trace: MemoryTrace) -> MissClassification:
        """3C classification of this geometry's misses on ``trace``.

        Runs a fresh simulation, derives compulsory and capacity misses from
        the associativity-independent classifier, and attributes the
        remainder to conflicts.  Capacity misses are clamped at the actual
        miss count: for non-LRU policies (or pathological traces) the real
        cache can take fewer misses than the fully-associative reference.
        """
        sim = CacheSimulator(
            self.geometry,
            self._policy_template,
            self.write_allocate,
            self.write_back,
        )
        actual = sim.run(trace).misses
        base = classify_misses(trace, self.geometry.size, self.geometry.line_size)
        compulsory = min(base.compulsory, actual)
        capacity = min(base.capacity, actual - compulsory)
        conflict = actual - compulsory - capacity
        return MissClassification(compulsory, capacity, conflict)


def simulate_trace(
    trace: MemoryTrace,
    size: int,
    line_size: int,
    ways: int = 1,
    policy: str = "lru",
) -> CacheStats:
    """One-shot convenience wrapper: simulate ``trace`` on a fresh cache."""
    sim = CacheSimulator(CacheGeometry(size, line_size, ways), policy=policy)
    return sim.run(trace)
