"""Two-level cache hierarchy (extension beyond the paper).

The paper explores a single on-chip data cache in front of off-chip SRAM.
Embedded SoCs that followed it commonly added a second cache level; this
module provides a minimal inclusive two-level model so the exploration
machinery can be pointed at an (L1, L2) pair.  It is exercised by the
ablation benches, not by the paper's own figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.trace import MemoryTrace

__all__ = ["HierarchyStats", "TwoLevelCache"]


@dataclass(frozen=True)
class HierarchyStats:
    """Hit/miss summary of a two-level run."""

    accesses: int
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int

    @property
    def l1_miss_rate(self) -> float:
        """L1 misses over all accesses."""
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses over L2 accesses (the L1 miss stream)."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0

    @property
    def global_miss_rate(self) -> float:
        """Accesses that went all the way to main memory, over all accesses."""
        return self.l2_misses / self.accesses if self.accesses else 0.0


class TwoLevelCache:
    """An L1 backed by an L2; L1 misses are replayed into the L2.

    The model is non-exclusive and does not forward evictions; it captures
    the first-order filtering behaviour that matters for the energy
    trade-off (every L2 hit avoids one main-memory access).
    """

    def __init__(
        self,
        l1: CacheGeometry,
        l2: CacheGeometry,
        policy: str = "lru",
    ) -> None:
        if l2.size < l1.size:
            raise ValueError("L2 must be at least as large as L1")
        if l2.line_size < l1.line_size:
            raise ValueError("L2 line size must be >= L1 line size")
        self.l1 = CacheSimulator(l1, policy=policy)
        self.l2 = CacheSimulator(l2, policy=policy)

    def run(self, trace: MemoryTrace) -> HierarchyStats:
        """Simulate the whole trace through both levels."""
        l2_hits = 0
        l2_misses = 0
        for addr, wr, ref in zip(
            trace.addresses.tolist(),
            trace.is_write.tolist(),
            trace.ref_ids.tolist(),
        ):
            if not self.l1.access(addr, wr, ref):
                if self.l2.access(addr, wr, ref):
                    l2_hits += 1
                else:
                    l2_misses += 1
        s1 = self.l1.stats
        return HierarchyStats(
            accesses=s1.accesses,
            l1_hits=s1.hits,
            l1_misses=s1.misses,
            l2_hits=l2_hits,
            l2_misses=l2_misses,
        )
