"""Next-line prefetching (tagged sequential prefetch).

The paper's levers -- tiling, associativity, layout -- all presume reuse;
its streaming kernels (Compress, SOR, Dequant sweep each element once per
pass) expose their limit: nothing on the paper's menu removes *compulsory*
misses.  Sequential prefetch does: on a demand miss (and on the first
demand hit to a prefetched line -- Smith's "tagged" scheme), the next line
is fetched ahead of use.  For stride-1 sweeps, nearly every compulsory
miss becomes a prefetch hit.

The model tracks demand misses, useful prefetches and useless ones
(fetched but evicted untouched), so the energy accounting can charge
prefetch traffic honestly: a prefetch costs a main-memory access whether
or not it is ever used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cache.replacement import LRUPolicy
from repro.cache.simulator import CacheGeometry
from repro.cache.trace import MemoryTrace

__all__ = ["PrefetchCache", "PrefetchStats"]


@dataclass(frozen=True)
class PrefetchStats:
    """Counters of a prefetching run."""

    accesses: int
    demand_hits: int
    demand_misses: int
    prefetches_issued: int
    prefetches_used: int

    @property
    def miss_rate(self) -> float:
        """Demand misses over all accesses (prefetch hits count as hits)."""
        return self.demand_misses / self.accesses if self.accesses else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were eventually used."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_used / self.prefetches_issued

    @property
    def memory_fetches(self) -> int:
        """Total main-memory line fetches (demand misses + prefetches)."""
        return self.demand_misses + self.prefetches_issued


class PrefetchCache:
    """Set-associative LRU cache with tagged next-line prefetch."""

    def __init__(self, geometry: CacheGeometry, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        self.geometry = geometry
        self.degree = degree
        self.reset()

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        geo = self.geometry
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(geo.num_sets)
        ]  # tag -> prefetched-and-untouched flag
        self._lru: List[LRUPolicy] = []
        self._order: List[List[int]] = [[] for _ in range(geo.num_sets)]
        self._accesses = 0
        self._demand_hits = 0
        self._demand_misses = 0
        self._issued = 0
        self._used = 0

    def _touch(self, set_index: int, line: int) -> None:
        order = self._order[set_index]
        if line in order:
            order.remove(line)
        order.append(line)

    def _install(self, line: int, prefetched: bool) -> None:
        geo = self.geometry
        set_index = line % geo.num_sets
        contents = self._sets[set_index]
        if line in contents:
            return
        if len(contents) >= geo.ways:
            victim = self._order[set_index].pop(0)
            del contents[victim]
        contents[line] = prefetched
        self._touch(set_index, line)

    def _prefetch(self, line: int) -> None:
        for ahead in range(1, self.degree + 1):
            target = line + ahead
            set_index = target % self.geometry.num_sets
            if target not in self._sets[set_index]:
                self._issued += 1
                self._install(target, prefetched=True)

    def access(self, address: int) -> bool:
        """Simulate one demand access; returns True on a (demand) hit."""
        geo = self.geometry
        line = address // geo.line_size
        set_index = line % geo.num_sets
        contents = self._sets[set_index]
        self._accesses += 1
        if line in contents:
            self._demand_hits += 1
            self._touch(set_index, line)
            if contents[line]:  # first demand touch of a prefetched line
                contents[line] = False
                self._used += 1
                self._prefetch(line)  # tagged scheme: keep the chain going
            return True
        self._demand_misses += 1
        self._install(line, prefetched=False)
        self._prefetch(line)
        return False

    def run(self, trace: MemoryTrace) -> PrefetchStats:
        """Simulate a whole trace (continuing from current contents)."""
        for address in trace.addresses.tolist():
            self.access(address)
        return self.stats

    @property
    def stats(self) -> PrefetchStats:
        """Current counters."""
        return PrefetchStats(
            accesses=self._accesses,
            demand_hits=self._demand_hits,
            demand_misses=self._demand_misses,
            prefetches_issued=self._issued,
            prefetches_used=self._used,
        )
