"""Merging write buffer between the cache and main memory.

The paper drops writes entirely ("reads dominate processor cache
accesses"); the hardware that makes that defensible is a *write buffer* --
a small FIFO of pending line-writes that absorbs and merges store traffic
so the processor never stalls on it and repeated stores to one line cost
one memory transaction.  This model quantifies the defence: feed it the
write stream of a kernel (write-through traffic, or the write-back
eviction stream) and it reports how many memory transactions remain after
merging, i.e. how much write energy the paper's accounting actually
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.trace import MemoryTrace

__all__ = ["WriteBuffer", "WriteBufferStats"]


@dataclass(frozen=True)
class WriteBufferStats:
    """Outcome of draining a write stream through the buffer."""

    writes: int
    merged: int
    memory_transactions: int

    @property
    def merge_rate(self) -> float:
        """Fraction of writes absorbed into an already-pending line."""
        return self.merged / self.writes if self.writes else 0.0


class WriteBuffer:
    """A FIFO of pending line-writes with same-line merging.

    A store whose line is already pending merges into that entry; otherwise
    it allocates a new entry, retiring (writing to memory) the oldest entry
    when the buffer is full.  Draining at the end retires the remainder, so
    ``memory_transactions`` counts every distinct line-write that reached
    main memory.
    """

    def __init__(self, entries: int = 4, line_size: int = 8) -> None:
        if entries < 1:
            raise ValueError("the buffer needs at least one entry")
        if line_size < 1:
            raise ValueError("line size must be positive")
        self.entries = entries
        self.line_size = line_size
        self.reset()

    def reset(self) -> None:
        """Empty the buffer and zero the counters."""
        self._pending: List[int] = []  # line ids, oldest first
        self._writes = 0
        self._merged = 0
        self._retired = 0

    def write(self, address: int) -> None:
        """Post one store to the buffer."""
        line = address // self.line_size
        self._writes += 1
        if line in self._pending:
            self._merged += 1
            return
        if len(self._pending) >= self.entries:
            self._pending.pop(0)
            self._retired += 1
        self._pending.append(line)

    def drain(self) -> None:
        """Retire everything still pending."""
        self._retired += len(self._pending)
        self._pending.clear()

    def run(self, trace: MemoryTrace) -> WriteBufferStats:
        """Feed the trace's write accesses through the buffer and drain."""
        for address in trace.addresses[trace.is_write].tolist():
            self.write(address)
        self.drain()
        return self.stats

    @property
    def stats(self) -> WriteBufferStats:
        """Current counters (``memory_transactions`` = retired lines)."""
        return WriteBufferStats(
            writes=self._writes,
            merged=self._merged,
            memory_transactions=self._retired + len(self._pending),
        )
