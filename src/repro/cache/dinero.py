"""Dinero ``din`` trace format I/O.

The paper cites Edler and Hill's Dinero IV as the simulator its analytic
expressions substitute for.  To make this reproduction's traces portable to
Dinero (and Dinero traces usable here), this module reads and writes the
classic ``din`` one-access-per-line format::

    <label> <hex address>

with labels 0 = data read, 1 = data write, 2 = instruction fetch.  Labels
3 (escape: unknown) and 4 (escape: cache flush) are tolerated on input and
skipped, since this substrate has no corresponding events.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Union

from repro.cache.trace import MemoryAccess, MemoryTrace

__all__ = ["read_din_trace", "write_din_trace", "DATA_READ", "DATA_WRITE", "IFETCH"]

DATA_READ = 0
DATA_WRITE = 1
IFETCH = 2
_ESCAPE_LABELS = {3, 4}

PathOrFile = Union[str, Path, IO[str]]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="ascii"), True
    return target, False


def read_din_trace(source: PathOrFile, include_ifetch: bool = False) -> MemoryTrace:
    """Parse a ``din`` trace into a :class:`MemoryTrace`.

    Instruction fetches (label 2) are skipped unless ``include_ifetch`` is
    set, in which case they are recorded as reads with ``ref_id`` equal to
    the Dinero label so callers can separate them again.
    """
    fh, owned = _open_for_read(source)
    accesses = []
    try:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"din line {lineno}: expected 'label address'")
            try:
                label = int(parts[0])
                address = int(parts[1], 16)
            except ValueError as exc:
                raise ValueError(f"din line {lineno}: {exc}") from None
            if label in _ESCAPE_LABELS:
                continue
            if label == IFETCH and not include_ifetch:
                continue
            if label not in (DATA_READ, DATA_WRITE, IFETCH):
                raise ValueError(f"din line {lineno}: unknown label {label}")
            accesses.append(
                MemoryAccess(address, is_write=(label == DATA_WRITE), ref_id=label)
            )
    finally:
        if owned:
            fh.close()
    return MemoryTrace.from_accesses(accesses)


def write_din_trace(trace: MemoryTrace, target: PathOrFile) -> int:
    """Write a trace in ``din`` format; returns the number of lines written.

    Reads become label 0 and writes label 1 (the loop-nest substrate emits
    data accesses only).
    """
    fh, owned = _open_for_write(target)
    count = 0
    try:
        for access in trace:
            label = DATA_WRITE if access.is_write else DATA_READ
            fh.write(f"{label} {access.address:x}\n")
            count += 1
    finally:
        if owned:
            fh.close()
    return count
