"""Replacement policies for the set-associative simulator.

The paper assumes LRU (the usual choice for the small associativities it
explores, 1..8 ways); FIFO and Random are provided for the ablation bench
that checks how sensitive the exploration outcome is to the policy.

A policy instance manages *one* cache set.  The simulator creates one
instance per set via :meth:`ReplacementPolicy.clone`.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = [
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]


class ReplacementPolicy:
    """State and victim selection for a single cache set.

    Subclasses keep whatever recency/insertion state they need; the
    simulator calls :meth:`touch` on every hit, :meth:`insert` on every
    fill, and :meth:`victim` to pick the way to evict when the set is full.
    """

    name = "abstract"

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("a cache set needs at least one way")
        self.ways = ways

    def clone(self) -> "ReplacementPolicy":
        """A fresh instance with the same configuration (per-set state)."""
        return type(self)(self.ways)

    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""
        raise NotImplementedError

    def insert(self, way: int) -> None:
        """Record a fill into ``way``."""
        raise NotImplementedError

    def victim(self) -> int:
        """The way to evict; only called when every way is valid."""
        raise NotImplementedError

    def invalidate(self, way: int) -> None:
        """Forget any state attached to ``way`` (for flushes)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: evict the way idle the longest."""

    name = "lru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order: List[int] = []  # most recent last

    def touch(self, way: int) -> None:
        """Move the hit way to the most-recent position."""
        self._order.remove(way)
        self._order.append(way)

    def insert(self, way: int) -> None:
        """Record a fill as most recent."""
        if way in self._order:
            self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        """The least recently used way."""
        return self._order[0]

    def invalidate(self, way: int) -> None:
        """Drop the way from the recency order."""
        if way in self._order:
            self._order.remove(way)


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: evict the oldest fill, ignoring hits."""

    name = "fifo"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._queue: List[int] = []  # oldest first

    def touch(self, way: int) -> None:
        """Hits do not reorder a FIFO."""

    def insert(self, way: int) -> None:
        """Append the fill to the queue."""
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def victim(self) -> int:
        """The oldest fill."""
        return self._queue[0]

    def invalidate(self, way: int) -> None:
        """Drop the way from the queue."""
        if way in self._queue:
            self._queue.remove(way)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim, with a seeded generator for repeatability."""

    name = "random"

    def __init__(self, ways: int, seed: Optional[int] = 0) -> None:
        super().__init__(ways)
        self._seed = seed
        self._rng = random.Random(seed)
        self._valid: List[int] = []

    def clone(self) -> "RandomPolicy":
        """A fresh instance re-seeded identically (per-set repeatability)."""
        return RandomPolicy(self.ways, self._seed)

    def touch(self, way: int) -> None:
        """Hits carry no state for a random policy."""

    def insert(self, way: int) -> None:
        """Mark the way as holding valid data."""
        if way not in self._valid:
            self._valid.append(way)

    def victim(self) -> int:
        """A uniformly random valid way."""
        return self._rng.choice(self._valid)

    def invalidate(self, way: int) -> None:
        """Drop the way from the valid set."""
        if way in self._valid:
            self._valid.remove(way)


_POLICIES = {cls.name: cls for cls in (LRUPolicy, FIFOPolicy, RandomPolicy)}


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Instantiate a policy by name: ``lru``, ``fifo`` or ``random``."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return cls(ways)
