"""One-pass, all-configuration LRU simulation (vectorized Mattson).

:mod:`repro.cache.distance` prices every *capacity* of a fully-associative
LRU cache from one stack-distance pass; this module generalises the trick
to the set-associative, bit-selected caches of the MemExplore space.  With
``set = line mod S`` a line's set never changes, so the LRU state of each
set is the global recency order restricted to that set, and an access hits
an ``(S, W)`` cache iff its *set-local* stack distance is at most ``W``.
One pass per set count therefore yields exact miss counts for every
associativity at once, and a whole ``(sets, ways)`` grid costs one pass
per distinct set count instead of one simulation per configuration;
direct-mapped falls out as ``W = 1``.

Two vectorized passes live here (no Python loop over accesses):

* :func:`grid_miss_counts` -- the sweep workhorse.  Accesses are stably
  grouped by set index (segments stay in time order), then a *stack
  filter* peels one LRU depth per level: at level ``k`` every event
  carries the value it pushes (``P``, the top it demoted at level
  ``k-1``; at the base level its own line) and the line it looks for
  (``Q``).  Because segments are contiguous the current top is simply
  the previous event's push, so each level is one shift-and-compare;
  ``Q == P[t-1]`` means the line sat at depth exactly ``k`` and the
  event drops out, everything else survives with ``P`` replaced by the
  demoted top.  Values from different segments differ mod ``S`` and can
  never compare equal, so no boundary bookkeeping is needed.  ``cap``
  levels (the largest requested ways) over shrinking arrays price the
  whole associativity range; events still unresolved miss everywhere.
* :func:`set_local_distances` -- exact, uncapped distances.  ``prev``
  occurrences come from one stable sort on line id, and the distance of
  a warm access at grouped position ``t`` is ``c(t) - prev(t)`` where
  ``c(t) = #{s < t : prev(s) <= prev(t)}``, an inversion-style count
  computed by top-down merge counting, O(n log^2 n) inside numpy.

Histograms of either answer every ways value in O(1).  Bit-exact with
:mod:`repro.cache.fastsim` (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.cache.distance import COLD

__all__ = ["COLD", "GridCounts", "grid_miss_counts", "set_local_distances"]


@dataclass(frozen=True)
class GridCounts:
    """Exact miss behaviour of one ``(num_sets, ways)`` grid point."""

    accesses: int
    reads: int
    misses: int
    read_misses: int


# Below this block width the level loop hands over to one broadcasted
# triangular comparison; the narrow levels are overhead-bound otherwise.
_BOTTOM_WIDTH = 16


def _count_preceding_leq(values: np.ndarray) -> np.ndarray:
    """For every position ``t``: ``#{s < t : values[s] <= values[t]}``.

    Top-down merge-sort counting: one global stable argsort, then one
    cheap O(n) pass per level.  The layout invariant is "original
    positions, grouped by width-``w`` block of the *original* index,
    sorted by value within each block"; splitting a block into its halves
    is a stable partition (a cumsum), and while splitting, every
    right-half element reads off the number of left-half elements ``<=``
    itself as its rank among the lefts.  Each (s, t) pair is counted
    exactly once, at the level where the two positions last share a
    block; pairs inside the narrowest blocks are finished off with one
    broadcasted triangular comparison.
    """
    n = int(values.size)
    counts = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return counts
    width = 1
    while width < n:
        width *= 2
    if width > _BOTTOM_WIDTH:
        # Layout: original positions in global value order (stable, so
        # equal values keep time order and "<=" ties resolve correctly).
        pos = np.argsort(values, kind="stable").astype(np.int64)
        slots = np.arange(n, dtype=np.int64)
        scratch = np.empty(n, dtype=np.int64)
        while width > _BOTTOM_WIDTH:
            half = width >> 1
            right = (pos & half) != 0
            block_start = pos & ~(width - 1)
            rank = slots - block_start
            # Right-half elements strictly before each layout slot.
            before = np.empty(n, dtype=np.int64)
            before[0] = 0
            np.cumsum(right[:-1], out=before[1:])
            rights_before = before - before[block_start]
            lefts_before = rank - rights_before
            counts[pos[right]] += lefts_before[right]
            # Stable partition into the two half-blocks (the last block
            # may be short; its left half then holds whatever remains).
            left_count = np.minimum(half, n - block_start)
            new_slot = block_start + np.where(
                right, left_count + rights_before, lefts_before
            )
            scratch[new_slot] = pos
            pos, scratch = scratch, pos
            width = half
    # Remaining pairs live inside width-sized blocks of original
    # positions: one triangular broadcast finishes them.
    blocks = (n + width - 1) // width
    padded = np.full(blocks * width, np.iinfo(np.int64).max, dtype=np.int64)
    padded[:n] = values
    tiles = padded.reshape(blocks, width)
    leq = tiles[:, None, :] <= tiles[:, :, None]
    strictly_before = np.tril(np.ones((width, width), dtype=bool), k=-1)
    counts += (leq & strictly_before).sum(axis=2).ravel()[:n]
    return counts


def set_local_distances(line_ids: np.ndarray, num_sets: int) -> np.ndarray:
    """Per-access LRU stack distance *within each access's set*.

    ``COLD`` marks first touches.  An access with distance ``d`` hits
    every ``num_sets``-set LRU cache with at least ``d`` ways;
    ``num_sets = 1`` degenerates to
    :func:`repro.cache.distance.stack_distances`.
    """
    if num_sets < 1:
        raise ValueError("num_sets must be positive")
    line_ids = np.asarray(line_ids, dtype=np.int64)
    n = line_ids.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    set_ids = line_ids % num_sets
    order = np.argsort(set_ids, kind="stable")
    grouped_lines = line_ids[order]
    grouped_sets = set_ids[order]
    positions = np.arange(n, dtype=np.int64)
    is_start = np.ones(n, dtype=bool)
    is_start[1:] = grouped_sets[1:] != grouped_sets[:-1]
    seg_start = np.maximum.accumulate(np.where(is_start, positions, 0))
    # Previous occurrence of the same line, as a grouped position.  A
    # line's set is fixed, so "same line" already implies "same segment".
    by_line = np.argsort(grouped_lines, kind="stable")
    prev = np.full(n, -1, dtype=np.int64)
    same = grouped_lines[by_line[1:]] == grouped_lines[by_line[:-1]]
    prev[by_line[1:][same]] = by_line[:-1][same]
    cold = prev < 0
    prev[cold] = seg_start[cold] - 1
    distances = _count_preceding_leq(prev) - prev
    distances[cold] = COLD
    out = np.empty(n, dtype=np.int64)
    out[order] = distances
    return out


def _capped_hit_histograms(
    line_ids: np.ndarray,
    read_mask: np.ndarray,
    num_sets: int,
    cap: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hits at each exact stack depth ``1..cap``, total and read-only.

    The stack filter: group by set, then per level shift-and-compare.
    Every event pushes its ``P`` (own line at the base level, the
    demoted top afterwards), so the top seen by event ``t`` is
    ``P[t-1]``; a match resolves the event at depth ``k``, everything
    else survives to the next level carrying the demoted top.  Pushes
    that cross a segment boundary (or the ``-1`` start sentinel) differ
    mod ``num_sets`` from every query in the segment, so they behave as
    an empty stack and simply produce the misses they should.
    """
    hits_all = np.zeros(cap + 1, dtype=np.int64)
    hits_read = np.zeros(cap + 1, dtype=np.int64)
    if num_sets == 1:
        queries = line_ids
        reads = read_mask
    else:
        order = np.argsort(line_ids % num_sets, kind="stable")
        queries = line_ids[order]
        reads = read_mask[order]
    pushes = queries
    for depth in range(1, cap + 1):
        if queries.size == 0:
            break
        top = np.empty_like(pushes)
        top[0] = -1
        top[1:] = pushes[:-1]
        hit = queries == top
        resolved = int(hit.sum())
        if resolved:
            hits_all[depth] = resolved
            hits_read[depth] = int((hit & reads).sum())
            survive = ~hit
            queries = queries[survive]
            pushes = top[survive]
            reads = reads[survive]
        else:
            pushes = top
    return hits_all, hits_read


def grid_miss_counts(
    line_ids: np.ndarray,
    is_write: np.ndarray,
    points: Iterable[Tuple[int, int]],
) -> Dict[Tuple[int, int], GridCounts]:
    """Exact miss counts for every requested ``(num_sets, ways)`` point.

    One stack-filter pass per *distinct set count* prices every
    associativity at that set count: an access misses ``(S, W)`` iff its
    set-local stack depth exceeds ``W`` (cold accesses never resolve and
    miss everywhere).
    """
    line_ids = np.asarray(line_ids, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)
    if line_ids.shape != is_write.shape:
        raise ValueError("line_ids and is_write must have the same length")
    by_sets: Dict[int, List[int]] = {}
    for num_sets, ways in points:
        num_sets, ways = int(num_sets), int(ways)
        if num_sets < 1 or ways < 1:
            raise ValueError("grid points need positive sets and ways")
        by_sets.setdefault(num_sets, []).append(ways)
    n = int(line_ids.size)
    read_mask = ~is_write
    reads = int(read_mask.sum())
    results: Dict[Tuple[int, int], GridCounts] = {}
    for num_sets in sorted(by_sets):
        ways_list = sorted(set(by_sets[num_sets]))
        if n == 0:
            for ways in ways_list:
                results[(num_sets, ways)] = GridCounts(0, 0, 0, 0)
            continue
        cap = ways_list[-1]
        hits_all, hits_read = _capped_hit_histograms(
            line_ids, read_mask, num_sets, cap
        )
        cum_all = np.cumsum(hits_all)
        cum_read = np.cumsum(hits_read)
        for ways in ways_list:
            results[(num_sets, ways)] = GridCounts(
                accesses=n,
                reads=reads,
                misses=n - int(cum_all[ways]),
                read_misses=reads - int(cum_read[ways]),
            )
    return results
