"""Trace-driven cache simulation substrate.

The paper derived miss rates from closed-form expressions "rather than
developing a trace driven simulator that could be ported to Dinero".  This
reproduction builds the simulator anyway and uses it as ground truth: it is a
small Dinero-style set-associative simulator with pluggable replacement
policies, write policies, 3C miss classification, and a vectorized fast path
for the large design-space sweeps of Algorithm MemExplore.
"""

from repro.cache.trace import MemoryAccess, MemoryTrace
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.simulator import CacheGeometry, CacheSimulator, simulate_trace
from repro.cache.stats import CacheStats, MissClassification, classify_misses
from repro.cache.distance import miss_ratio_curve, reuse_profile, stack_distances
from repro.cache.stackdist import (
    GridCounts,
    grid_miss_counts,
    set_local_distances,
)
from repro.cache.fastsim import fast_hit_miss_counts
from repro.cache.sampling import SampledEstimate, sampled_miss_rate
from repro.cache.hierarchy import HierarchyStats, TwoLevelCache
from repro.cache.prefetch import PrefetchCache, PrefetchStats
from repro.cache.writebuffer import WriteBuffer, WriteBufferStats
from repro.cache.victim import VictimCache, VictimStats
from repro.cache.dinero import read_din_trace, write_din_trace

__all__ = [
    "CacheGeometry",
    "CacheSimulator",
    "CacheStats",
    "FIFOPolicy",
    "HierarchyStats",
    "LRUPolicy",
    "MemoryAccess",
    "MemoryTrace",
    "MissClassification",
    "PrefetchCache",
    "PrefetchStats",
    "RandomPolicy",
    "ReplacementPolicy",
    "TwoLevelCache",
    "VictimCache",
    "VictimStats",
    "WriteBuffer",
    "WriteBufferStats",
    "GridCounts",
    "classify_misses",
    "fast_hit_miss_counts",
    "grid_miss_counts",
    "make_policy",
    "miss_ratio_curve",
    "reuse_profile",
    "set_local_distances",
    "SampledEstimate",
    "sampled_miss_rate",
    "stack_distances",
    "read_din_trace",
    "simulate_trace",
    "write_din_trace",
]
