"""Vectorized fast path for design-space sweeps.

Algorithm MemExplore simulates every ``(T, L, S, B)`` combination; the
object-oriented :class:`~repro.cache.simulator.CacheSimulator` is convenient
but slow for the thousands of configurations a full sweep visits.  This
module computes the per-access miss vector directly from the line-id stream:

* accesses are stably grouped by set index, turning the simulation into an
  independent scan per set;
* direct-mapped sets reduce to "miss iff the line differs from the previous
  line in the same set", which vectorizes completely;
* set-associative sets run a compact LRU list per set (at most 8 ways in the
  paper's space), which is cheap because each access is handled exactly once.

The result is bit-exact with the reference simulator under LRU (asserted by
the test suite, including property-based cross-checks).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["fast_hit_miss_counts", "fast_miss_vector"]


def _direct_mapped_miss_vector(
    line_ids: np.ndarray, num_sets: int
) -> np.ndarray:
    set_ids = line_ids % num_sets
    order = np.argsort(set_ids, kind="stable")
    sorted_sets = set_ids[order]
    sorted_lines = line_ids[order]
    miss_sorted = np.ones(line_ids.size, dtype=bool)
    if line_ids.size > 1:
        same_set = sorted_sets[1:] == sorted_sets[:-1]
        same_line = sorted_lines[1:] == sorted_lines[:-1]
        miss_sorted[1:] = ~(same_set & same_line)
    miss = np.empty_like(miss_sorted)
    miss[order] = miss_sorted
    return miss


def _associative_miss_vector(
    line_ids: np.ndarray, num_sets: int, ways: int
) -> np.ndarray:
    set_ids = line_ids % num_sets
    order = np.argsort(set_ids, kind="stable")
    sorted_sets = set_ids[order].tolist()
    sorted_lines = line_ids[order].tolist()
    miss_sorted = np.zeros(line_ids.size, dtype=bool)
    current_set = -1
    lru: list = []
    for i, (s, line) in enumerate(zip(sorted_sets, sorted_lines)):
        if s != current_set:
            current_set = s
            lru = []
        if line in lru:
            lru.remove(line)
            lru.append(line)
        else:
            miss_sorted[i] = True
            if len(lru) >= ways:
                lru.pop(0)
            lru.append(line)
    miss = np.empty_like(miss_sorted)
    miss[order] = miss_sorted
    return miss


def fast_miss_vector(
    line_ids: np.ndarray, num_sets: int, ways: int
) -> np.ndarray:
    """Per-access LRU miss flags for the given geometry.

    ``line_ids`` is the global line-number stream
    (:meth:`repro.cache.trace.MemoryTrace.line_ids`); ``num_sets * ways``
    lines make up the cache.
    """
    if num_sets <= 0 or ways <= 0:
        raise ValueError("geometry parameters must be positive")
    line_ids = np.ascontiguousarray(line_ids, dtype=np.int64)
    if line_ids.size == 0:
        return np.zeros(0, dtype=bool)
    if ways == 1:
        return _direct_mapped_miss_vector(line_ids, num_sets)
    return _associative_miss_vector(line_ids, num_sets, ways)


def fast_hit_miss_counts(
    line_ids: np.ndarray, num_sets: int, ways: int
) -> Tuple[int, int]:
    """(hits, misses) of an LRU cache on the given line stream."""
    miss = fast_miss_vector(line_ids, num_sets, ways)
    misses = int(miss.sum())
    return line_ids.size - misses, misses
