"""Victim cache (Jouppi 1990): the hardware rival of Section 4.1.

The paper removes conflict misses in *software* (padded off-chip layout);
Jouppi's victim cache removes them in *hardware*: a small fully-associative
buffer behind a direct-mapped cache holds recently evicted lines, so the
ping-pong pattern of two addresses aliasing one set hits the buffer instead
of main memory.  Implementing it lets the benches ask the natural design
question the paper leaves open: how many buffer entries equal one layout
pass?

Model: on an L1 miss, probe the victim buffer; a victim hit *swaps* the
line back into L1 (evicting the resident line into the buffer, as in
Jouppi's design); a full miss fills L1 and pushes the evicted line into the
buffer (FIFO of the LRU order).  Victim hits are tallied separately so the
energy accounting can price them between a hit and a full miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.simulator import CacheGeometry
from repro.cache.trace import MemoryTrace

__all__ = ["VictimCache", "VictimStats"]


@dataclass(frozen=True)
class VictimStats:
    """Hit/miss summary of a victim-cache run."""

    accesses: int
    l1_hits: int
    victim_hits: int
    misses: int

    @property
    def miss_rate(self) -> float:
        """Full misses (to main memory) over all accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """L1 misses (victim hits included) over all accesses."""
        if not self.accesses:
            return 0.0
        return (self.victim_hits + self.misses) / self.accesses

    @property
    def victim_hit_rate(self) -> float:
        """Fraction of L1 misses absorbed by the victim buffer."""
        l1_misses = self.victim_hits + self.misses
        return self.victim_hits / l1_misses if l1_misses else 0.0


class VictimCache:
    """Direct-mapped L1 plus a small fully-associative victim buffer."""

    def __init__(self, geometry: CacheGeometry, victim_entries: int = 4) -> None:
        if geometry.ways != 1:
            raise ValueError("the victim organisation backs a direct-mapped L1")
        if victim_entries < 1:
            raise ValueError("the victim buffer needs at least one entry")
        self.geometry = geometry
        self.victim_entries = victim_entries
        self.reset()

    def reset(self) -> None:
        """Empty both structures and zero the counters."""
        self._l1: Dict[int, int] = {}  # set index -> resident line id
        self._victims: List[int] = []  # LRU order, most recent last
        self._accesses = 0
        self._l1_hits = 0
        self._victim_hits = 0
        self._misses = 0

    def access(self, address: int) -> str:
        """Simulate one access; returns ``"l1"``, ``"victim"`` or ``"miss"``."""
        geo = self.geometry
        line = address // geo.line_size
        set_index = line % geo.num_sets
        self._accesses += 1
        resident = self._l1.get(set_index)
        if resident == line:
            self._l1_hits += 1
            return "l1"
        if line in self._victims:
            # Swap: the requested line returns to L1, the resident line
            # (if any) takes its place in the buffer.
            self._victims.remove(line)
            self._victim_hits += 1
            if resident is not None:
                self._push_victim(resident)
            self._l1[set_index] = line
            return "victim"
        self._misses += 1
        if resident is not None:
            self._push_victim(resident)
        self._l1[set_index] = line
        return "miss"

    def _push_victim(self, line: int) -> None:
        if line in self._victims:
            self._victims.remove(line)
        self._victims.append(line)
        if len(self._victims) > self.victim_entries:
            self._victims.pop(0)

    def run(self, trace: MemoryTrace) -> VictimStats:
        """Simulate a whole trace (continuing from current contents)."""
        for address in trace.addresses.tolist():
            self.access(address)
        return self.stats

    @property
    def stats(self) -> VictimStats:
        """Current counters as a :class:`VictimStats`."""
        return VictimStats(
            accesses=self._accesses,
            l1_hits=self._l1_hits,
            victim_hits=self._victim_hits,
            misses=self._misses,
        )
