"""Memory access traces.

A :class:`MemoryTrace` is the interface between the loop-nest substrate and
the cache simulator: a flat, ordered sequence of byte addresses annotated
with read/write flags and the index of the source :class:`~repro.loops.ir.ArrayRef`
that generated each access.  Traces are stored as parallel numpy arrays so
that the vectorized simulator paths can consume them without conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

__all__ = ["MemoryAccess", "MemoryTrace"]


@dataclass(frozen=True)
class MemoryAccess:
    """One access: byte address, read/write, and originating reference id."""

    address: int
    is_write: bool = False
    ref_id: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("addresses must be non-negative")


class MemoryTrace:
    """An ordered sequence of memory accesses backed by numpy arrays."""

    def __init__(
        self,
        addresses: Sequence[int],
        is_write: Optional[Sequence[bool]] = None,
        ref_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.addresses = np.asarray(addresses, dtype=np.int64)
        if self.addresses.ndim != 1:
            raise ValueError("trace addresses must be one-dimensional")
        if self.addresses.size and self.addresses.min() < 0:
            raise ValueError("trace contains a negative address")
        n = self.addresses.size
        if is_write is None:
            self.is_write = np.zeros(n, dtype=bool)
        else:
            self.is_write = np.asarray(is_write, dtype=bool)
        if ref_ids is None:
            self.ref_ids = np.zeros(n, dtype=np.int32)
        else:
            self.ref_ids = np.asarray(ref_ids, dtype=np.int32)
        if self.is_write.shape != (n,) or self.ref_ids.shape != (n,):
            raise ValueError("trace arrays must all have the same length")

    @staticmethod
    def from_accesses(accesses: Iterable[MemoryAccess]) -> "MemoryTrace":
        """Build a trace from individual :class:`MemoryAccess` records."""
        items = list(accesses)
        return MemoryTrace(
            [a.address for a in items],
            [a.is_write for a in items],
            [a.ref_id for a in items],
        )

    @staticmethod
    def concatenate(traces: Sequence["MemoryTrace"]) -> "MemoryTrace":
        """Concatenate traces back to back, preserving order."""
        if not traces:
            return MemoryTrace([])
        return MemoryTrace(
            np.concatenate([t.addresses for t in traces]),
            np.concatenate([t.is_write for t in traces]),
            np.concatenate([t.ref_ids for t in traces]),
        )

    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for addr, wr, ref in zip(self.addresses, self.is_write, self.ref_ids):
            yield MemoryAccess(int(addr), bool(wr), int(ref))

    def __getitem__(self, i: int) -> MemoryAccess:
        return MemoryAccess(
            int(self.addresses[i]), bool(self.is_write[i]), int(self.ref_ids[i])
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryTrace):
            return NotImplemented
        return (
            np.array_equal(self.addresses, other.addresses)
            and np.array_equal(self.is_write, other.is_write)
            and np.array_equal(self.ref_ids, other.ref_ids)
        )

    @property
    def num_reads(self) -> int:
        """Number of read accesses."""
        return int((~self.is_write).sum())

    @property
    def num_writes(self) -> int:
        """Number of write accesses."""
        return int(self.is_write.sum())

    def reads_only(self) -> "MemoryTrace":
        """The sub-trace containing only read accesses, order preserved."""
        mask = ~self.is_write
        return MemoryTrace(
            self.addresses[mask], self.is_write[mask], self.ref_ids[mask]
        )

    def line_ids(self, line_size: int) -> np.ndarray:
        """Global cache-line number of each access."""
        if line_size <= 0:
            raise ValueError("line size must be positive")
        return self.addresses // line_size

    def footprint_bytes(self) -> int:
        """Size of the touched address range (max - min + 1), 0 if empty."""
        if not len(self):
            return 0
        return int(self.addresses.max() - self.addresses.min() + 1)

    def unique_lines(self, line_size: int) -> int:
        """Number of distinct cache lines touched at the given line size."""
        if not len(self):
            return 0
        return int(np.unique(self.line_ids(line_size)).size)
