"""LRU stack-distance analysis and miss-ratio curves.

Mattson's classic result: for a fully-associative LRU cache, an access
hits iff its *stack distance* -- the number of distinct lines touched since
the previous access to the same line -- is at most the cache's line
capacity.  One pass over the trace therefore yields the miss count of
EVERY cache size at once (the miss-ratio curve).

This is the machinery behind the capacity analysis of
:func:`repro.cache.stats.classify_misses`, exposed directly because it
explains the one systematic deviation of this reproduction from the paper:
the paper's analytic model ignores cross-sweep retention, i.e. it prices
every cache size on the curve at the curve's plateau, while the simulator
follows the curve down (see EXPERIMENTS.md, Figures 3-4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.cache.trace import MemoryTrace

__all__ = [
    "miss_ratio_curve",
    "reuse_profile",
    "stack_distances",
]

#: Stack distance reported for a line's first touch (a compulsory miss).
COLD = -1


def stack_distances(line_ids: Sequence[int]) -> np.ndarray:
    """LRU stack distance of every access (``COLD`` for first touches).

    A distance of 1 means "the most recently used line was re-touched";
    an access with distance ``d`` hits any fully-associative LRU cache of
    at least ``d`` lines.
    """
    line_ids = np.asarray(line_ids, dtype=np.int64)
    distances = np.empty(line_ids.size, dtype=np.int64)
    stack: List[int] = []  # most recent last
    index: Dict[int, bool] = {}
    for t, line in enumerate(line_ids.tolist()):
        if line in index:
            pos = stack.index(line)
            distances[t] = len(stack) - pos
            del stack[pos]
        else:
            distances[t] = COLD
            index[line] = True
        stack.append(line)
    return distances


def miss_ratio_curve(
    trace: MemoryTrace, line_size: int, capacities: Sequence[int]
) -> Dict[int, float]:
    """Fully-associative LRU miss ratio at each capacity (in lines).

    One stack-distance pass prices every requested capacity: an access
    misses a ``c``-line cache iff it is cold or its distance exceeds ``c``.
    """
    if any(c <= 0 for c in capacities):
        raise ValueError("capacities must be positive line counts")
    distances = stack_distances(trace.line_ids(line_size))
    n = distances.size
    if n == 0:
        return {c: 0.0 for c in capacities}
    cold = int((distances == COLD).sum())
    warm = distances[distances != COLD]
    return {
        c: (cold + int((warm > c).sum())) / n
        for c in capacities
    }


def reuse_profile(trace: MemoryTrace, line_size: int) -> Dict[str, float]:
    """Summary statistics of a trace's temporal locality.

    Returns the compulsory fraction, the median and 90th-percentile stack
    distance of the warm accesses, and the line-capacity knee: the
    smallest power-of-two capacity whose fully-associative miss ratio is
    within 1% of compulsory-only.
    """
    distances = stack_distances(trace.line_ids(line_size))
    n = distances.size
    if n == 0:
        return {
            "compulsory_fraction": 0.0,
            "median_distance": 0.0,
            "p90_distance": 0.0,
            "knee_lines": 1,
        }
    cold_mask = distances == COLD
    warm = distances[~cold_mask]
    compulsory_fraction = float(cold_mask.mean())
    if warm.size == 0:
        return {
            "compulsory_fraction": compulsory_fraction,
            "median_distance": 0.0,
            "p90_distance": 0.0,
            "knee_lines": 1,
        }
    floor_mr = compulsory_fraction
    knee = 1
    while True:
        mr = (int(cold_mask.sum()) + int((warm > knee).sum())) / n
        if mr <= floor_mr + 0.01 or knee > int(warm.max()):
            break
        knee *= 2
    return {
        "compulsory_fraction": compulsory_fraction,
        "median_distance": float(np.median(warm)),
        "p90_distance": float(np.percentile(warm, 90)),
        "knee_lines": knee,
    }
