"""Population-based multi-objective searchers (ask/tell protocol).

A :class:`Searcher` proposes batches of configurations (``ask``) and
receives their objective vectors back (``tell``); the generation loop,
evaluation batching, checkpointing and cancellation all live in
:mod:`repro.moo.driver`, so every searcher is a pure, deterministic
strategy object.  Two evolutionary searchers ship here:

* :class:`NSGA2Searcher` -- the classic non-dominated-sort +
  crowding-distance genetic algorithm (Deb et al.), operating on the
  axis-index genomes of :class:`~repro.moo.grammar.ConfigGrammar`;
* :class:`GrammaticalEvolutionSearcher` -- evolves redundant integer
  genomes (longer than the grammar, with codon wrapping) mapped through
  the grammar, following the L1-cache GE line of work in PAPERS.md.

Both are registered under the ``searcher`` registry kind, so third-party
strategies drop in exactly like backends do.  All randomness flows through
one ``random.Random(seed)`` and all orderings are derived from
configuration keys -- never from hash order -- so a fixed seed reproduces
the identical search under any evaluation parallelism.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.pareto import dominates
from repro.moo.archive import crowding_distances
from repro.moo.grammar import ConfigGrammar

__all__ = [
    "GrammaticalEvolutionSearcher",
    "NSGA2Searcher",
    "Searcher",
    "fast_nondominated_sort",
]

Point = Tuple[float, ...]


def fast_nondominated_sort(vectors: Sequence[Point]) -> List[List[int]]:
    """Indices grouped into Pareto fronts (rank 0 first), NSGA-II style."""
    count = len(vectors)
    dominated_by: List[List[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: List[List[int]] = [[]]
    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            if dominates(vectors[i], vectors[j]):
                dominated_by[i].append(j)
            elif dominates(vectors[j], vectors[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


def _config_key(config: CacheConfig) -> Tuple[int, int, int, int]:
    return (config.size, config.line_size, config.tiling, config.ways)


class Searcher(abc.ABC):
    """The ask/tell strategy protocol every searcher implements.

    Lifecycle: one :meth:`setup` call binding the search space and budget,
    then alternating :meth:`ask` (a batch of configurations to evaluate;
    empty means the searcher is finished) and :meth:`tell` (the objective
    vectors of the *unique* configurations from the last ask, in canonical
    config order).  Searchers must be deterministic functions of
    ``(space, population, generations, seed, seeds)`` and the told
    fitness values.
    """

    #: Registry name; subclasses override.
    name = "searcher"

    @abc.abstractmethod
    def setup(
        self,
        space: Sequence[CacheConfig],
        *,
        population: int,
        generations: int,
        seed: int = 0,
        seeds: Sequence[CacheConfig] = (),
    ) -> None:
        """Bind the search space and budget before the first ask."""

    @abc.abstractmethod
    def ask(self) -> List[CacheConfig]:
        """The next batch of configurations to evaluate ([] = finished)."""

    @abc.abstractmethod
    def tell(self, results: Sequence[Tuple[CacheConfig, Point]]) -> None:
        """Deliver objective vectors for the last ask's configurations."""


class _RankedSelection:
    """Shared NSGA-II ranking machinery over (item, vector) populations."""

    @staticmethod
    def select(
        items: Sequence,
        vectors: Sequence[Point],
        count: int,
        tie_key,
    ) -> Tuple[List, Dict[int, Tuple[int, float]]]:
        """The ``count`` best items by (rank, -crowding); plus their scores.

        Returns the survivors (deterministic order) and a map from
        survivor position to its (rank, crowding distance) for tournament
        selection.  ``tie_key(item)`` breaks exact score ties.
        """
        fronts = fast_nondominated_sort(vectors)
        chosen: List[Tuple[int, int, float]] = []  # (index, rank, crowding)
        for rank, front in enumerate(fronts):
            distances = crowding_distances([vectors[i] for i in front])
            ranked = sorted(
                zip(front, distances),
                key=lambda pair: (-pair[1], vectors[pair[0]], tie_key(items[pair[0]])),
            )
            for index, distance in ranked:
                chosen.append((index, rank, distance))
                if len(chosen) == count:
                    break
            if len(chosen) == count:
                break
        survivors = [items[index] for index, _, _ in chosen]
        scores = {
            position: (rank, distance)
            for position, (_, rank, distance) in enumerate(chosen)
        }
        return survivors, scores

    @staticmethod
    def tournament(
        rng: random.Random,
        survivors: Sequence,
        scores: Dict[int, Tuple[int, float]],
        tie_key,
    ):
        """Binary tournament on (rank, -crowding distance)."""
        a = rng.randrange(len(survivors))
        b = rng.randrange(len(survivors))

        def key(position: int):
            rank, distance = scores[position]
            return (rank, -distance, tie_key(survivors[position]))

        return survivors[min(a, b, key=key)]


class NSGA2Searcher(Searcher):
    """Non-dominated sorting GA with crowding distance (NSGA-II).

    Individuals are configurations encoded as axis-index genomes of the
    space's :class:`ConfigGrammar`; variation is uniform crossover plus
    per-axis random-reset mutation.  Selection is the standard (mu+lambda)
    environmental selection over parents and offspring.
    """

    name = "nsga2"

    def __init__(
        self, crossover_rate: float = 0.9, mutation_rate: Optional[float] = None
    ) -> None:
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover rate must lie in [0, 1]")
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self._rng: random.Random = random.Random(0)
        self._grammar: Optional[ConfigGrammar] = None
        self._population = 0
        self._fitness: Dict[CacheConfig, Point] = {}
        self._parents: List[CacheConfig] = []
        self._pending: List[CacheConfig] = []

    def setup(
        self,
        space: Sequence[CacheConfig],
        *,
        population: int,
        generations: int,
        seed: int = 0,
        seeds: Sequence[CacheConfig] = (),
    ) -> None:
        if population < 2:
            raise ValueError("population must be at least 2")
        space = sorted(set(space), key=_config_key)
        if not space:
            raise ValueError("cannot search an empty space")
        self._rng = random.Random(seed)
        self._grammar = ConfigGrammar.from_space(space)
        self._population = population
        self._fitness = {}
        self._parents = []
        initial = list(dict.fromkeys(seeds))[:population]
        remaining = [c for c in space if c not in set(initial)]
        while len(initial) < population and remaining:
            pick = remaining.pop(self._rng.randrange(len(remaining)))
            initial.append(pick)
        self._pending = initial

    def ask(self) -> List[CacheConfig]:
        return list(self._pending)

    def tell(self, results: Sequence[Tuple[CacheConfig, Point]]) -> None:
        for config, vector in results:
            self._fitness[config] = tuple(vector)
        pool = [
            c
            for c in dict.fromkeys(self._parents + self._pending)
            if c in self._fitness
        ]
        if not pool:
            self._pending = []
            return
        vectors = [self._fitness[c] for c in pool]
        survivors, scores = _RankedSelection.select(
            pool, vectors, min(self._population, len(pool)), _config_key
        )
        self._parents = survivors
        self._pending = self._breed(survivors, scores)

    def _breed(self, survivors, scores) -> List[CacheConfig]:
        grammar = self._grammar
        assert grammar is not None
        rng = self._rng
        limits = grammar.axis_sizes
        mutation = (
            self.mutation_rate
            if self.mutation_rate is not None
            else 1.0 / grammar.length
        )
        children: List[CacheConfig] = []
        while len(children) < self._population:
            mother = _RankedSelection.tournament(rng, survivors, scores, _config_key)
            father = _RankedSelection.tournament(rng, survivors, scores, _config_key)
            genome_a = list(grammar.encode(mother))
            genome_b = list(grammar.encode(father))
            child = list(genome_a)
            if rng.random() < self.crossover_rate:
                child = [
                    genome_b[i] if rng.random() < 0.5 else genome_a[i]
                    for i in range(len(genome_a))
                ]
            for position in range(len(child)):
                if rng.random() < mutation:
                    child[position] = rng.randrange(limits[position])
            children.append(grammar.decode(child))
        return children


class GrammaticalEvolutionSearcher(Searcher):
    """Grammatical evolution over redundant, wrapping integer genomes.

    Genomes carry twice as many codons as the grammar has axes, decoded
    with wrapping -- the neutral redundancy that gives GE its smooth
    search surface.  Environmental selection reuses the NSGA-II ranking
    on decoded phenotype fitness; variation is one-point crossover plus
    per-codon reset mutation.
    """

    name = "ge"

    def __init__(
        self,
        genome_length: int = 8,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.1,
    ) -> None:
        if genome_length < 4:
            raise ValueError("genome length must be at least 4")
        self.genome_length = genome_length
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self._rng: random.Random = random.Random(0)
        self._grammar: Optional[ConfigGrammar] = None
        self._population = 0
        self._fitness: Dict[CacheConfig, Point] = {}
        self._parents: List[Tuple[int, ...]] = []
        self._pending: List[Tuple[int, ...]] = []

    def setup(
        self,
        space: Sequence[CacheConfig],
        *,
        population: int,
        generations: int,
        seed: int = 0,
        seeds: Sequence[CacheConfig] = (),
    ) -> None:
        if population < 2:
            raise ValueError("population must be at least 2")
        space = sorted(set(space), key=_config_key)
        if not space:
            raise ValueError("cannot search an empty space")
        self._rng = random.Random(seed)
        self._grammar = ConfigGrammar.from_space(space)
        self._population = population
        self._fitness = {}
        self._parents = []
        genomes: List[Tuple[int, ...]] = []
        for config in dict.fromkeys(seeds):
            base = self._grammar.encode(config)
            padded = tuple(base[i % len(base)] for i in range(self.genome_length))
            genomes.append(padded)
            if len(genomes) == population:
                break
        while len(genomes) < population:
            genomes.append(self._grammar.random_genome(self._rng, self.genome_length))
        self._pending = genomes

    def _decode(self, genome: Tuple[int, ...]) -> CacheConfig:
        assert self._grammar is not None
        return self._grammar.decode(genome)

    def ask(self) -> List[CacheConfig]:
        return [self._decode(genome) for genome in self._pending]

    def tell(self, results: Sequence[Tuple[CacheConfig, Point]]) -> None:
        for config, vector in results:
            self._fitness[config] = tuple(vector)
        pool = list(dict.fromkeys(self._parents + self._pending))
        scored = [g for g in pool if self._decode(g) in self._fitness]
        if not scored:
            self._pending = []
            return
        vectors = [self._fitness[self._decode(g)] for g in scored]
        survivors, scores = _RankedSelection.select(
            scored, vectors, min(self._population, len(scored)), tuple
        )
        self._parents = survivors
        self._pending = self._breed(survivors, scores)

    def _breed(self, survivors, scores) -> List[Tuple[int, ...]]:
        grammar = self._grammar
        assert grammar is not None
        rng = self._rng
        limits = grammar.axis_sizes
        children: List[Tuple[int, ...]] = []
        while len(children) < self._population:
            mother = _RankedSelection.tournament(rng, survivors, scores, tuple)
            father = _RankedSelection.tournament(rng, survivors, scores, tuple)
            child = list(mother)
            if rng.random() < self.crossover_rate:
                cut = rng.randrange(1, self.genome_length)
                child = list(mother[:cut]) + list(father[cut:])
            for position in range(len(child)):
                if rng.random() < self.mutation_rate:
                    child[position] = rng.randrange(limits[position % len(limits)])
            children.append(tuple(child))
        return children
