"""The elitist non-dominated archive behind every search.

:class:`FrontArchive` accumulates the best trade-off points seen so far:
estimates are admitted only while non-dominated, equal-objective duplicates
collapse to the smallest configuration, and when the archive outgrows its
capacity the most crowded interior points are pruned first (objective-space
extremes are never dropped).  The archive is a pure function of the *set*
of estimates fed to it, so serial and parallel searches agree bit for bit.

Hypervolume is tracked against a fixed reference point over the *complete*
non-dominated point set (including points later pruned from the bounded
estimate archive), which makes the per-generation hypervolume series
exactly monotone for an elitist search -- the property the streaming
``repro.front/1`` events advertise and CI asserts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import PerformanceEstimate
from repro.core.pareto import dominates, hypervolume, pareto_points
from repro.moo.objectives import objective_vector, validate_objectives

__all__ = ["FRONT_SCHEMA", "FrontArchive", "crowding_distances"]

#: Schema tag of streamed front events and persisted front manifests.
FRONT_SCHEMA = "repro.front/1"

Point = Tuple[float, ...]


def crowding_distances(vectors: Sequence[Point]) -> List[float]:
    """NSGA-II crowding distance of each vector within its set.

    Boundary points (per-objective extremes) get ``inf``; interior points
    get the normalised side length of the cuboid spanned by their
    neighbours.  Deterministic: ties in an objective are broken by the
    full vector, so equal inputs always produce equal outputs.
    """
    count = len(vectors)
    if count == 0:
        return []
    if count <= 2:
        return [float("inf")] * count
    distances = [0.0] * count
    width = len(vectors[0])
    for axis in range(width):
        order = sorted(range(count), key=lambda i: (vectors[i][axis], vectors[i]))
        low = vectors[order[0]][axis]
        high = vectors[order[-1]][axis]
        span_width = high - low
        distances[order[0]] = float("inf")
        distances[order[-1]] = float("inf")
        if span_width <= 0:
            continue
        for position in range(1, count - 1):
            if distances[order[position]] == float("inf"):
                continue
            gap = (
                vectors[order[position + 1]][axis]
                - vectors[order[position - 1]][axis]
            )
            distances[order[position]] += gap / span_width
    return distances


def _config_key(estimate: PerformanceEstimate) -> Tuple[int, int, int, int]:
    config = estimate.config
    return (config.size, config.line_size, config.tiling, config.ways)


class FrontArchive:
    """Bounded elitist non-dominated archive with generation snapshots."""

    def __init__(
        self,
        objectives: Sequence[str] = ("cycles", "energy"),
        capacity: int = 128,
        reference: Optional[Sequence[float]] = None,
    ) -> None:
        self.objectives = validate_objectives(objectives)
        if capacity < 4:
            raise ValueError("archive capacity must be at least 4")
        self.capacity = capacity
        self._reference: Optional[Point] = (
            tuple(float(v) for v in reference) if reference is not None else None
        )
        if self._reference is not None and len(self._reference) != len(self.objectives):
            raise ValueError("reference dimensionality does not match objectives")
        # (vector, estimate), non-dominated, sorted by (vector, config key).
        self._entries: List[Tuple[Point, PerformanceEstimate]] = []
        # The complete non-dominated point set ever seen (vectors only);
        # basis of the exact, monotone hypervolume series.
        self._points: List[Point] = []
        self.snapshots: List[Dict[str, Any]] = []

    @property
    def reference(self) -> Optional[Point]:
        """The fixed hypervolume reference point (``None`` until set)."""
        return self._reference

    def set_reference(self, reference: Sequence[float]) -> None:
        """Pin the reference; it may be set once and never changed."""
        candidate = tuple(float(v) for v in reference)
        if len(candidate) != len(self.objectives):
            raise ValueError("reference dimensionality does not match objectives")
        if self._reference is not None and self._reference != candidate:
            raise ValueError("hypervolume reference is fixed once set")
        self._reference = candidate

    def __len__(self) -> int:
        return len(self._entries)

    def vector_of(self, estimate: PerformanceEstimate) -> Point:
        """The archive's objective vector for one estimate."""
        return objective_vector(estimate, self.objectives)

    def add(self, estimates: Iterable[PerformanceEstimate]) -> int:
        """Merge estimates into the archive; returns how many were admitted.

        Admission recomputes the non-dominated set over old and new entries
        together, dedupes equal objective vectors onto the smallest
        configuration, and prunes to capacity by crowding distance.
        """
        candidates = list(self._entries)
        fresh = 0
        for estimate in estimates:
            vector = self.vector_of(estimate)
            candidates.append((vector, estimate))
            self._points.append(vector)
        # Dedupe equal vectors onto the deterministically smallest config.
        by_vector: Dict[Point, PerformanceEstimate] = {}
        for vector, estimate in candidates:
            kept = by_vector.get(vector)
            if kept is None or _config_key(estimate) < _config_key(kept):
                by_vector[vector] = estimate
        vectors = sorted(by_vector)
        front = [
            (v, by_vector[v])
            for v in vectors
            if not any(dominates(other, v) for other in vectors if other != v)
        ]
        if len(front) > self.capacity:
            front = self._prune(front)
        previous = {id(est) for _, est in self._entries}
        fresh = sum(1 for _, est in front if id(est) not in previous)
        self._entries = front
        self._points = pareto_points(self._points)
        return fresh

    def _prune(self, front: List[Tuple[Point, PerformanceEstimate]]):
        """Drop the most crowded interior points until capacity fits."""
        entries = list(front)
        while len(entries) > self.capacity:
            distances = crowding_distances([vector for vector, _ in entries])
            victim = min(
                range(len(entries)),
                key=lambda i: (distances[i], entries[i][0], _config_key(entries[i][1])),
            )
            del entries[victim]
        return entries

    def estimates(self) -> List[PerformanceEstimate]:
        """Archive members, deterministically ordered by objective vector."""
        return [estimate for _, estimate in self._entries]

    def points(self) -> List[Point]:
        """Objective vectors of the archive members, in archive order."""
        return [vector for vector, _ in self._entries]

    def hypervolume(self) -> float:
        """Exact hypervolume of everything non-dominated seen so far."""
        if self._reference is None:
            raise ValueError("hypervolume needs a reference point")
        if not self._points:
            return 0.0
        return hypervolume(self._points, self._reference)

    def front_doc(self) -> List[Dict[str, Any]]:
        """JSON-compatible description of the archive members."""
        doc = []
        for vector, estimate in self._entries:
            config = estimate.config
            doc.append(
                {
                    "config": [config.size, config.line_size, config.ways, config.tiling],
                    "label": config.label(full=True),
                    "objectives": {
                        name: value for name, value in zip(self.objectives, vector)
                    },
                }
            )
        return doc

    def record_generation(self, generation: int, evaluations: int) -> Dict[str, Any]:
        """Snapshot the archive as one ``repro.front/1`` generation event."""
        event = {
            "schema": FRONT_SCHEMA,
            "event": "front",
            "generation": generation,
            "evaluations": evaluations,
            "archive_size": len(self._entries),
            "objectives": list(self.objectives),
            "reference": list(self._reference) if self._reference else None,
            "hypervolume": self.hypervolume() if self._reference else None,
            "points": self.front_doc(),
        }
        self.snapshots.append(event)
        return event
