"""Analytic seeding: start the population near the front, for free.

The paper's Section 3 analytic model scores a configuration in closed
form, and its minimum-cache bound names the smallest cache that stops a
kernel thrashing at each line size.  Seeding the initial population with
(a) the analytic Pareto front over the search space and (b) the smallest
in-space configuration at or above the min-cache bound per line size
means most generations start within mutation distance of the true front
-- without a single simulator call.

Seeding is best-effort by design: trace workloads have no kernel, so they
simply seed nothing and the searcher falls back to its random
initialisation.
"""

from __future__ import annotations

import logging
from typing import Any, List, Sequence

from repro.core.config import CacheConfig
from repro.core.pareto import pareto_points
from repro.moo.objectives import objective_vector

__all__ = ["analytic_seeds"]

logger = logging.getLogger(__name__)


def _config_key(config: CacheConfig):
    return (config.size, config.line_size, config.tiling, config.ways)


def analytic_seeds(
    evaluator: Any,
    space: Sequence[CacheConfig],
    objectives: Sequence[str] = ("cycles", "energy"),
    limit: int = 32,
) -> List[CacheConfig]:
    """Seed configurations for ``space``, cheapest model first.

    Returns the analytic-front members plus the per-line-size min-cache
    bound configurations, deduplicated in that order and truncated to
    ``limit``.  Empty when the workload carries no loop-nest kernel.
    """
    workload = getattr(evaluator, "workload", None)
    kernel = getattr(workload, "kernel", None)
    if kernel is None:
        return []
    from repro.core.analytic import AnalyticExplorer

    explorer = AnalyticExplorer(
        kernel, energy_model=getattr(evaluator, "energy_model", None)
    )
    ordered = sorted(set(space), key=_config_key)
    scored = []
    for config in ordered:
        try:
            estimate = explorer.evaluate(config)
        except ValueError:
            continue
        scored.append((config, objective_vector(estimate, objectives)))
    seeds: List[CacheConfig] = []
    if scored:
        front = set(pareto_points([vector for _, vector in scored]))
        seeds.extend(config for config, vector in scored if vector in front)
    # The paper's min-cache bound: the smallest in-space configuration at
    # each line size that the analytic model says will not thrash.
    for line in sorted({c.line_size for c in ordered}):
        try:
            bound = kernel.min_cache_size(line)
        except (TypeError, ValueError):
            continue
        fitting = [c for c in ordered if c.line_size == line and c.size >= bound]
        if fitting:
            seeds.append(fitting[0])
    unique = list(dict.fromkeys(seeds))[:limit]
    logger.info(
        "analytic seeding: %d seeds for a %d-point space", len(unique), len(ordered)
    )
    return unique
