"""Objective vectors for multi-objective search.

Search operates on plain minimisation tuples extracted from
:class:`~repro.core.metrics.PerformanceEstimate` records: execution time
(``cycles``), energy (``energy_nj``) and silicon area (the tag+data+valid
bit count of :func:`~repro.energy.area.cache_area_bits`).  Keeping the
mapping in one place means the archive, the searchers and the service all
agree on what a point *is* -- and adding an objective (leakage, latency
percentiles, ...) is one entry here, not a change to every searcher.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.metrics import PerformanceEstimate
from repro.energy.area import cache_area_bits

__all__ = ["OBJECTIVES", "objective_vector", "reference_point", "validate_objectives"]

#: The objectives the subsystem knows how to extract, in canonical order.
OBJECTIVES: Tuple[str, ...] = ("cycles", "energy", "area")


def validate_objectives(objectives: Sequence[str]) -> Tuple[str, ...]:
    """Normalise and validate an objective-name list (1-3 known names)."""
    names = tuple(objectives)
    if not names:
        raise ValueError("at least one objective is required")
    if len(names) != len(set(names)):
        raise ValueError(f"duplicate objectives in {names!r}")
    unknown = [name for name in names if name not in OBJECTIVES]
    if unknown:
        raise ValueError(
            f"unknown objectives {unknown!r}; choose from {list(OBJECTIVES)}"
        )
    if len(names) > 3:
        raise ValueError("at most three objectives are supported (exact hypervolume)")
    return names


def objective_vector(
    estimate: PerformanceEstimate, objectives: Sequence[str] = ("cycles", "energy")
) -> Tuple[float, ...]:
    """The minimisation tuple of ``estimate`` under the named objectives."""
    values = []
    for name in objectives:
        if name == "cycles":
            values.append(float(estimate.cycles))
        elif name == "energy":
            values.append(float(estimate.energy_nj))
        elif name == "area":
            config = estimate.config
            values.append(
                float(cache_area_bits(config.size, config.line_size, config.ways))
            )
        else:
            raise ValueError(
                f"unknown objective {name!r}; choose from {list(OBJECTIVES)}"
            )
    return tuple(values)


def reference_point(
    vectors: Sequence[Sequence[float]], margin: float = 1.05
) -> Tuple[float, ...]:
    """A fixed hypervolume reference: the per-objective maximum plus margin.

    Derived once (from the first generation's evaluations) and then held
    fixed, so the hypervolume series is comparable across generations and
    monotone under an elitist archive.  A zero-valued axis still gets a
    strictly positive reference so points on it can contribute volume.
    """
    if not vectors:
        raise ValueError("cannot derive a reference from no points")
    width = len(vectors[0])
    if any(len(v) != width for v in vectors):
        raise ValueError("objective vectors differ in length")
    reference = []
    for axis in range(width):
        worst = max(float(v[axis]) for v in vectors)
        reference.append(worst * margin if worst > 0 else 1.0)
    return tuple(reference)
