"""Integer-genome to cache-configuration grammar.

Grammatical evolution evolves flat integer genomes; this module maps them
onto valid :class:`~repro.core.config.CacheConfig` points.  The grammar is
a sequence of *axes* (cache size, line size, associativity, tiling -- and,
when hierarchy/victim/prefetch knobs land, more), each with its candidate
value list derived from the search space.  Decoding consumes one codon per
axis modulo the *feasible* choices at that derivation step, so every
genome decodes to a structurally valid configuration: line size never
exceeds cache size, associativity never exceeds the line count, tiling
never exceeds the line count.  Codons wrap when the genome is shorter than
the axis list, the classic GE trick that keeps genome length independent
of grammar depth.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from repro.core.config import CacheConfig

__all__ = ["ConfigGrammar"]


def _axis(values: Iterable[int], label: str) -> Tuple[int, ...]:
    axis = tuple(sorted(set(int(v) for v in values)))
    if not axis:
        raise ValueError(f"grammar axis {label!r} has no values")
    return axis


class ConfigGrammar:
    """Maps integer genomes onto the (size, line, ways, tiling) axes."""

    def __init__(
        self,
        sizes: Iterable[int],
        line_sizes: Iterable[int],
        ways: Iterable[int] = (1,),
        tilings: Iterable[int] = (1,),
    ) -> None:
        self.sizes = _axis(sizes, "sizes")
        self.line_sizes = _axis(line_sizes, "line_sizes")
        self.ways = _axis(ways, "ways")
        self.tilings = _axis(tilings, "tilings")
        if min(self.line_sizes) > min(self.sizes):
            raise ValueError("smallest line size exceeds smallest cache size")

    @classmethod
    def from_space(cls, configs: Iterable[CacheConfig]) -> "ConfigGrammar":
        """Derive the axes from an existing configuration space."""
        configs = list(configs)
        if not configs:
            raise ValueError("cannot derive a grammar from an empty space")
        return cls(
            sizes=(c.size for c in configs),
            line_sizes=(c.line_size for c in configs),
            ways=(c.ways for c in configs),
            tilings=(c.tiling for c in configs),
        )

    @property
    def length(self) -> int:
        """Codons consumed per derivation (one per axis)."""
        return 4

    @property
    def axis_sizes(self) -> Tuple[int, ...]:
        """Choice counts per axis; the codon value range for mutation."""
        return (
            len(self.sizes),
            len(self.line_sizes),
            len(self.ways),
            len(self.tilings),
        )

    def _feasible(self, size: int, line: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        num_lines = size // line
        ways_pool = tuple(w for w in self.ways if w <= num_lines) or (1,)
        tiling_pool = tuple(t for t in self.tilings if t <= num_lines) or (1,)
        return ways_pool, tiling_pool

    def decode(self, genome: Sequence[int]) -> CacheConfig:
        """Derive a valid configuration from an integer genome (wrapping)."""
        if not genome:
            raise ValueError("cannot decode an empty genome")

        def codon(index: int) -> int:
            return int(genome[index % len(genome)])

        size = self.sizes[codon(0) % len(self.sizes)]
        line_pool = tuple(l for l in self.line_sizes if l <= size)
        line = line_pool[codon(1) % len(line_pool)]
        ways_pool, tiling_pool = self._feasible(size, line)
        ways = ways_pool[codon(2) % len(ways_pool)]
        tiling = tiling_pool[codon(3) % len(tiling_pool)]
        return CacheConfig(size, line, ways, tiling)

    def encode(self, config: CacheConfig) -> Tuple[int, ...]:
        """A genome that decodes back to ``config`` (for seeding).

        Axis values missing from the grammar snap to the nearest feasible
        choice, so encoding never fails; ``decode(encode(c)) == c`` holds
        whenever ``c`` lies on the grammar's axes.
        """

        def nearest(pool: Sequence[int], value: int) -> int:
            return min(
                range(len(pool)), key=lambda i: (abs(pool[i] - value), pool[i])
            )

        size_idx = nearest(self.sizes, config.size)
        size = self.sizes[size_idx]
        line_pool = tuple(l for l in self.line_sizes if l <= size)
        line_idx = nearest(line_pool, config.line_size)
        line = line_pool[line_idx]
        ways_pool, tiling_pool = self._feasible(size, line)
        return (
            size_idx,
            line_idx,
            nearest(ways_pool, config.ways),
            nearest(tiling_pool, config.tiling),
        )

    def random_genome(self, rng: random.Random, length: int = 0) -> Tuple[int, ...]:
        """A uniform random genome (default length: one codon per axis)."""
        length = length or self.length
        limits = self.axis_sizes
        return tuple(
            rng.randrange(limits[i % len(limits)]) for i in range(length)
        )

    def configs(self) -> List[CacheConfig]:
        """The full product space the grammar can derive, canonical order."""
        result = []
        for size in self.sizes:
            for line in self.line_sizes:
                if line > size:
                    continue
                ways_pool, tiling_pool = self._feasible(size, line)
                for tiling in tiling_pool:
                    for ways in ways_pool:
                        result.append(CacheConfig(size, line, ways, tiling))
        return sorted(result, key=lambda c: (c.size, c.line_size, c.tiling, c.ways))
