"""Classic single-objective heuristics, now living in the search subsystem.

The exact greedy coordinate-descent and bound-pruned sweep that used to be
``repro.core.search`` (which now re-exports them behind
``DeprecationWarning`` shims), plus :class:`Searcher` adapters so both
strategies are first-class citizens of the ``searcher`` registry kind and
show up in ``repro plugins`` alongside NSGA-II and grammatical evolution.

The functional entry points (:func:`greedy_descent`,
:func:`pruned_min_energy`) are byte-for-byte the historical algorithms;
the adapters re-express them in the batch ask/tell protocol so the moo
driver can run them with deduplicated, store-deduplicated generations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig, powers_of_two
from repro.core.metrics import PerformanceEstimate

__all__ = [
    "GreedyDescentSearcher",
    "PrunedSweepSearcher",
    "greedy_descent",
    "pruned_min_energy",
]

Point = Tuple[float, ...]
EvaluatorFn = Callable[[CacheConfig], PerformanceEstimate]


def _as_callable(evaluator: Any) -> EvaluatorFn:
    """Accept engine evaluators (and explorers) anywhere a callable works."""
    evaluate = getattr(evaluator, "evaluate", None)
    if callable(evaluate):
        return evaluate
    return evaluator


def _candidate_values(
    kind: str,
    config: CacheConfig,
    sizes: Sequence[int],
    line_sizes: Sequence[int],
    ways: Sequence[int],
    tilings: Sequence[int],
) -> List[CacheConfig]:
    candidates = []
    if kind == "size":
        pool = [CacheConfig(v, config.line_size, config.ways, config.tiling)
                for v in sizes if v >= config.line_size * config.ways]
    elif kind == "line":
        pool = [CacheConfig(config.size, v, config.ways, config.tiling)
                for v in line_sizes if v * config.ways <= config.size]
    elif kind == "ways":
        pool = [CacheConfig(config.size, config.line_size, v, config.tiling)
                for v in ways if v * config.line_size <= config.size]
    else:
        pool = [CacheConfig(config.size, config.line_size, config.ways, v)
                for v in tilings]
    for candidate in pool:
        try:
            candidates.append(candidate)
        except ValueError:
            continue
    return candidates


def greedy_descent(
    evaluator: Any,
    objective: str = "energy",
    seed: Optional[CacheConfig] = None,
    sizes: Sequence[int] = powers_of_two(16, 1024),
    line_sizes: Sequence[int] = (4, 8, 16, 32, 64),
    ways: Sequence[int] = (1, 2, 4, 8),
    tilings: Sequence[int] = (1, 2, 4, 8),
    max_rounds: int = 8,
):
    """Coordinate-descent search for the best configuration.

    ``objective`` is ``"energy"`` or ``"cycles"``.  Finds a local optimum
    of the design space; on the bundled kernels' well-behaved surfaces it
    reaches the global optimum with ~10x fewer evaluations (measured by
    the search ablation bench).
    """
    from repro.core.search import SearchOutcome

    if objective not in ("energy", "cycles"):
        raise ValueError("objective must be 'energy' or 'cycles'")
    key = (
        (lambda e: (e.energy_nj, e.cycles))
        if objective == "energy"
        else (lambda e: (e.cycles, e.energy_nj))
    )
    if seed is None:
        seed = CacheConfig(sizes[len(sizes) // 2], line_sizes[0])
    evaluate_fn = _as_callable(evaluator)
    cache: dict = {}
    visited: List[CacheConfig] = []

    def evaluate(config: CacheConfig) -> PerformanceEstimate:
        if config not in cache:
            cache[config] = evaluate_fn(config)
            visited.append(config)
        return cache[config]

    best = evaluate(seed)
    for _ in range(max_rounds):
        improved = False
        for kind in ("size", "line", "ways", "tiling"):
            candidates = _candidate_values(
                kind, best.config, sizes, line_sizes, ways, tilings
            )
            for candidate in candidates:
                estimate = evaluate(candidate)
                if key(estimate) < key(best):
                    best = estimate
                    improved = True
        if not improved:
            break
    return SearchOutcome(
        best=best, evaluations=len(visited), visited=tuple(visited)
    )


def pruned_min_energy(
    evaluator: Any,
    configs: Sequence[CacheConfig],
    hit_energy_bound: Callable[[CacheConfig], float],
):
    """Exhaustive minimum-energy sweep with sound lower-bound pruning.

    ``hit_energy_bound(config)`` must be a true lower bound on the total
    energy of ``config`` (the all-hit energy ``events * E_hit`` is one:
    misses only add energy).  Configurations whose bound exceeds the best
    total seen are skipped without evaluation, preserving optimality.
    """
    from repro.core.search import SearchOutcome

    best: Optional[PerformanceEstimate] = None
    visited: List[CacheConfig] = []
    evaluate_fn = _as_callable(evaluator)
    ordered = sorted(configs, key=lambda c: (c.size, c.line_size, c.tiling, c.ways))
    for config in ordered:
        if best is not None and hit_energy_bound(config) > best.energy_nj:
            continue
        estimate = evaluate_fn(config)
        visited.append(config)
        if best is None or (estimate.energy_nj, estimate.cycles) < (
            best.energy_nj,
            best.cycles,
        ):
            best = estimate
    if best is None:
        raise ValueError("no configurations to search")
    return SearchOutcome(
        best=best, evaluations=len(visited), visited=tuple(visited)
    )


def _config_key(config: CacheConfig) -> Tuple[int, int, int, int]:
    return (config.size, config.line_size, config.tiling, config.ways)


class GreedyDescentSearcher:
    """Batch coordinate descent expressed in the ask/tell protocol.

    Each generation asks for every one-axis neighbour of the incumbent
    best (minimising the objective vector lexicographically, so the first
    objective dominates) and moves to the best improvement; it finishes --
    ``ask`` returns ``[]`` -- once a full round improves nothing.
    """

    name = "greedy"

    def __init__(self) -> None:
        self._space: List[CacheConfig] = []
        self._axes: Dict[str, Tuple[int, ...]] = {}
        self._fitness: Dict[CacheConfig, Point] = {}
        self._best: Optional[CacheConfig] = None
        self._pending: List[CacheConfig] = []
        self._done = False

    def setup(
        self,
        space: Sequence[CacheConfig],
        *,
        population: int,
        generations: int,
        seed: int = 0,
        seeds: Sequence[CacheConfig] = (),
    ) -> None:
        self._space = sorted(set(space), key=_config_key)
        if not self._space:
            raise ValueError("cannot search an empty space")
        self._axes = {
            "sizes": tuple(sorted({c.size for c in self._space})),
            "line_sizes": tuple(sorted({c.line_size for c in self._space})),
            "ways": tuple(sorted({c.ways for c in self._space})),
            "tilings": tuple(sorted({c.tiling for c in self._space})),
        }
        self._fitness = {}
        self._done = False
        self._best = None
        sizes = self._axes["sizes"]
        start = CacheConfig(
            sizes[len(sizes) // 2],
            self._axes["line_sizes"][0],
            self._axes["ways"][0],
            self._axes["tilings"][0],
        )
        opening = list(dict.fromkeys(list(seeds) + [start]))
        self._pending = opening

    def _neighbours(self, config: CacheConfig) -> List[CacheConfig]:
        axes = self._axes
        pool: List[CacheConfig] = []
        for kind in ("size", "line", "ways", "tiling"):
            pool.extend(
                _candidate_values(
                    kind,
                    config,
                    axes["sizes"],
                    axes["line_sizes"],
                    axes["ways"],
                    axes["tilings"],
                )
            )
        return list(dict.fromkeys(pool))

    def ask(self) -> List[CacheConfig]:
        if self._done:
            return []
        return list(self._pending)

    def tell(self, results: Sequence[Tuple[CacheConfig, Point]]) -> None:
        for config, vector in results:
            self._fitness[config] = tuple(vector)
        scored = [c for c in self._fitness]
        if not scored:
            self._done = True
            return
        incumbent = self._best
        best = min(scored, key=lambda c: (self._fitness[c], _config_key(c)))
        if incumbent is not None and self._fitness[best] >= self._fitness[incumbent]:
            self._done = True
            return
        self._best = best
        self._pending = [
            c for c in self._neighbours(best) if c not in self._fitness
        ]
        if not self._pending:
            self._done = True


class PrunedSweepSearcher:
    """The exhaustive sweep as a searcher: canonical order, batched asks.

    Without an energy lower bound available through the protocol this
    enumerates the space in canonical order, one population-sized batch
    per generation -- the baseline every pruned or evolutionary strategy
    is measured against.  The historical bound-pruned variant remains
    available as :func:`pruned_min_energy`.
    """

    name = "pruned"

    def __init__(self) -> None:
        self._ordered: List[CacheConfig] = []
        self._cursor = 0
        self._batch = 0

    def setup(
        self,
        space: Sequence[CacheConfig],
        *,
        population: int,
        generations: int,
        seed: int = 0,
        seeds: Sequence[CacheConfig] = (),
    ) -> None:
        self._ordered = sorted(set(space), key=_config_key)
        if not self._ordered:
            raise ValueError("cannot search an empty space")
        self._cursor = 0
        self._batch = max(1, population)

    def ask(self) -> List[CacheConfig]:
        return self._ordered[self._cursor:self._cursor + self._batch]

    def tell(self, results: Sequence[Tuple[CacheConfig, Point]]) -> None:
        self._cursor += self._batch
