"""repro.moo: multi-objective memory-configuration search.

Exhaustive grids stop scaling the moment the design space grows past the
paper's few hundred points; this package finds the energy/time/area
Pareto front while evaluating only a small fraction of the space.  The
pieces:

* :mod:`repro.moo.searchers` -- the ask/tell :class:`Searcher` protocol
  plus :class:`NSGA2Searcher` and :class:`GrammaticalEvolutionSearcher`,
  registered under the ``searcher`` registry kind;
* :mod:`repro.moo.heuristics` -- the classic greedy-descent and pruned
  sweep strategies, migrated from ``repro.core.search``;
* :mod:`repro.moo.grammar` -- the integer-genome -> configuration
  grammar evolutionary searchers breed over;
* :mod:`repro.moo.archive` -- the bounded elitist
  :class:`FrontArchive` with generation snapshots and exact, monotone
  hypervolume tracking;
* :mod:`repro.moo.seeding` -- analytic-model + min-cache-bound initial
  populations, so searches start near the front for free;
* :mod:`repro.moo.driver` -- :func:`run_search`: the deterministic,
  resumable, cancellable generation loop every consumer (CLI, service,
  benchmarks) drives.

Quickstart::

    from repro.engine import Evaluator, KernelWorkload
    from repro.kernels import make_kernel
    from repro.moo import SearchSettings, run_search

    evaluator = Evaluator(KernelWorkload(make_kernel("matmul")), backend="onepass")
    run = run_search(
        evaluator,
        space=list(design_space(max_size=512)),
        settings=SearchSettings(searcher="nsga2", generations=12, population=16),
    )
    for estimate in run.front:
        print(estimate.config.label(full=True), estimate.cycles, estimate.energy_nj)
"""

from repro.moo.archive import FRONT_SCHEMA, FrontArchive, crowding_distances
from repro.moo.driver import (
    MOO_CHECKPOINT_SCHEMA,
    SearchCheckpoint,
    SearchRun,
    SearchSettings,
    run_search,
    search_fingerprint,
)
from repro.moo.grammar import ConfigGrammar
from repro.moo.heuristics import GreedyDescentSearcher, PrunedSweepSearcher
from repro.moo.objectives import OBJECTIVES, objective_vector, reference_point
from repro.moo.searchers import (
    GrammaticalEvolutionSearcher,
    NSGA2Searcher,
    Searcher,
    fast_nondominated_sort,
)
from repro.moo.seeding import analytic_seeds

__all__ = [
    "FRONT_SCHEMA",
    "MOO_CHECKPOINT_SCHEMA",
    "OBJECTIVES",
    "ConfigGrammar",
    "FrontArchive",
    "GrammaticalEvolutionSearcher",
    "GreedyDescentSearcher",
    "NSGA2Searcher",
    "PrunedSweepSearcher",
    "SearchCheckpoint",
    "SearchRun",
    "SearchSettings",
    "Searcher",
    "analytic_seeds",
    "crowding_distances",
    "fast_nondominated_sort",
    "objective_vector",
    "reference_point",
    "run_search",
    "search_fingerprint",
]
