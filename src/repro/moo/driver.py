"""The search driver: generations, batching, checkpoints, cancellation.

:func:`run_search` owns the generation loop so searchers stay pure
strategies.  Each generation it asks the searcher for candidates, dedupes
them into canonical order, evaluates only the cold ones through
``Evaluator.evaluate_batch`` (one grouped one-pass/store-deduplicated
batch per generation; ``jobs > 1`` fans out through
:class:`~repro.engine.parallel.ParallelSweep`), updates the
:class:`~repro.moo.archive.FrontArchive`, journals the generation and
tells the searcher its fitness vectors.

Determinism is the core contract: for a fixed seed the sequence of asked
configurations, the archive contents and the per-generation events are
identical under ``jobs=1`` and ``jobs=N``, on a clean run and on a resume
from the ``repro.moo.checkpoint/1`` journal -- the journal is a pure
evaluation cache, and "evaluations used" counts unique configurations
*requested*, not cold simulator calls, so resumed and clean runs report
the same numbers.

Cancellation follows the sweep convention: a set ``cancel_event`` raises
:class:`~repro.engine.resilience.SweepCancelledError` between generations
(and aborts a parallel in-flight generation), leaving the journal intact
so a resubmission resumes from the last complete generation.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.engine.resilience import (
    CheckpointError,
    CheckpointMismatchError,
    ResilienceOptions,
    SweepCancelledError,
    estimate_from_json,
    estimate_to_json,
    sweep_fingerprint,
)
from repro.engine.result import ExplorationResult
from repro.moo.archive import FRONT_SCHEMA, FrontArchive
from repro.moo.objectives import objective_vector, reference_point, validate_objectives
from repro.moo.seeding import analytic_seeds
from repro.moo.searchers import Searcher
from repro.obs.metrics import get_metrics
from repro.obs.spans import span

__all__ = [
    "MOO_CHECKPOINT_SCHEMA",
    "SearchCheckpoint",
    "SearchRun",
    "SearchSettings",
    "run_search",
    "search_fingerprint",
]

logger = logging.getLogger(__name__)

MOO_CHECKPOINT_SCHEMA = "repro.moo.checkpoint/1"


def _config_key(config: CacheConfig) -> Tuple[int, int, int, int]:
    return (config.size, config.line_size, config.tiling, config.ways)


def _order(configs) -> List[CacheConfig]:
    return sorted(configs, key=_config_key)


@dataclass(frozen=True)
class SearchSettings:
    """Everything that identifies one search run (and its journal)."""

    searcher: str = "nsga2"
    generations: int = 10
    population: int = 16
    seed: int = 0
    objectives: Tuple[str, ...] = ("cycles", "energy")
    archive_capacity: int = 128
    reference: Optional[Tuple[float, ...]] = None
    seed_population: bool = True

    def __post_init__(self) -> None:
        if not self.searcher or not isinstance(self.searcher, str):
            raise ValueError("searcher must be a non-empty name")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if self.population < 1:
            raise ValueError("population must be at least 1")
        if self.archive_capacity < 4:
            raise ValueError("archive capacity must be at least 4")
        object.__setattr__(self, "objectives", validate_objectives(self.objectives))
        if self.reference is not None:
            reference = tuple(float(v) for v in self.reference)
            if len(reference) != len(self.objectives):
                raise ValueError(
                    "reference dimensionality does not match objectives"
                )
            if any(v <= 0 for v in reference):
                raise ValueError("reference components must be positive")
            object.__setattr__(self, "reference", reference)

    @property
    def budget(self) -> int:
        """Nominal evaluation budget: generations x population."""
        return self.generations * self.population

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "searcher": self.searcher,
            "generations": self.generations,
            "population": self.population,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "archive_capacity": self.archive_capacity,
            "seed_population": self.seed_population,
        }
        if self.reference is not None:
            doc["reference"] = list(self.reference)
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "SearchSettings":
        if not isinstance(doc, dict):
            raise ValueError("search section must be an object")
        known = {
            "searcher",
            "generations",
            "population",
            "seed",
            "objectives",
            "archive_capacity",
            "reference",
            "seed_population",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown search fields: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for key in known:
            if key in doc:
                value = doc[key]
                if key == "objectives":
                    value = tuple(value)
                elif key == "reference" and value is not None:
                    value = tuple(value)
                kwargs[key] = value
        return cls(**kwargs)

    def canonical(self) -> str:
        """Canonical JSON (sorted keys) -- the fingerprint input."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


def search_fingerprint(
    evaluator: Any, configs: Sequence[CacheConfig], settings: SearchSettings
) -> str:
    """SHA-256 identity of one search: evaluator + space + settings."""
    digest = hashlib.sha256()
    digest.update(sweep_fingerprint(evaluator, configs).encode())
    digest.update(b"|")
    digest.update(settings.canonical().encode())
    return digest.hexdigest()


class SearchCheckpoint:
    """Append-only JSONL journal of completed search generations.

    Schema (``repro.moo.checkpoint/1``), one JSON object per line::

        {"schema": ..., "fingerprint": "<sha256>", "budget": N}
        {"generation": 0, "estimates": [{estimate...}, ...]}

    Each generation record holds the estimates *newly evaluated* that
    generation; on resume their union is a pure evaluation cache and the
    deterministic searcher replays journaled generations without touching
    a backend.  Records must be contiguous from generation 0; a torn or
    out-of-order trailing record (a kill mid-write) is dropped along with
    everything after it, exactly like sweep checkpoints.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[Any] = None

    def load(
        self, fingerprint: str
    ) -> List[List[PerformanceEstimate]]:
        """The contiguous complete generation records journaled so far."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path} is not a {MOO_CHECKPOINT_SCHEMA} journal"
            ) from exc
        if not isinstance(header, dict) or header.get("schema") != MOO_CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{self.path} is not a {MOO_CHECKPOINT_SCHEMA} journal"
            )
        if header.get("fingerprint") != fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was written by a different search "
                "(workload, backend, space or settings changed); delete it "
                "or drop --resume to start over"
            )
        records: List[List[PerformanceEstimate]] = []
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                generation = int(record["generation"])
                estimates = [
                    estimate_from_json(doc) for doc in record["estimates"]
                ]
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                logger.warning(
                    "search checkpoint %s: ignoring torn record at line %d "
                    "(and everything after it)",
                    self.path,
                    number,
                )
                break
            if generation != len(records):
                logger.warning(
                    "search checkpoint %s: generation %d out of order at "
                    "line %d; ignoring it and everything after",
                    self.path,
                    generation,
                    number,
                )
                break
            records.append(estimates)
        return records

    def open_for_append(self, fingerprint: str, fresh: bool, budget: int) -> None:
        """Truncate + header when ``fresh``, else position for append."""
        mode = "w" if fresh or not os.path.exists(self.path) else "a"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            self._write(
                {
                    "schema": MOO_CHECKPOINT_SCHEMA,
                    "fingerprint": fingerprint,
                    "budget": budget,
                }
            )

    def record_generation(
        self, generation: int, estimates: Sequence[PerformanceEstimate]
    ) -> None:
        """Append one completed generation (flushed and fsynced)."""
        if self._handle is None:
            raise RuntimeError("checkpoint is not open for append")
        self._write(
            {
                "generation": generation,
                "estimates": [estimate_to_json(e) for e in estimates],
            }
        )

    def _write(self, doc: Dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class SearchRun:
    """What one search produced, plus the cost of producing it."""

    settings: SearchSettings
    front: List[PerformanceEstimate]
    estimates: List[PerformanceEstimate]
    events: List[Dict[str, Any]] = field(default_factory=list)
    generations: int = 0
    evaluations: int = 0
    hypervolume: float = 0.0
    reference: Tuple[float, ...] = ()

    @property
    def result(self) -> ExplorationResult:
        """The final front as a standard exploration result."""
        return ExplorationResult(self.front)

    def manifest_doc(self) -> Dict[str, Any]:
        """The ``search`` section persisted in the run manifest."""
        return {
            "schema": FRONT_SCHEMA,
            "settings": self.settings.to_json(),
            "generations": self.generations,
            "evaluations": self.evaluations,
            "reference": list(self.reference),
            "hypervolume": self.hypervolume,
            "front": [
                {
                    "config": [
                        e.config.size,
                        e.config.line_size,
                        e.config.ways,
                        e.config.tiling,
                    ],
                    "label": e.config.label(full=True),
                    "objectives": {
                        name: value
                        for name, value in zip(
                            self.settings.objectives,
                            objective_vector(e, self.settings.objectives),
                        )
                    },
                }
                for e in self.front
            ],
        }


def _make_searcher(name: str) -> Searcher:
    from repro.registry import get_registry

    return get_registry().create("searcher", name)


def _admissible(evaluator: Any, configs: List[CacheConfig]) -> List[CacheConfig]:
    """Drop candidates the workload rejects (grammar products off-space)."""
    workload = getattr(evaluator, "workload", None)
    validate = getattr(workload, "validate", None)
    if not callable(validate):
        return configs
    admitted = []
    for config in configs:
        try:
            validate(config)
        except ValueError:
            continue
        admitted.append(config)
    return admitted


def _evaluate(
    evaluator: Any,
    configs: List[CacheConfig],
    jobs: int,
    cancel_event: Optional[threading.Event],
) -> List[PerformanceEstimate]:
    """One generation's cold evaluations (bit-identical serial/parallel)."""
    if not configs:
        return []
    if jobs and jobs > 1:
        from repro.engine.parallel import ParallelSweep

        resilience = (
            ResilienceOptions(cancel_event=cancel_event)
            if cancel_event is not None
            else None
        )
        return ParallelSweep(jobs=jobs, resilience=resilience).run(
            evaluator, configs
        )
    batch = getattr(evaluator, "evaluate_batch", None)
    if callable(batch):
        return batch(configs)
    return [evaluator.evaluate(config) for config in configs]


def run_search(
    evaluator: Any,
    space: Sequence[CacheConfig],
    settings: Optional[SearchSettings] = None,
    *,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    cancel_event: Optional[threading.Event] = None,
    on_generation: Optional[Callable[[Dict[str, Any], FrontArchive], None]] = None,
    searcher: Optional[Searcher] = None,
) -> SearchRun:
    """Run one multi-objective search over ``space`` and return its front.

    ``on_generation(event, archive)`` fires after every completed
    generation with the ``repro.front/1`` event just recorded -- the hook
    the serve layer uses to stream fronts and persist partial state.
    """
    settings = settings if settings is not None else SearchSettings()
    ordered_space = _order(set(space))
    if not ordered_space:
        raise ValueError("cannot search an empty configuration space")
    strategy = searcher if searcher is not None else _make_searcher(settings.searcher)
    seeds: List[CacheConfig] = []
    if settings.seed_population:
        try:
            seeds = analytic_seeds(
                evaluator, ordered_space, settings.objectives
            )
        except Exception:
            logger.warning("analytic seeding failed; starting unseeded", exc_info=True)
            seeds = []
    strategy.setup(
        ordered_space,
        population=settings.population,
        generations=settings.generations,
        seed=settings.seed,
        seeds=seeds,
    )

    journal: Optional[SearchCheckpoint] = None
    journaled_generations = 0
    evaluated: Dict[CacheConfig, PerformanceEstimate] = {}
    if checkpoint:
        fingerprint = search_fingerprint(evaluator, ordered_space, settings)
        journal = SearchCheckpoint(checkpoint)
        records: List[List[PerformanceEstimate]] = []
        if resume:
            records = journal.load(fingerprint)
        # Always rewrite: a torn trailing line must not linger mid-file.
        journal.open_for_append(fingerprint, fresh=True, budget=settings.budget)
        for generation, estimates in enumerate(records):
            journal.record_generation(generation, estimates)
            for estimate in estimates:
                evaluated[estimate.config] = estimate
        journaled_generations = len(records)
        if journaled_generations:
            logger.info(
                "search resume: %d generations (%d estimates) from %s",
                journaled_generations,
                len(evaluated),
                checkpoint,
            )

    archive = FrontArchive(
        objectives=settings.objectives,
        capacity=settings.archive_capacity,
        reference=settings.reference,
    )
    metrics = get_metrics()
    requested: set = set()
    events: List[Dict[str, Any]] = []
    generations_run = 0
    try:
        with span(
            "moo.search",
            searcher=settings.searcher,
            generations=settings.generations,
            population=settings.population,
            space=len(ordered_space),
        ):
            for generation in range(settings.generations):
                if cancel_event is not None and cancel_event.is_set():
                    raise SweepCancelledError(
                        f"search cancelled before generation {generation}",
                        done=len(requested),
                        total=settings.budget,
                    )
                asked = strategy.ask()
                if not asked:
                    break
                unique = _order(dict.fromkeys(asked))
                admitted = _admissible(evaluator, unique)
                if not admitted:
                    logger.warning(
                        "generation %d proposed no admissible configurations",
                        generation,
                    )
                    strategy.tell([])
                    continue
                missing = [c for c in admitted if c not in evaluated]
                with span(
                    "moo.generation",
                    generation=generation,
                    configs=len(admitted),
                    cold=len(missing),
                ):
                    fresh = _evaluate(evaluator, missing, jobs, cancel_event)
                for estimate in fresh:
                    evaluated[estimate.config] = estimate
                requested.update(admitted)
                if journal is not None and generation >= journaled_generations:
                    journal.record_generation(generation, fresh)
                generation_estimates = [evaluated[c] for c in admitted]
                if archive.reference is None:
                    vectors = [
                        objective_vector(e, settings.objectives)
                        for e in generation_estimates
                    ]
                    archive.set_reference(reference_point(vectors))
                archive.add(generation_estimates)
                strategy.tell(
                    [
                        (c, objective_vector(evaluated[c], settings.objectives))
                        for c in admitted
                    ]
                )
                generations_run = generation + 1
                event = archive.record_generation(
                    generation=generation, evaluations=len(requested)
                )
                events.append(event)
                metrics.counter("moo.generations").inc()
                metrics.counter("moo.evaluations").inc(len(missing))
                metrics.gauge("moo.archive_size").set(len(archive))
                if event["hypervolume"] is not None:
                    metrics.gauge("moo.hypervolume").set(event["hypervolume"])
                if on_generation is not None:
                    on_generation(event, archive)
    finally:
        if journal is not None:
            journal.close()

    front = archive.estimates()
    reference = archive.reference or ()
    hv = archive.hypervolume() if archive.reference is not None else 0.0
    logger.info(
        "search done: %s, %d generations, %d evaluations, front=%d, hv=%.6g",
        settings.searcher,
        generations_run,
        len(requested),
        len(front),
        hv,
    )
    return SearchRun(
        settings=settings,
        front=front,
        estimates=[evaluated[c] for c in _order(evaluated)],
        events=events,
        generations=generations_run,
        evaluations=len(requested),
        hypervolume=hv,
        reference=tuple(reference),
    )
