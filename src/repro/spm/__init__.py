"""Scratchpad (software-managed on-chip SRAM) substrate.

The paper builds directly on Panda, Dutt and Nicolau's local-memory
exploration [1, 2], whose central alternative to a cache is a *scratchpad*:
a software-managed on-chip SRAM holding the hottest arrays outright, with
no tags, no misses and no conflict behaviour.  This subpackage implements
that comparator so the cache-based exploration can be judged against the
design point the original work came from:

* :mod:`repro.spm.model` -- scratchpad energy/latency model (tagless array
  access on-chip; per-access off-chip cost for everything unmapped);
* :mod:`repro.spm.allocation` -- the knapsack array-to-scratchpad
  allocation maximising captured accesses under the capacity;
* :mod:`repro.spm.explorer` -- size sweep and the cache-vs-scratchpad
  comparison.
"""

from repro.spm.allocation import Allocation, allocate_arrays, array_access_counts
from repro.spm.explorer import CacheVsSpmRow, ScratchpadExplorer, compare_cache_vs_spm
from repro.spm.model import ScratchpadEstimate, ScratchpadModel

__all__ = [
    "Allocation",
    "CacheVsSpmRow",
    "ScratchpadEstimate",
    "ScratchpadExplorer",
    "ScratchpadModel",
    "allocate_arrays",
    "array_access_counts",
    "compare_cache_vs_spm",
]
