"""Scratchpad size sweep and the cache-vs-scratchpad comparison.

The question the Panda/Dutt line of work asks -- and the one this paper's
cache exploration implicitly answers the other way -- is whether a given
on-chip byte budget is better spent on a tagless scratchpad or on a cache.
:func:`compare_cache_vs_spm` runs both explorations over the same sizes
and reports the winner per budget.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import CacheConfig, powers_of_two
from repro.core.metrics import PerformanceEstimate
from repro.energy.model import EnergyModel
from repro.engine.evaluator import Evaluator
from repro.engine.workload import KernelWorkload
from repro.kernels.base import Kernel
from repro.spm.model import ScratchpadEstimate, ScratchpadModel

__all__ = ["ScratchpadExplorer", "CacheVsSpmRow", "compare_cache_vs_spm"]

logger = logging.getLogger(__name__)


class ScratchpadExplorer:
    """Sweep scratchpad capacities for one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        model: Optional[ScratchpadModel] = None,
    ) -> None:
        self.kernel = kernel
        self.model = model if model is not None else ScratchpadModel()

    def explore(self, capacities: Sequence[int]) -> List[ScratchpadEstimate]:
        """Evaluate every capacity (bytes)."""
        return [self.model.evaluate(self.kernel, c) for c in capacities]

    def min_energy(self, capacities: Sequence[int]) -> ScratchpadEstimate:
        """The capacity minimising energy."""
        estimates = self.explore(capacities)
        return min(estimates, key=lambda e: (e.energy_nj, e.cycles))


@dataclass(frozen=True)
class CacheVsSpmRow:
    """One on-chip budget: the best cache and the scratchpad, side by side."""

    budget: int
    cache: PerformanceEstimate
    spm: ScratchpadEstimate

    @property
    def energy_winner(self) -> str:
        """``"cache"`` or ``"spm"`` by total energy."""
        return "cache" if self.cache.energy_nj <= self.spm.energy_nj else "spm"

    @property
    def cycle_winner(self) -> str:
        """``"cache"`` or ``"spm"`` by cycle count."""
        return "cache" if self.cache.cycles <= self.spm.cycles else "spm"


def compare_cache_vs_spm(
    kernel: Kernel,
    budgets: Optional[Sequence[int]] = None,
    energy_model: Optional[EnergyModel] = None,
    line_sizes: Sequence[int] = (4, 8, 16, 32),
    backend: str = "fastsim",
    jobs: int = 1,
    resilience=None,
) -> List[CacheVsSpmRow]:
    """Best cache vs scratchpad at every on-chip byte budget.

    For each budget the cache side picks its best line size (direct-mapped,
    untiled -- the same footing as the tagless scratchpad); the scratchpad
    side allocates arrays optimally.  The cache side runs through
    :mod:`repro.engine`, so repeated budgets and line sizes share cached
    traces and miss vectors with any other exploration of the same kernel.
    """
    if budgets is None:
        budgets = powers_of_two(16, 1024)
    logger.info(
        "cache-vs-spm: kernel=%s budgets=%s backend=%s jobs=%d",
        kernel.name,
        list(budgets),
        backend,
        jobs,
    )
    evaluator = Evaluator(
        KernelWorkload(kernel), backend=backend, energy_model=energy_model
    )
    spm_model = ScratchpadModel(
        tech=energy_model.tech if energy_model else None,
        sram=energy_model.sram if energy_model else None,
    )
    configs = [
        CacheConfig(budget, line)
        for budget in budgets
        for line in line_sizes
        if line <= budget
    ]
    result = evaluator.sweep(configs=configs, jobs=jobs, resilience=resilience)
    rows = []
    for budget in budgets:
        candidates = [
            e for e in result.estimates if e.config.size == budget
        ]
        best_cache = min(candidates, key=lambda e: (e.energy_nj, e.cycles))
        spm = spm_model.evaluate(kernel, budget)
        rows.append(CacheVsSpmRow(budget=budget, cache=best_cache, spm=spm))
    return rows
