"""Array-to-scratchpad allocation.

Panda/Dutt/Nicolau partition a program's arrays between a scratchpad and
off-chip memory so that the most frequently accessed data lives on chip.
With per-array access counts known exactly (affine nests make them a
closed-form product of trip counts), the partitioning is a 0/1 knapsack:
maximise captured accesses subject to the scratchpad capacity.  Array
sizes here are small (bytes to kilobytes), so the classic
dynamic-programming solution over capacity is exact and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.kernels.base import Kernel
from repro.loops.ir import LoopNest

__all__ = ["Allocation", "allocate_arrays", "array_access_counts"]


def array_access_counts(nest: LoopNest) -> Dict[str, int]:
    """Exact per-array access counts of one nest execution.

    Every reference fires once per iteration, so an array's count is
    (number of references to it) x (iterations).
    """
    counts: Dict[str, int] = {decl.name: 0 for decl in nest.arrays}
    for ref in nest.refs:
        counts[ref.array] += nest.iterations
    return counts


@dataclass(frozen=True)
class Allocation:
    """Result of the knapsack: which arrays live in the scratchpad."""

    capacity: int
    mapped: Tuple[str, ...]
    mapped_bytes: int
    captured_accesses: int
    total_accesses: int

    @property
    def hit_fraction(self) -> float:
        """Fraction of accesses served by the scratchpad."""
        if self.total_accesses == 0:
            return 0.0
        return self.captured_accesses / self.total_accesses

    @property
    def utilization(self) -> float:
        """Fraction of the scratchpad capacity actually used."""
        return self.mapped_bytes / self.capacity if self.capacity else 0.0


def allocate_arrays(kernel: Kernel, capacity: int) -> Allocation:
    """Optimal 0/1 knapsack allocation of ``kernel``'s arrays.

    Maximises captured accesses under ``capacity`` bytes; ties are broken
    toward smaller footprints (leaving room is never worse).
    """
    if capacity < 0:
        raise ValueError("scratchpad capacity must be non-negative")
    nest = kernel.nest
    counts = array_access_counts(nest)
    items = [
        (decl.name, decl.size_bytes, counts[decl.name])
        for decl in nest.arrays
        if counts[decl.name] > 0
    ]
    total_accesses = sum(value for _, _, value in items)

    # DP over capacity: best[c] = (captured, -bytes_used, chosen frozenset).
    best: List[Tuple[int, int, Tuple[str, ...]]] = [(0, 0, ())] * (capacity + 1)
    for name, size, value in items:
        if size > capacity:
            continue
        for c in range(capacity, size - 1, -1):
            candidate_value = best[c - size][0] + value
            candidate_bytes = -best[c - size][1] + size
            if (candidate_value, -candidate_bytes) > (best[c][0], best[c][1]):
                best[c] = (
                    candidate_value,
                    -candidate_bytes,
                    best[c - size][2] + (name,),
                )
    captured, neg_bytes, chosen = best[capacity]
    return Allocation(
        capacity=capacity,
        mapped=tuple(sorted(chosen)),
        mapped_bytes=-neg_bytes,
        captured_accesses=captured,
        total_accesses=total_accesses,
    )
