"""Scratchpad energy and cycle model.

A scratchpad is a tagless on-chip SRAM: an access to a mapped array costs
one processor cycle and the cell-array energy of an equally sized SRAM --
no tags, no comparators, no miss machinery.  Accesses to unmapped arrays go
straight to the off-chip part, costing the paper's main-memory energy
(``Em`` per element plus the I/O-pad term for one element of traffic) and
the 4-byte-line miss latency of the Section 2.2 table (an off-chip word
access pays the latency part of a miss without any refill benefit).

The on-chip term reuses the paper's ``E_cell`` geometry with a tagless
array (ways = 1, "line" = one element), scaled by the same calibration
constant, so the cache-vs-scratchpad comparison shares every assumption
except the one under study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cycles import cycles_per_miss
from repro.energy.model import EnergyModel
from repro.energy.params import SRAMPart, TechnologyParams
from repro.kernels.base import Kernel
from repro.spm.allocation import Allocation, allocate_arrays

__all__ = ["ScratchpadEstimate", "ScratchpadModel"]


@dataclass(frozen=True)
class ScratchpadEstimate:
    """Metrics of one kernel on one scratchpad capacity."""

    capacity: int
    allocation: Allocation
    cycles: float
    energy_nj: float
    events: int

    @property
    def hit_fraction(self) -> float:
        """Fraction of accesses served on-chip."""
        return self.allocation.hit_fraction

    def __str__(self) -> str:
        return (
            f"SPM{self.capacity}: hit={self.hit_fraction:.3f} "
            f"cycles={self.cycles:.0f} energy={self.energy_nj:.0f} nJ "
            f"mapped={list(self.allocation.mapped)}"
        )


class ScratchpadModel:
    """Evaluate a kernel against a scratchpad of a given capacity."""

    def __init__(
        self,
        tech: Optional[TechnologyParams] = None,
        sram: Optional[SRAMPart] = None,
        element_bytes: int = 1,
    ) -> None:
        if element_bytes <= 0:
            raise ValueError("element width must be positive")
        self._energy = EnergyModel(tech=tech, sram=sram)
        self.element_bytes = element_bytes

    @property
    def tech(self) -> TechnologyParams:
        """Technology constants in use."""
        return self._energy.tech

    def on_chip_access_nj(self, capacity: int) -> float:
        """Energy of one scratchpad access (tagless array of ``capacity`` B)."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        # Tagless array: rows x (8 * element) cells, product = 8 * capacity.
        return self._energy.e_cell(capacity, self.element_bytes, 1)

    def off_chip_access_nj(self) -> float:
        """Energy of one off-chip element access (Em + pad traffic)."""
        width = self.element_bytes
        return self._energy.e_main(width) + self._energy.e_io(width, 0.0)

    def off_chip_access_cycles(self) -> float:
        """Latency of one off-chip element access (the miss-latency base)."""
        return cycles_per_miss(4)

    def evaluate(self, kernel: Kernel, capacity: int) -> ScratchpadEstimate:
        """Metrics of one kernel invocation with an optimal allocation.

        Per the framework's convention, totals are scaled by the paper's
        trip count (loop iterations): each iteration is charged the
        access-weighted mix of on- and off-chip costs.
        """
        allocation = allocate_arrays(kernel, capacity)
        events = kernel.nest.iterations
        hit = allocation.hit_fraction
        on_nj = self.on_chip_access_nj(capacity) if capacity else 0.0
        off_nj = self.off_chip_access_nj()
        energy = events * (hit * on_nj + (1.0 - hit) * off_nj)
        cycles = events * (hit * 1.0 + (1.0 - hit) * self.off_chip_access_cycles())
        return ScratchpadEstimate(
            capacity=capacity,
            allocation=allocation,
            cycles=cycles,
            energy_nj=energy,
            events=events,
        )
