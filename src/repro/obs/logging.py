"""Structured logging setup for the ``repro`` logger hierarchy.

Every module in the package logs through ``logging.getLogger(__name__)``
(``repro.engine.parallel``, ``repro.core.explorer``, ...); this module
configures the common ``repro`` ancestor.  Two formats are offered: a
conventional human-readable line, and :class:`JsonFormatter`, which emits
one JSON object per record (message, level, logger, timestamp, plus any
``extra`` fields) so log streams can be ingested by machines.

The CLI exposes both knobs as ``--log-level`` and ``--log-json`` on every
subcommand.  Library users who never call :func:`configure_logging` get
stdlib default behaviour (records propagate to the root logger), so
embedding applications keep full control.
"""

from __future__ import annotations

import datetime
import json
import logging
import sys
from typing import Any, Dict, Optional, TextIO, Union

__all__ = ["JsonFormatter", "configure_logging"]

#: Attributes present on every stdlib LogRecord; anything else on a record
#: came in through ``extra=`` and is included in the JSON payload.
_STDLIB_RECORD_KEYS = frozenset(
    set(vars(logging.makeLogRecord({}))) | {"message", "asctime"}
)


class JsonFormatter(logging.Formatter):
    """Format each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STDLIB_RECORD_KEYS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    level: Union[int, str] = "WARNING",
    json_format: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Attach one handler to the ``repro`` logger and set its level.

    Idempotent: re-configuring replaces the handler this function
    installed previously (marked with a private attribute) and leaves any
    user-installed handlers alone.  Returns the configured logger.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    if json_format:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    return logger
