"""The machine-readable observability report and its human rendering.

One JSON document (:data:`SCHEMA`) carries everything a run collected:
span aggregates (nested paths and the per-stage rollup), the metrics
registry snapshot, and the :class:`~repro.engine.cache.EvalCache`
counters.  The CLI writes it via ``--metrics-out FILE.json``; benchmarks
diff these documents across PRs to track where sweep time goes.

Schema (``repro.obs/1``)::

    {
      "schema": "repro.obs/1",
      "spans":  [{"path": ["sweep","evaluate","trace_gen"],
                  "name": "trace_gen", "count": 12, "total_s": 0.034}],
      "stages": {"trace_gen": {"calls": 12, "total_s": 0.034,
                               "mean_s": 0.0028}, ...},
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "cache":  {"trace": {"hits": .., "misses": .., "evictions": ..,
                           "entries": .., "hit_rate": ..}, "miss": {...}}
    }

``spans``/``stages`` are empty unless profiling was enabled; ``cache`` is
``null`` when the caller did not supply a cache snapshot.  The module
deliberately imports nothing from :mod:`repro.engine` -- cache state is
passed in as the plain dict ``EvalCache.snapshot()`` returns -- so the
dependency arrow stays engine -> obs.

Sweep-resilience counters (all under ``metrics.counters``; the schema
version stays ``repro.obs/1`` because counters are open-ended by design):

``parallel.chunks_completed``
    Chunks whose worker payload merged successfully.
``parallel.serial_fallbacks``
    Whole rounds degraded to serial because the environment cannot run a
    process pool (no fork / no pickling).
``resilience.chunk_failures``
    Transient chunk failures observed (worker crash, broken pool,
    corrupt payload).
``resilience.chunk_timeouts``
    Chunks abandoned by the per-chunk watchdog timeout.
``resilience.chunk_retries``
    Chunk re-dispatches after a transient failure or timeout.
``resilience.degraded_chunks``
    Chunks that exhausted their retries and were evaluated serially
    in-parent.
``resilience.checkpoint_chunks``
    Chunks durably journaled to the ``--checkpoint`` file.
``resilience.resumed_configs``
    Configurations loaded from the journal by ``--resume`` instead of
    re-evaluated.

These are rendered as their own block by :func:`render_stage_table`
(``repro stats``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.spans import SpanCollector, get_collector

__all__ = ["SCHEMA", "build_report", "render_stage_table", "write_report"]

SCHEMA = "repro.obs/1"

#: Pipeline stages in execution order; unknown stages sort after these.
_STAGE_ORDER = (
    "sweep",
    "evaluate",
    "trace_gen",
    "miss_measure",
    "add_bs",
    "cycles",
    "energy",
)


def build_report(
    collector: Optional[SpanCollector] = None,
    metrics: Optional[MetricsRegistry] = None,
    cache: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``repro.obs/1`` document from current process state.

    ``cache`` is an ``EvalCache.snapshot()`` dict (or ``None`` to omit the
    section); ``collector``/``metrics`` default to the process-local ones.
    """
    collector = collector if collector is not None else get_collector()
    metrics = metrics if metrics is not None else get_metrics()
    return {
        "schema": SCHEMA,
        "spans": collector.snapshot(),
        "stages": collector.by_stage(),
        "metrics": metrics.snapshot(),
        "cache": cache,
    }


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Serialise ``report`` as indented JSON at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _stage_sort_key(name: str):
    try:
        return (0, _STAGE_ORDER.index(name))
    except ValueError:
        return (1, name)


def render_stage_table(report: Dict[str, Any]) -> str:
    """The ``repro stats`` table: per-stage timings, cache and counters."""
    lines = []
    stages = report.get("stages", {})
    lines.append("per-stage timing (profiled spans)")
    if stages:
        lines.append(
            f"{'stage':>14s} {'calls':>8s} {'total s':>10s} {'mean ms':>10s}"
        )
        for name in sorted(stages, key=_stage_sort_key):
            entry = stages[name]
            lines.append(
                f"{name:>14s} {entry['calls']:>8d} "
                f"{entry['total_s']:>10.4f} {entry['mean_s'] * 1e3:>10.3f}"
            )
    else:
        lines.append("  (no spans recorded -- run with --profile)")

    cache = report.get("cache")
    if cache:
        lines.append("")
        lines.append("EvalCache")
        lines.append(
            f"{'store':>14s} {'hits':>8s} {'misses':>8s} "
            f"{'evictions':>10s} {'entries':>8s} {'hit rate':>9s}"
        )
        for store in ("trace", "miss"):
            row = cache.get(store)
            if row is None:
                continue
            lines.append(
                f"{store:>14s} {row['hits']:>8d} {row['misses']:>8d} "
                f"{row['evictions']:>10d} {row['entries']:>8d} "
                f"{row['hit_rate']:>9.4f}"
            )

    counters = report.get("metrics", {}).get("counters", {})
    resilience = {
        name: value
        for name, value in counters.items()
        if name.startswith(("parallel.", "resilience."))
    }
    if resilience:
        lines.append("")
        lines.append("sweep resilience (retries / timeouts / checkpointing)")
        for name in sorted(resilience):
            lines.append(f"  {name:<36s} {resilience[name]}")

    general = {
        name: value for name, value in counters.items() if name not in resilience
    }
    if general:
        lines.append("")
        lines.append("counters")
        for name in sorted(general):
            lines.append(f"  {name:<36s} {general[name]}")
    return "\n".join(lines)
