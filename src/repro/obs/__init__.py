"""repro.obs: the observability layer of the evaluation engine.

Three small, dependency-free (stdlib-only) facilities, threaded through
every layer of the stack:

* :mod:`repro.obs.spans` -- opt-in span tracing (``with span("trace_gen")``)
  with a process-local aggregating collector whose snapshots merge across
  :class:`~repro.engine.parallel.ParallelSweep` workers;
* :mod:`repro.obs.metrics` -- an always-on registry of named counters,
  gauges and histograms (configs evaluated, addresses simulated, cache
  hits/misses/evictions, sweep latencies);
* :mod:`repro.obs.logging` -- ``logging`` configuration for the ``repro``
  hierarchy with an optional JSON line formatter.

:mod:`repro.obs.report` assembles all three into one machine-readable
JSON document (schema ``repro.obs/1``) and renders the human table behind
the ``repro stats`` subcommand.  Nothing here imports :mod:`repro.engine`:
the dependency arrow is strictly engine -> obs, so even the lowest-level
cache code can be instrumented without import cycles.
"""

from repro.obs.logging import JsonFormatter, configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.report import (
    SCHEMA,
    build_report,
    render_stage_table,
    write_report,
)
from repro.obs.spans import (
    SpanCollector,
    collecting,
    disable_profiling,
    enable_profiling,
    get_collector,
    profiling_enabled,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "SCHEMA",
    "SpanCollector",
    "build_report",
    "collecting",
    "configure_logging",
    "disable_profiling",
    "enable_profiling",
    "get_collector",
    "get_metrics",
    "profiling_enabled",
    "render_stage_table",
    "reset",
    "span",
    "write_report",
]


def reset() -> None:
    """Clear the process-local collector and zero the metrics registry.

    For test isolation and the start of a CLI invocation that reports
    (``--profile`` / ``--metrics-out``): instrument identities are
    preserved, only their values drop.
    """
    get_collector().clear()
    get_metrics().clear()
