"""repro.obs: the observability layer of the evaluation engine.

Three small, dependency-free (stdlib-only) facilities, threaded through
every layer of the stack:

* :mod:`repro.obs.spans` -- opt-in span tracing (``with span("trace_gen")``)
  with a process-local aggregating collector whose snapshots merge across
  :class:`~repro.engine.parallel.ParallelSweep` workers;
* :mod:`repro.obs.metrics` -- an always-on registry of named counters,
  gauges and log-bucketed percentile histograms (configs evaluated,
  addresses simulated, cache hits/misses/evictions, request/queue/chunk
  latencies) whose bucket counts merge exactly across workers;
* :mod:`repro.obs.trace` -- per-job distributed tracing: a ``trace_id``
  context carried from client submit through the queue into sweep
  workers, producing one merged ``repro.trace/1`` timeline per job;
* :mod:`repro.obs.prometheus` -- text exposition 0.0.4 rendering (and a
  validating parser) for the registry, behind
  ``/metrics?format=prometheus``;
* :mod:`repro.obs.logging` -- ``logging`` configuration for the ``repro``
  hierarchy with an optional JSON line formatter.

:mod:`repro.obs.report` assembles all three into one machine-readable
JSON document (schema ``repro.obs/1``) and renders the human table behind
the ``repro stats`` subcommand.  Nothing here imports :mod:`repro.engine`:
the dependency arrow is strictly engine -> obs, so even the lowest-level
cache code can be instrumented without import cycles.
"""

from repro.obs.logging import JsonFormatter, configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.report import (
    SCHEMA,
    build_report,
    render_stage_table,
    write_report,
)
from repro.obs.spans import (
    SpanCollector,
    collecting,
    current_path,
    disable_profiling,
    enable_profiling,
    get_collector,
    profiling_enabled,
    span,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    build_document,
    current_trace,
    new_trace_id,
    trace_active,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "SCHEMA",
    "SpanCollector",
    "TRACE_SCHEMA",
    "TraceRecorder",
    "build_document",
    "build_report",
    "collecting",
    "configure_logging",
    "current_path",
    "current_trace",
    "disable_profiling",
    "enable_profiling",
    "get_collector",
    "get_metrics",
    "new_trace_id",
    "parse_prometheus",
    "profiling_enabled",
    "render_prometheus",
    "render_stage_table",
    "reset",
    "span",
    "trace_active",
    "tracing",
    "write_report",
]


def reset() -> None:
    """Clear the process-local collector and zero the metrics registry.

    For test isolation and the start of a CLI invocation that reports
    (``--profile`` / ``--metrics-out``): instrument identities are
    preserved, only their values drop.
    """
    get_collector().clear()
    get_metrics().clear()
