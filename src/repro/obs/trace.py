"""Distributed tracing: one merged timeline per job.

Where :mod:`repro.obs.spans` answers "how much time went into each stage
overall", tracing answers "what happened to *this* job, when, and on which
worker".  A :class:`TraceRecorder` is bound to a ``trace_id`` (minted by
:class:`~repro.serve.client.ServeClient` at submit, or by the server for
bare submissions) and installed in a :mod:`contextvars` context, so every
:func:`~repro.obs.spans.span` that closes while the trace is active also
lands here -- with wall-clock start/end, not just a duration sum.

Events aggregate by span *path* (the tuple of active span names), exactly
like the span collector: a chunk evaluating 200 configurations produces
one ``("job", "sweep", "chunk[0]", "evaluate")`` event with ``count=200``,
its earliest start and latest end, not 200 records.  Chunk wrappers get
unique names (``chunk[<first config index>]``), so the fan-out stays
visible per chunk and per worker pid.

Cross-process flow mirrors the metrics/span chunk protocol of
:class:`~repro.engine.parallel.ParallelSweep`: the parent exports a
``(trace_id, path prefix)`` context with :func:`export_context`, each
worker activates a fresh recorder against it (:func:`activate_remote`),
and ships :meth:`TraceRecorder.snapshot` back in the chunk payload for
the parent to :meth:`TraceRecorder.merge`.  Wall-clock times come from a
single ``time.time()``/``perf_counter`` anchor pair per recorder, so the
per-span cost stays one ``perf_counter`` call.

The finished timeline is a ``repro.trace/1`` document
(:func:`build_document`): events sorted by start time with deterministic
``span_id``/``parent_id`` links derived from paths, persisted in the
result store's ``traces`` table and served at ``GET /jobs/<id>/trace``.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "activate_remote",
    "build_document",
    "current_trace",
    "deactivate",
    "export_context",
    "new_trace_id",
    "trace_active",
    "tracing",
]

#: Schema tag stamped on every trace document.
TRACE_SCHEMA = "repro.trace/1"

#: Distinct span paths kept per recorder; beyond this, events are counted
#: as dropped rather than stored, bounding document size for pathological
#: span cardinality.
MAX_EVENTS = 4096

TracePath = Tuple[str, ...]


class _EventStat:
    """Mutable aggregate for one span path within one recorder."""

    __slots__ = ("count", "total_s", "start_s", "end_s", "attrs", "workers")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.workers: set = set()


class TraceRecorder:
    """Collects the span events of one trace (thread-safe).

    ``base_path`` prefixes every recorded path; worker-side recorders use
    it to splice their events under the parent's span stack (e.g.
    ``("job", "sweep")``) so parent/child links survive the process hop.
    """

    def __init__(self, trace_id: str, base_path: TracePath = ()) -> None:
        self.trace_id = trace_id
        self.base_path = tuple(base_path)
        self.dropped = 0
        self._lock = threading.Lock()
        self._events: Dict[TracePath, _EventStat] = {}
        # One wall/mono anchor pair: span starts/ends are measured with
        # perf_counter and converted to epoch seconds on snapshot.
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()
        self._pid = os.getpid()

    def record(
        self,
        path: TracePath,
        start_perf: float,
        end_perf: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fold one completed span (perf_counter endpoints) into the trace."""
        start_s = self._anchor_wall + (start_perf - self._anchor_perf)
        self.add_event(
            self.base_path + tuple(path),
            start_s,
            end_perf - start_perf,
            attrs,
        )

    def add_event(
        self,
        path: Iterable[str],
        start_s: float,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
        worker: Optional[int] = None,
    ) -> None:
        """Record an event with explicit wall-clock start and duration.

        Used directly for synthetic events that did not run under a span
        -- e.g. the server's ``queue.wait`` covering submit->start.
        """
        key = tuple(path)
        with self._lock:
            stat = self._events.get(key)
            if stat is None:
                if len(self._events) >= MAX_EVENTS:
                    self.dropped += 1
                    return
                stat = self._events[key] = _EventStat()
            stat.count += 1
            stat.total_s += duration_s
            end_s = start_s + duration_s
            if stat.start_s is None or start_s < stat.start_s:
                stat.start_s = start_s
            if stat.end_s is None or end_s > stat.end_s:
                stat.end_s = end_s
            if attrs and not stat.attrs:
                stat.attrs = dict(attrs)
            stat.workers.add(self._pid if worker is None else worker)

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-compatible event list (one record per distinct path)."""
        with self._lock:
            return [
                {
                    "path": list(path),
                    "name": path[-1] if path else "",
                    "count": stat.count,
                    "total_s": stat.total_s,
                    "start_s": stat.start_s,
                    "end_s": stat.end_s,
                    "attrs": dict(stat.attrs),
                    "workers": sorted(stat.workers),
                }
                for path, stat in sorted(self._events.items())
            ]

    def merge(self, events: Iterable[Dict[str, Any]]) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Worker events arrive with absolute paths (their ``base_path`` was
        applied at record time), so counts/totals add and start/end
        extremes widen exactly as if the spans had run here.
        """
        with self._lock:
            for record in events:
                key = tuple(record["path"])
                stat = self._events.get(key)
                if stat is None:
                    if len(self._events) >= MAX_EVENTS:
                        self.dropped += 1
                        continue
                    stat = self._events[key] = _EventStat()
                stat.count += int(record["count"])
                stat.total_s += float(record["total_s"])
                start_s = record.get("start_s")
                end_s = record.get("end_s")
                if start_s is not None and (
                    stat.start_s is None or start_s < stat.start_s
                ):
                    stat.start_s = start_s
                if end_s is not None and (
                    stat.end_s is None or end_s > stat.end_s
                ):
                    stat.end_s = end_s
                if record.get("attrs") and not stat.attrs:
                    stat.attrs = dict(record["attrs"])
                stat.workers.update(record.get("workers", ()))

    def __len__(self) -> int:
        return len(self._events)


_current: ContextVar[Optional[TraceRecorder]] = ContextVar(
    "repro_trace_recorder", default=None
)

# Process-level count of active recorders: the span() hot path checks this
# plain attribute before touching the ContextVar, keeping the disabled
# cost to one module attribute load (asserted in benchmarks/test_perf_obs).
_active = 0
_active_lock = threading.Lock()


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace identifier."""
    return uuid.uuid4().hex


def trace_active() -> bool:
    """Whether any trace recorder is active in this process."""
    return _active > 0


def current_trace() -> Optional[TraceRecorder]:
    """The recorder bound to the current context, if tracing is active."""
    if not _active:
        return None
    return _current.get()


def activate_remote(
    context: Optional[Dict[str, Any]],
) -> Optional[Tuple[Any, TraceRecorder]]:
    """Install a fresh recorder for an exported parent ``context``.

    Returns an opaque token for :func:`deactivate`, or ``None`` when the
    context is ``None`` (tracing off) -- mirroring how sweep workers
    activate span collectors.
    """
    if context is None:
        return None
    recorder = TraceRecorder(
        str(context.get("trace_id", "")),
        tuple(context.get("path", ())),
    )
    return _activate(recorder), recorder


def _activate(recorder: TraceRecorder) -> Any:
    global _active
    token = _current.set(recorder)
    with _active_lock:
        _active += 1
    return token


def deactivate(token: Any) -> None:
    """Undo a previous activation (token from :func:`activate_remote`)."""
    global _active
    if token is None:
        return
    if isinstance(token, tuple):  # (token, recorder) pairs pass through
        token = token[0]
    _current.reset(token)
    with _active_lock:
        _active -= 1


def export_context(
    path: TracePath = (),
) -> Optional[Dict[str, Any]]:
    """The current trace as a JSON dict for a worker, or ``None``.

    ``path`` is the dispatching thread's open span stack (from
    :func:`repro.obs.spans.current_path`); workers prefix their events
    with it so chunk spans nest under the parent's ``sweep`` span.
    """
    recorder = current_trace()
    if recorder is None:
        return None
    return {
        "trace_id": recorder.trace_id,
        "path": list(recorder.base_path) + list(path),
    }


class _Tracing:
    """Context-manager form: install a recorder, yield it, restore."""

    def __init__(self, trace_id: Optional[str], base_path: TracePath) -> None:
        self.recorder = TraceRecorder(trace_id or new_trace_id(), base_path)

    def __enter__(self) -> TraceRecorder:
        self._token = _activate(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info: Any) -> bool:
        deactivate(self._token)
        return False


def tracing(
    trace_id: Optional[str] = None, base_path: TracePath = ()
) -> _Tracing:
    """Record spans in the ``with`` body into a fresh :class:`TraceRecorder`."""
    return _Tracing(trace_id, base_path)


def _span_id(trace_id: str, path: TracePath) -> str:
    digest = hashlib.sha256(
        ("\x1f".join((trace_id,) + tuple(path))).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def build_document(
    recorder: TraceRecorder,
    job_id: Optional[str] = None,
    extra_events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Assemble the ``repro.trace/1`` document for a finished trace.

    Events are sorted by wall-clock start; ``span_id`` is a deterministic
    hash of ``(trace_id, path)`` and ``parent_id`` links each event to the
    event one path element up (``None`` for roots), so parent/child
    relationships survive JSON round-trips without mutable state.
    """
    events = recorder.snapshot()
    if extra_events:
        events.extend(extra_events)
    known = {tuple(event["path"]) for event in events}
    workers: set = set()
    documents = []
    for event in events:
        path = tuple(event["path"])
        parent = path[:-1]
        workers.update(event.get("workers", ()))
        documents.append(
            {
                "span_id": _span_id(recorder.trace_id, path),
                "parent_id": (
                    _span_id(recorder.trace_id, parent)
                    if parent in known
                    else None
                ),
                **event,
            }
        )
    documents.sort(
        key=lambda e: (
            e["start_s"] if e["start_s"] is not None else float("inf"),
            len(e["path"]),
            e["path"],
        )
    )
    starts = [e["start_s"] for e in documents if e["start_s"] is not None]
    ends = [e["end_s"] for e in documents if e["end_s"] is not None]
    return {
        "schema": TRACE_SCHEMA,
        "trace_id": recorder.trace_id,
        "job_id": job_id,
        "started_s": min(starts) if starts else None,
        "duration_s": (max(ends) - min(starts)) if starts and ends else 0.0,
        "workers": sorted(workers),
        "dropped": recorder.dropped,
        "events": documents,
    }
