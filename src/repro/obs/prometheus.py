"""Prometheus text exposition (format 0.0.4) for the metrics registry.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` into the plain-text format
every standard scraper understands, which is what the exploration
service serves at ``/metrics?format=prometheus``.  Dotted registry names
become underscore names under a ``repro_`` namespace
(``serve.http.request`` -> ``repro_serve_http_request``); counters gain
the conventional ``_total`` suffix; histograms emit the full cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` series straight from the
fixed log-bucket counts of :class:`~repro.obs.metrics.Histogram`.

:func:`parse_prometheus` is the matching validator: a strict
stdlib-only parser of the subset we emit, used by the test suite and the
CI serve-smoke job to prove a live scrape parses (sample syntax, declared
types, cumulative buckets, ``_count`` == ``+Inf`` bucket).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

from .metrics import BUCKET_BOUNDS

__all__ = [
    "parse_prometheus",
    "render_prometheus",
]

_NAME_PREFIX = "repro_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^\s*([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"\s*$')


def _metric_name(name: str) -> str:
    return _NAME_PREFIX + _INVALID_CHARS.sub("_", name)


def _format_value(value: Any) -> str:
    number = float(value)
    if number == math.inf:
        return "+Inf"
    if number == -math.inf:
        return "-Inf"
    if number != number:  # NaN
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_bound(bound: float) -> str:
    return "{0:.10g}".format(bound)


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a metrics snapshot as Prometheus text exposition 0.0.4.

    ``snapshot`` is the ``{"counters", "gauges", "histograms"}`` dict of
    :meth:`MetricsRegistry.snapshot`.  Output is deterministic (sorted by
    metric name) and ends with a newline, as the format requires.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name) + "_total"
        lines.append("# HELP {0} repro counter {1}".format(metric, name))
        lines.append("# TYPE {0} counter".format(metric))
        lines.append("{0} {1}".format(metric, _format_value(value)))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name)
        lines.append("# HELP {0} repro gauge {1}".format(metric, name))
        lines.append("# TYPE {0} gauge".format(metric))
        lines.append("{0} {1}".format(metric, _format_value(value)))
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name)
        lines.append(
            "# HELP {0} repro histogram {1} (seconds)".format(metric, name)
        )
        lines.append("# TYPE {0} histogram".format(metric))
        buckets = summary.get("buckets")
        count = int(summary.get("count", 0))
        if buckets is None:
            # Pre-bucket summaries (old snapshots): everything overflows.
            buckets = [0] * len(BUCKET_BOUNDS) + [count]
        cumulative = 0
        for bound, bucket_count in zip(BUCKET_BOUNDS, buckets):
            cumulative += bucket_count
            lines.append(
                '{0}_bucket{{le="{1}"}} {2}'.format(
                    metric, _format_bound(bound), cumulative
                )
            )
        lines.append('{0}_bucket{{le="+Inf"}} {1}'.format(metric, count))
        lines.append(
            "{0}_sum {1}".format(metric, _format_value(summary["total"]))
        )
        lines.append("{0}_count {1}".format(metric, count))
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not text.strip():
        return labels
    for part in text.split(","):
        match = _LABEL_PAIR.match(part)
        if match is None:
            raise ValueError("malformed label pair: {0!r}".format(part))
        labels[match.group(1)] = match.group(2)
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ValueError("malformed sample value: {0!r}".format(text))


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse (and validate) Prometheus text exposition.

    Returns ``{metric_family: {"type": ..., "samples": [(name, labels,
    value), ...]}}``.  Raises :class:`ValueError` on any malformed line,
    a sample without a preceding ``# TYPE``, a non-cumulative histogram
    bucket series, or a histogram whose ``_count`` disagrees with its
    ``+Inf`` bucket.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError("malformed comment line: {0!r}".format(raw))
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ValueError("malformed TYPE line: {0!r}".format(raw))
                types[parts[2]] = parts[3]
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": []}
                )
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError("malformed sample line: {0!r}".format(raw))
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            raise ValueError(
                "sample {0!r} has no preceding # TYPE".format(name)
            )
        families[family]["samples"].append((name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, Dict[str, Any]]) -> None:
    for family, doc in families.items():
        if doc["type"] != "histogram":
            continue
        buckets: List[Tuple[float, float]] = []
        count_value = None
        for name, labels, value in doc["samples"]:
            if name == family + "_bucket":
                if "le" not in labels:
                    raise ValueError(
                        "histogram {0} bucket without le label".format(family)
                    )
                buckets.append((_parse_value(labels["le"]), value))
            elif name == family + "_count":
                count_value = value
        if not buckets:
            raise ValueError("histogram {0} has no buckets".format(family))
        bounds = [bound for bound, _ in buckets]
        if bounds != sorted(bounds) or bounds[-1] != math.inf:
            raise ValueError(
                "histogram {0} buckets not cumulative to +Inf".format(family)
            )
        counts = [value for _, value in buckets]
        if counts != sorted(counts):
            raise ValueError(
                "histogram {0} bucket counts decrease".format(family)
            )
        if count_value is None or count_value != counts[-1]:
            raise ValueError(
                "histogram {0} _count != +Inf bucket".format(family)
            )
