"""Lightweight span tracing for the evaluation pipeline.

A *span* is a named, nested wall-time measurement::

    with span("trace_gen", kernel="compress"):
        ...

Spans are **disabled by default**: :func:`span` then returns a shared
no-op context manager, so instrumented hot paths pay one flag check and
one call per stage (the overhead budget is asserted in
``benchmarks/test_perf_obs.py``).  When enabled -- by the CLI's
``--profile`` flag, the ``repro stats`` subcommand or
:func:`enable_profiling` -- each exit records ``(path, elapsed)`` into the
process-local :class:`SpanCollector`, where *path* is the tuple of active
span names on the current thread (``("sweep", "evaluate", "trace_gen")``),
preserving parent/child nesting.

Collectors aggregate rather than stream: one entry per distinct path with
a call count and total seconds, so a million-configuration sweep costs a
dictionary of a dozen entries, not a million records.  Snapshots are plain
JSON-compatible lists, which is what lets
:class:`~repro.engine.parallel.ParallelSweep` ship worker-side collections
across the process boundary and :meth:`SpanCollector.merge` fold them back
into the parent.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from . import trace as _trace

__all__ = [
    "SpanCollector",
    "collecting",
    "current_path",
    "disable_profiling",
    "enable_profiling",
    "get_collector",
    "profiling_enabled",
    "reset_stack",
    "restore_stack",
    "span",
]

logger = logging.getLogger(__name__)

SpanKey = Tuple[str, ...]


class _SpanStat:
    """Mutable accumulator for one span path."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0


class SpanCollector:
    """Aggregates span timings by nesting path (thread-safe).

    The collector is process-local; cross-process runs produce one
    collector per worker whose :meth:`snapshot` the parent merges with
    :meth:`merge`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[SpanKey, _SpanStat] = {}

    def record(self, path: SpanKey, elapsed_s: float) -> None:
        """Fold one completed span into the aggregate."""
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = _SpanStat()
            stat.count += 1
            stat.total_s += elapsed_s

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-compatible copy: one record per distinct path."""
        with self._lock:
            return [
                {
                    "path": list(path),
                    "name": path[-1],
                    "count": stat.count,
                    "total_s": stat.total_s,
                }
                for path, stat in sorted(self._stats.items())
            ]

    def merge(self, snapshot: List[Dict[str, Any]]) -> None:
        """Fold another collector's :meth:`snapshot` into this one.

        Counts and totals add, so merging N worker snapshots yields the
        same aggregate as if every span had run in this process.
        """
        with self._lock:
            for record in snapshot:
                path = tuple(record["path"])
                stat = self._stats.get(path)
                if stat is None:
                    stat = self._stats[path] = _SpanStat()
                stat.count += int(record["count"])
                stat.total_s += float(record["total_s"])

    def by_stage(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate over nesting: leaf name -> calls / total seconds.

        The per-stage view the ``repro stats`` table prints; a stage that
        appears under several parents (``evaluate`` under ``sweep`` and at
        top level in merged worker snapshots) is summed.
        """
        with self._lock:
            stages: Dict[str, Dict[str, Any]] = {}
            for path, stat in self._stats.items():
                entry = stages.setdefault(
                    path[-1], {"calls": 0, "total_s": 0.0}
                )
                entry["calls"] += stat.count
                entry["total_s"] += stat.total_s
            for entry in stages.values():
                entry["mean_s"] = (
                    entry["total_s"] / entry["calls"] if entry["calls"] else 0.0
                )
            return stages

    def clear(self) -> None:
        """Drop every aggregate."""
        with self._lock:
            self._stats.clear()

    def __len__(self) -> int:
        return len(self._stats)


class _NullSpan:
    """The shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_enabled = False
_collector = SpanCollector()
_state = threading.local()


def _stack() -> List[str]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


def current_path() -> Tuple[str, ...]:
    """The tuple of span names currently open on this thread.

    :class:`~repro.engine.parallel.ParallelSweep` exports this alongside
    the trace context so worker-side chunk events nest under the
    dispatching thread's open spans (typically ``("job", "sweep")``).
    """
    return tuple(_stack())


def reset_stack() -> List[str]:
    """Swap in an empty span stack for this thread; returns the old one.

    A forked pool worker inherits the dispatching thread's open span
    names, which would prefix every chunk path a second time (the trace
    context already carries them as the worker recorder's base path).
    Workers clear the inherited stack on chunk entry and
    :func:`restore_stack` it on exit.
    """
    old = _stack()
    _state.stack = []
    return old


def restore_stack(stack: List[str]) -> None:
    """Undo a previous :func:`reset_stack`."""
    _state.stack = stack


class _Span:
    """An active span: pushes its name on the thread's path stack."""

    __slots__ = ("name", "attrs", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        _stack().append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        end = time.perf_counter()
        elapsed = end - self._start
        stack = _stack()
        path = tuple(stack)
        stack.pop()
        if _enabled:
            _collector.record(path, elapsed)
        if _trace._active:
            recorder = _trace.current_trace()
            if recorder is not None:
                recorder.record(path, self._start, end, self.attrs)
        if self.attrs and logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "span %s took %.6fs", "/".join(path), elapsed, extra=self.attrs
            )
        return False


def span(name: str, **attrs: Any):
    """A context manager timing ``name``.

    No-op unless profiling (aggregate stage sums) or an active trace
    (per-job timeline, :mod:`repro.obs.trace`) wants the measurement;
    the disabled path is one flag check per sink.
    """
    if not _enabled and not _trace._active:
        return _NULL_SPAN
    return _Span(name, attrs)


def enable_profiling() -> None:
    """Start recording spans into the process collector."""
    global _enabled
    _enabled = True


def disable_profiling() -> None:
    """Stop recording spans (already-collected aggregates are kept)."""
    global _enabled
    _enabled = False


def profiling_enabled() -> bool:
    """Whether :func:`span` currently records."""
    return _enabled


def get_collector() -> SpanCollector:
    """The process-local collector spans record into."""
    return _collector


def activate(
    collector: SpanCollector, enabled: bool = True
) -> Tuple[SpanCollector, bool]:
    """Swap in ``collector`` (and the enabled flag); returns a restore token.

    Used by :class:`~repro.engine.parallel.ParallelSweep` workers to record
    a chunk into a fresh collector regardless of whatever state the worker
    inherited at fork, and by tests needing isolation.
    """
    global _collector, _enabled
    token = (_collector, _enabled)
    _collector = collector
    _enabled = enabled
    return token


def restore(token: Tuple[SpanCollector, bool]) -> None:
    """Undo a previous :func:`activate`."""
    global _collector, _enabled
    _collector, _enabled = token


class _Collecting:
    """Context-manager form of :func:`activate`/:func:`restore`."""

    def __init__(self, collector: Optional[SpanCollector]) -> None:
        self.collector = collector if collector is not None else SpanCollector()

    def __enter__(self) -> SpanCollector:
        self._token = activate(self.collector)
        return self.collector

    def __exit__(self, *exc_info: Any) -> bool:
        restore(self._token)
        return False


def collecting(collector: Optional[SpanCollector] = None) -> _Collecting:
    """Record spans into an isolated collector for the ``with`` body."""
    return _Collecting(collector)
