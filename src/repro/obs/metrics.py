"""Process-local metrics registry: counters, gauges, histograms.

The registry is the always-on half of the observability layer (spans are
the opt-in half): instruments are plain named accumulators cheap enough to
increment on the evaluation hot path -- the engine counts configurations
evaluated, each backend counts addresses actually simulated, and the
:class:`~repro.engine.cache.EvalCache` counts hits/misses/evictions per
store.

Snapshots are plain JSON-compatible dicts.  Because counters and
histograms are monotonic, a worker process can snapshot at chunk start,
:meth:`MetricsRegistry.diff` at chunk end, and ship the delta back for the
parent to :meth:`MetricsRegistry.merge` -- which is how
:class:`~repro.engine.parallel.ParallelSweep` keeps the parent's registry
truthful after a fan-out (fork copies the parent's counts into every
worker, so raw worker snapshots would double-count).

:meth:`MetricsRegistry.clear` zeroes instruments **in place** rather than
dropping them, so call sites may cache instrument references
(``self._hits = get_metrics().counter("evalcache.trace.hits")``) without
ever going stale.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
]

#: Fixed log-spaced histogram bucket upper bounds, in seconds: a 1/2.5/5
#: ladder per decade from 100ns to 500s, plus an implicit overflow bucket.
#: Every histogram shares these bounds, which is what makes cross-worker
#: merges *exact*: bucket counts from any process add element-wise, and
#: percentiles computed from the merged counts equal those of a single
#: process that had seen every observation.
BUCKET_BOUNDS: tuple = tuple(
    round(mantissa * 10.0**exponent, 10)
    for exponent in range(-7, 3)
    for mantissa in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative)."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Log-bucketed streaming summary with mergeable percentiles.

    Observations land in the fixed :data:`BUCKET_BOUNDS` ladder (bucket
    ``i`` counts values ``<= BUCKET_BOUNDS[i]``; one extra overflow bucket
    catches the rest), so ``count``/``total``/``buckets`` are all exactly
    additive across processes and :meth:`percentile` stays truthful after
    a :meth:`MetricsRegistry.merge` of worker deltas.  Percentiles are
    resolved to a bucket upper bound clamped to the observed ``max`` --
    a deliberate over-estimate never finer than one bucket (~2.5x).
    """

    __slots__ = ("_lock", "count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.total += value
            self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The smallest bucket bound covering fraction ``q`` of the data.

        ``q`` is in ``[0, 1]``.  Returns 0.0 for an empty histogram; an
        answer that falls in the overflow bucket reports the observed
        ``max``.
        """
        with self._lock:
            return self._percentile(q)

    def _percentile(self, q: float) -> float:
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= target and bucket_count:
                if index >= len(BUCKET_BOUNDS):
                    break  # overflow bucket: only the max bounds it
                bound = BUCKET_BOUNDS[index]
                return bound if self.max is None else min(bound, self.max)
        return self.max if self.max is not None else 0.0

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "p50": self._percentile(0.50),
                "p95": self._percentile(0.95),
                "p99": self._percentile(0.99),
                "buckets": list(self.buckets),
            }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)


class MetricsRegistry:
    """Named instruments, created on first use (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def counters_matching(self, prefix: str) -> Dict[str, int]:
        """Current values of the counters whose names start with ``prefix``.

        Convenience for reporting layers that group related counters (the
        ``repro stats`` table pulls ``parallel.`` / ``resilience.`` into a
        sweep-resilience section this way).
        """
        with self._lock:
            return {
                name: counter.value
                for name, counter in self._counters.items()
                if name.startswith(prefix)
            }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: h.summary() for n, h in self._histograms.items()
                },
            }

    def diff(self, base: Dict[str, Any]) -> Dict[str, Any]:
        """What happened since ``base`` (an earlier :meth:`snapshot`).

        Counter and histogram count/total/bucket deltas are exact (all
        are monotonic); histogram min/max fall back to the current
        extrema, and gauges report their latest value.
        """
        current = self.snapshot()
        counters = {}
        for name, value in current["counters"].items():
            delta = value - base.get("counters", {}).get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        empty = [0] * (len(BUCKET_BOUNDS) + 1)
        for name, summary in current["histograms"].items():
            before = base.get("histograms", {}).get(
                name, {"count": 0, "total": 0.0}
            )
            count = summary["count"] - before["count"]
            if count:
                base_buckets = before.get("buckets", empty)
                histograms[name] = {
                    "count": count,
                    "total": summary["total"] - before["total"],
                    "min": summary["min"],
                    "max": summary["max"],
                    "buckets": [
                        now - was
                        for now, was in zip(summary["buckets"], base_buckets)
                    ],
                }
        return {
            "counters": counters,
            "gauges": dict(current["gauges"]),
            "histograms": histograms,
        }

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a :meth:`diff` (e.g. from a worker process) into this registry."""
        for name, value in delta.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in delta.get("histograms", {}).items():
            histogram = self.histogram(name)
            with histogram._lock:
                histogram.count += summary["count"]
                histogram.total += summary["total"]
                for index, bucket_count in enumerate(
                    summary.get("buckets", ())
                ):
                    histogram.buckets[index] += bucket_count
                for bound, pick in (("min", min), ("max", max)):
                    if summary.get(bound) is not None:
                        own = getattr(histogram, bound)
                        setattr(
                            histogram,
                            bound,
                            summary[bound]
                            if own is None
                            else pick(own, summary[bound]),
                        )

    def clear(self) -> None:
        """Zero every instrument in place (identities are preserved)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-local registry every instrumented module shares."""
    return _registry
