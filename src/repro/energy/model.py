"""The Section 2.3 cache energy model.

The paper rectifies Hicks/Walnock/Owens' extension of Su and Despain's model.
Per READ access::

    Energy      = hit_rate * Energy_hit + miss_rate * Energy_miss
    Energy_hit  = E_dec + E_cell
    Energy_miss = E_dec + E_cell + E_io + E_main

    E_dec  = alpha * Add_bs
    E_cell = beta  * word_line_size * bit_line_size
    E_io   = gamma * (data_bs * L + Add_bs)
    E_main = gamma * (data_bs * L) + Em * L

with ``Add_bs`` the (Gray-coded) address-bus switching per access, ``data_bs``
the data-bus switching per transferred byte, ``L`` the cache line size and
``Em`` the main-memory energy per access.  Only READ accesses are charged,
"because reads dominate processor cache accesses"; set-associative control
overhead is deliberately ignored ("the amount is not significant [3]").

The cell array of a ``(T, L, S)`` cache is organised as
``num_sets = T/(L*S)`` rows of ``8*L*S`` cells, so
``word_line_size * bit_line_size = 8*T``: hit energy grows linearly with
cache size and is independent of how the bytes are arranged into lines and
ways.  That linear-in-``T`` hit term versus the miss term shrinking with
``T`` is exactly the tension behind Figure 1.

Switching-weighted sums (the alpha/beta/gamma terms) are interpreted as
picojoules and scaled by ``TechnologyParams.capacitive_scale_nj`` into
nanojoules so they can be combined with the datasheet ``Em`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.energy.params import CY7C_2MBIT, SRAMPart, TechnologyParams

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-access components (nJ) and run totals for one configuration."""

    e_dec: float
    e_cell: float
    e_io: float
    e_main: float
    hit_rate: float
    miss_rate: float
    events: int

    @property
    def e_hit(self) -> float:
        """Energy of one read hit (nJ)."""
        return self.e_dec + self.e_cell

    @property
    def e_miss(self) -> float:
        """Energy of one read miss (nJ)."""
        return self.e_hit + self.e_io + self.e_main

    @property
    def per_access(self) -> float:
        """Expected energy of one read access (nJ)."""
        return self.hit_rate * self.e_hit + self.miss_rate * self.e_miss

    @property
    def total(self) -> float:
        """Total read energy of the run (nJ)."""
        return self.per_access * self.events


class EnergyModel:
    """Evaluate the paper's energy expressions for a cache geometry.

    Parameters
    ----------
    tech:
        Technology constants (defaults to the paper's 0.8 um values).
    sram:
        Off-chip part providing ``Em`` (defaults to the Cypress 2 Mbit,
        4.95 nJ).
    subbanks:
        Cell-array sub-banking factor (default 1 = the paper's monolithic
        array).  A sub-banked array precharges only the accessed bank, so
        ``E_cell`` divides by the factor -- the classic low-power layout
        from the Su/Despain and Kamble/Ghose lineage the paper cites.
        Must divide the number of sets of any geometry evaluated.
    phased:
        Phased (tag-first) access: probe the tags, then read only the
        hitting way's data.  Cuts the per-access cell energy of an S-way
        cache by reading one way instead of S, at the cost of one extra
        hit cycle (applied by the caller via
        :func:`~repro.core.cycles.cycles_per_hit` + 1; see the phased
        bench).  No effect on direct-mapped caches.
    """

    def __init__(
        self,
        tech: Optional[TechnologyParams] = None,
        sram: Optional[SRAMPart] = None,
        subbanks: int = 1,
        phased: bool = False,
    ) -> None:
        if subbanks < 1:
            raise ValueError("sub-banking factor must be at least 1")
        self.tech = tech if tech is not None else TechnologyParams()
        self.sram = sram if sram is not None else CY7C_2MBIT
        self.subbanks = subbanks
        self.phased = phased

    @property
    def em(self) -> float:
        """Main-memory energy per access, nJ."""
        return self.sram.energy_per_access_nj

    def cell_geometry(self, size: int, line_size: int, ways: int) -> "tuple[int, int]":
        """``(word_line_size, bit_line_size)`` in cells for the geometry."""
        if size <= 0 or line_size <= 0 or ways <= 0:
            raise ValueError("geometry parameters must be positive")
        if line_size * ways > size:
            raise ValueError("ways of this line size do not fit in the cache")
        word_line = 8 * line_size * ways
        bit_line = size // (line_size * ways)
        return word_line, bit_line

    def e_dec(self, add_bs: float) -> float:
        """Address-decoding-path energy per access, nJ."""
        return self.tech.alpha * add_bs * self.tech.capacitive_scale_nj

    def e_cell(self, size: int, line_size: int, ways: int) -> float:
        """Cell-array (word/bit line precharge) energy per access, nJ.

        Sub-banking divides the precharged array by the bank factor;
        phased access reads a single way's data instead of all ``S``
        (approximated as dividing the array term by the way count, with
        the tag side ignored as in the paper's simplified model).
        """
        word_line, bit_line = self.cell_geometry(size, line_size, ways)
        cells = word_line * bit_line
        if self.subbanks > 1:
            if bit_line % self.subbanks:
                raise ValueError(
                    f"{self.subbanks} sub-banks do not divide the "
                    f"{bit_line} sets of this geometry"
                )
            cells //= self.subbanks
        if self.phased and ways > 1:
            cells //= ways
        return self.tech.beta * cells * self.tech.capacitive_scale_nj

    def e_io(self, line_size: int, add_bs: float) -> float:
        """Host-processor I/O pad energy per miss, nJ."""
        switched = self.tech.data_bs * line_size + add_bs
        return self.tech.gamma * switched * self.tech.capacitive_scale_nj

    def e_main(self, line_size: int) -> float:
        """Main-memory access energy per miss, nJ (includes its bus term)."""
        bus = self.tech.gamma * self.tech.data_bs * line_size
        return bus * self.tech.capacitive_scale_nj + self.em * line_size

    def breakdown(
        self,
        size: int,
        line_size: int,
        ways: int,
        hit_rate: float,
        miss_rate: float,
        events: int,
        add_bs: float,
    ) -> EnergyBreakdown:
        """Full per-access breakdown and totals for one configuration.

        ``hit_rate``/``miss_rate`` are READ rates, per the paper's
        accounting; ``events`` is the trip count that scales the per-event
        expectation into a total; ``add_bs`` is the measured Gray-coded
        address-bus switching of the run.
        """
        if not 0 <= miss_rate <= 1 or not 0 <= hit_rate <= 1:
            raise ValueError("rates must lie in [0, 1]")
        if abs(hit_rate + miss_rate - 1.0) > 1e-9 and (hit_rate or miss_rate):
            raise ValueError("hit and miss rates must sum to 1")
        if events < 0:
            raise ValueError("event count must be non-negative")
        if add_bs < 0:
            raise ValueError("address switching must be non-negative")
        return EnergyBreakdown(
            e_dec=self.e_dec(add_bs),
            e_cell=self.e_cell(size, line_size, ways),
            e_io=self.e_io(line_size, add_bs),
            e_main=self.e_main(line_size),
            hit_rate=hit_rate,
            miss_rate=miss_rate,
            events=events,
        )

    def total_energy(
        self,
        size: int,
        line_size: int,
        ways: int,
        miss_rate: float,
        events: int,
        add_bs: float,
    ) -> float:
        """Total run energy in nJ (convenience over :meth:`breakdown`)."""
        return self.breakdown(
            size,
            line_size,
            ways,
            hit_rate=1.0 - miss_rate,
            miss_rate=miss_rate,
            events=events,
            add_bs=add_bs,
        ).total
