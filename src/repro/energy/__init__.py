"""Energy substrate (Section 2.3 of the paper).

The paper rectifies the cache-energy model of Hicks, Walnock and Owens
(itself extending Su and Despain) and pairs it with datasheet numbers for
off-chip Cypress SRAMs.  This subpackage implements:

* :mod:`repro.energy.params` -- technology constants (alpha, beta, gamma for
  0.8 um CMOS) and the off-chip SRAM part catalog (the paper's Em points),
* :mod:`repro.energy.bus` -- Gray-code address encoding and bus switching
  activity measured on real traces,
* :mod:`repro.energy.model` -- the E_dec / E_cell / E_io / E_main model and
  per-run energy totals,
* :mod:`repro.energy.area` -- a simple area estimate (data + tag + status
  bits) backing the paper's "cache size" metric.
"""

from repro.energy.params import (
    CY7C_2MBIT,
    LOW_POWER_2MBIT,
    SRAM_16MBIT,
    SRAM_CATALOG,
    SRAMPart,
    TechnologyParams,
)
from repro.energy.bus import (
    address_bus_switching,
    bus_switching,
    gray_decode,
    gray_encode,
    hamming_distance,
)
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.kamble_ghose import KambleGhoseModel
from repro.energy.dram import DramModel, DramStats, miss_stream_energy
from repro.energy.area import cache_area_bits, tag_bits_per_line


def available_energy_models() -> "tuple[str, ...]":
    """Energy-model names (built-ins plus installed plugins)."""
    from repro.registry import get_registry

    return get_registry().names("energy")


def get_energy_model(name: str, **kwargs) -> EnergyModel:
    """Build an energy model by registry name (``hwo`` is the paper's)."""
    from repro.registry import UnknownPluginError, get_registry

    try:
        return get_registry().create("energy", name, **kwargs)
    except UnknownPluginError:
        raise ValueError(
            f"unknown energy model {name!r}; "
            f"choose from {available_energy_models()}"
        ) from None


def available_srams() -> "tuple[str, ...]":
    """Off-chip SRAM part names (the paper's catalog plus plugins)."""
    from repro.registry import get_registry

    return get_registry().names("sram")


def get_sram(name: str) -> SRAMPart:
    """Resolve an off-chip SRAM part by registry name."""
    from repro.registry import UnknownPluginError, get_registry

    try:
        return get_registry().create("sram", name)
    except UnknownPluginError:
        raise ValueError(
            f"unknown SRAM part {name!r}; choose from {available_srams()}"
        ) from None


__all__ = [
    "CY7C_2MBIT",
    "EnergyBreakdown",
    "EnergyModel",
    "DramModel",
    "DramStats",
    "KambleGhoseModel",
    "LOW_POWER_2MBIT",
    "SRAMPart",
    "SRAM_16MBIT",
    "SRAM_CATALOG",
    "TechnologyParams",
    "address_bus_switching",
    "available_energy_models",
    "available_srams",
    "bus_switching",
    "cache_area_bits",
    "get_energy_model",
    "get_sram",
    "gray_decode",
    "gray_encode",
    "hamming_distance",
    "miss_stream_energy",
    "tag_bits_per_line",
]
