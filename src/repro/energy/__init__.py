"""Energy substrate (Section 2.3 of the paper).

The paper rectifies the cache-energy model of Hicks, Walnock and Owens
(itself extending Su and Despain) and pairs it with datasheet numbers for
off-chip Cypress SRAMs.  This subpackage implements:

* :mod:`repro.energy.params` -- technology constants (alpha, beta, gamma for
  0.8 um CMOS) and the off-chip SRAM part catalog (the paper's Em points),
* :mod:`repro.energy.bus` -- Gray-code address encoding and bus switching
  activity measured on real traces,
* :mod:`repro.energy.model` -- the E_dec / E_cell / E_io / E_main model and
  per-run energy totals,
* :mod:`repro.energy.area` -- a simple area estimate (data + tag + status
  bits) backing the paper's "cache size" metric.
"""

from repro.energy.params import (
    CY7C_2MBIT,
    LOW_POWER_2MBIT,
    SRAM_16MBIT,
    SRAM_CATALOG,
    SRAMPart,
    TechnologyParams,
)
from repro.energy.bus import (
    address_bus_switching,
    bus_switching,
    gray_decode,
    gray_encode,
    hamming_distance,
)
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.kamble_ghose import KambleGhoseModel
from repro.energy.dram import DramModel, DramStats, miss_stream_energy
from repro.energy.area import cache_area_bits, tag_bits_per_line

__all__ = [
    "CY7C_2MBIT",
    "EnergyBreakdown",
    "EnergyModel",
    "DramModel",
    "DramStats",
    "KambleGhoseModel",
    "LOW_POWER_2MBIT",
    "SRAMPart",
    "SRAM_16MBIT",
    "SRAM_CATALOG",
    "TechnologyParams",
    "address_bus_switching",
    "bus_switching",
    "cache_area_bits",
    "gray_decode",
    "gray_encode",
    "hamming_distance",
    "miss_stream_energy",
    "tag_bits_per_line",
]
