"""Cache access-time model after Wilton and Jouppi (paper reference [4]).

The paper's Section 2.2 hit latencies (1 / 1.1 / 1.12 / 1.14 cycles for
1/2/4/8 ways) come from Hennessy & Patterson, who in turn lean on
enhanced-CACTI-style access-time models.  This module implements a
simplified structural version of that model so the fixed table can be
*cross-checked* rather than taken as given:

    t_access = t_decode + t_wordline + t_bitline + t_sense
             + (t_compare + t_mux  if set-associative)

with each component scaling the way the physical structure does --
decoder with ``log2(sets)``, word line with the row's cell count, bit line
with the column's cell count, and the associative overhead with the tag
width and the way count.  Outputs are in arbitrary delay units;
:func:`relative_hit_time` normalises against the direct-mapped
configuration of the same capacity, which is the quantity the paper's
table encodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.area import tag_bits_per_line

__all__ = ["AccessTimeModel", "AccessTimeBreakdown"]


@dataclass(frozen=True)
class AccessTimeBreakdown:
    """Delay components (arbitrary units) for one geometry."""

    decode: float
    wordline: float
    bitline: float
    sense: float
    compare: float
    mux: float

    @property
    def total(self) -> float:
        """End-to-end access time."""
        return (
            self.decode + self.wordline + self.bitline
            + self.sense + self.compare + self.mux
        )


class AccessTimeModel:
    """Structural access-time estimates for ``(T, L, S)`` caches.

    The default component weights were fitted once so the relative hit
    times of a 64-byte cache land on the paper's 1 / 1.1 / 1.12 / 1.14
    ladder within a few percent (see ``tests/test_timing.py``); everything
    downstream only uses ratios, so the absolute unit is immaterial.
    """

    def __init__(
        self,
        decode_weight: float = 1.0,
        wordline_weight: float = 0.01,
        bitline_weight: float = 0.05,
        sense_delay: float = 3.0,
        compare_weight: float = 0.0215,
        mux_weight: float = 0.118,
        address_bits: int = 32,
    ) -> None:
        weights = (decode_weight, wordline_weight, bitline_weight,
                   sense_delay, compare_weight, mux_weight)
        if any(w < 0 for w in weights):
            raise ValueError("delay weights must be non-negative")
        self.decode_weight = decode_weight
        self.wordline_weight = wordline_weight
        self.bitline_weight = bitline_weight
        self.sense_delay = sense_delay
        self.compare_weight = compare_weight
        self.mux_weight = mux_weight
        self.address_bits = address_bits

    def breakdown(self, size: int, line_size: int, ways: int) -> AccessTimeBreakdown:
        """Component delays for one geometry.

        The data array is modelled as one bank per way, each with the
        direct-mapped organisation of the full capacity divided by the
        way count replicated in parallel -- so the array path is the
        direct-mapped one and associativity only adds the comparator and
        the way-select mux, which is the structure behind the paper's
        size-independent 1/1.1/1.12/1.14 ladder.
        """
        if size <= 0 or line_size <= 0 or ways <= 0 or line_size * ways > size:
            raise ValueError("invalid cache geometry")
        array_rows = size // line_size  # banked per way: array path as DM
        columns = 8 * line_size
        decode = self.decode_weight * max(1.0, math.log2(max(array_rows, 2)))
        wordline = self.wordline_weight * columns
        bitline = self.bitline_weight * array_rows
        compare = 0.0
        mux = 0.0
        if ways > 1:
            tag = tag_bits_per_line(size, line_size, ways, self.address_bits)
            compare = self.compare_weight * tag
            mux = self.mux_weight * math.log2(ways)
        return AccessTimeBreakdown(
            decode=decode,
            wordline=wordline,
            bitline=bitline,
            sense=self.sense_delay,
            compare=compare,
            mux=mux,
        )

    def access_time(self, size: int, line_size: int, ways: int) -> float:
        """Total access time (arbitrary units)."""
        return self.breakdown(size, line_size, ways).total

    def relative_hit_time(self, size: int, line_size: int, ways: int) -> float:
        """Hit time normalised to the direct-mapped cache of equal size.

        This is the quantity the paper's 1 / 1.1 / 1.12 / 1.14 ladder
        tabulates.
        """
        base = self.access_time(size, line_size, 1)
        return self.access_time(size, line_size, ways) / base
