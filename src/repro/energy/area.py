"""Cache area estimate backing the paper's "cache size" metric.

The paper's first performance metric is simply the cache capacity ``T``, but
comparing configurations of equal capacity and different organisation still
differs in *real* area because of tag and status overhead: smaller lines and
more sets mean more tags.  This module provides the standard bit-level
estimate (data bits + tag bits + valid bits per line) used by the ablation
benches when ranking configurations under an area budget.
"""

from __future__ import annotations

__all__ = ["cache_area_bits", "tag_bits_per_line"]


def _log2_exact(n: int, label: str) -> int:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"{label} must be a power of two, got {n}")
    return n.bit_length() - 1


def tag_bits_per_line(
    size: int, line_size: int, ways: int, address_bits: int = 32
) -> int:
    """Tag width for a ``(T, L, S)`` cache with the given address width."""
    offset_bits = _log2_exact(line_size, "line size")
    num_sets = size // (line_size * ways)
    if num_sets * line_size * ways != size:
        raise ValueError("geometry does not tile the cache size")
    index_bits = _log2_exact(num_sets, "number of sets")
    tag = address_bits - offset_bits - index_bits
    if tag < 0:
        raise ValueError("address width too small for this geometry")
    return tag


def cache_area_bits(
    size: int, line_size: int, ways: int, address_bits: int = 32
) -> int:
    """Total storage bits: data + tag + valid bit per line.

    Dirty bits are omitted (the paper's metrics are read-dominated); adding
    one more status bit per line shifts every configuration equally.
    """
    num_lines = size // line_size
    if num_lines * line_size != size:
        raise ValueError("line size must divide cache size")
    data_bits = size * 8
    tag = tag_bits_per_line(size, line_size, ways, address_bits)
    return data_bits + num_lines * (tag + 1)
