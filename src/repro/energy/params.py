"""Technology constants and the off-chip SRAM part catalog.

The paper's model constants for 0.8 um CMOS are alpha = 0.001, beta = 2 and
gamma = 20; they weight switching events into energy.  We interpret the
weighted sums as picojoules and convert to nanojoules (``CAPACITIVE_SCALE``)
so that on-chip and off-chip (``Em``, quoted in nJ by the paper) terms
combine in one unit.  Absolute calibration is documented in EXPERIMENTS.md;
all trend/crossover results are insensitive to this single scale factor.

The off-chip memory for most experiments is "the SRAM CY7C from Cypress ...
2M bits, access time of 4 ns, voltage of 3.3 V, current of 375 mA, energy
consumption of 4.95 nJ per access" -- and indeed 3.3 V x 0.375 A x 4 ns =
4.95 nJ, which :meth:`SRAMPart.datasheet_energy_nj` reproduces.  Section 3
contrasts two extremes: a low-power 2 Mbit part at 2.31 nJ and a 16 Mbit
part at 43.56 nJ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = [
    "CAPACITIVE_SCALE",
    "CY7C_2MBIT",
    "LOW_POWER_2MBIT",
    "SRAM_16MBIT",
    "SRAM_CATALOG",
    "SRAMPart",
    "TechnologyParams",
]

#: Conversion from alpha/beta/gamma-weighted switching sums to nanojoules.
#: Calibrated once so the paper's Figure 4 anchor holds (C16L4 is Compress's
#: minimum-energy point at Em = 4.95 nJ while the Em = 43.56 nJ optimum moves
#: to a larger cache); every trend/crossover result is insensitive to this
#: single factor within a +/-2x band (see the scale ablation bench).
CAPACITIVE_SCALE = 2e-3


@dataclass(frozen=True)
class SRAMPart:
    """An off-chip SRAM part; only ``energy_per_access_nj`` enters the model."""

    name: str
    size_bits: int
    energy_per_access_nj: float
    access_time_ns: Optional[float] = None
    voltage_v: Optional[float] = None
    current_ma: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError("SRAM size must be positive")
        if self.energy_per_access_nj <= 0:
            raise ValueError("SRAM access energy must be positive")

    def datasheet_energy_nj(self) -> Optional[float]:
        """``V * I * t_access`` in nJ when the datasheet numbers are known."""
        if None in (self.voltage_v, self.current_ma, self.access_time_ns):
            return None
        return self.voltage_v * (self.current_ma / 1000.0) * self.access_time_ns


#: The Cypress part used "for most of our experiments" (Em = 4.95 nJ).
CY7C_2MBIT = SRAMPart(
    name="CY7C-2Mbit",
    size_bits=2 * 1024 * 1024,
    energy_per_access_nj=4.95,
    access_time_ns=4.0,
    voltage_v=3.3,
    current_ma=375.0,
)

#: Low-energy end of the Section 3 spectrum (Em = 2.31 nJ).
LOW_POWER_2MBIT = SRAMPart(
    name="low-power-2Mbit",
    size_bits=2 * 1024 * 1024,
    energy_per_access_nj=2.31,
)

#: High-energy end of the Section 3 spectrum (Em = 43.56 nJ).
SRAM_16MBIT = SRAMPart(
    name="16Mbit",
    size_bits=16 * 1024 * 1024,
    energy_per_access_nj=43.56,
)

SRAM_CATALOG: Dict[str, SRAMPart] = {
    part.name: part for part in (CY7C_2MBIT, LOW_POWER_2MBIT, SRAM_16MBIT)
}


@dataclass(frozen=True)
class TechnologyParams:
    """Model constants (defaults: the paper's 0.8 um CMOS values).

    ``data_bus_activity`` is the assumed switching activity per data-bus bit
    per transferred byte; the paper assumes a fixed value for data-bus
    switching (the exact constant is garbled in the archived text; 0.5 is
    the standard assumption of the Su/Despain lineage and is swept by an
    ablation bench).  ``address_bus_width`` bounds Gray-coded address
    switching; ``data_bus_width_bits`` is the processor I/O data path.
    """

    alpha: float = 0.001
    beta: float = 2.0
    gamma: float = 20.0
    data_bus_activity: float = 0.5
    address_bus_width: int = 32
    data_bus_width_bits: int = 8
    capacitive_scale_nj: float = CAPACITIVE_SCALE

    def __post_init__(self) -> None:
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ValueError("technology constants must be non-negative")
        if not 0 <= self.data_bus_activity <= 1:
            raise ValueError("data bus activity must lie in [0, 1]")
        if self.address_bus_width <= 0 or self.data_bus_width_bits <= 0:
            raise ValueError("bus widths must be positive")
        if self.capacitive_scale_nj <= 0:
            raise ValueError("capacitive scale must be positive")

    def with_activity(self, activity: float) -> "TechnologyParams":
        """A copy with a different data-bus activity (for ablations)."""
        return replace(self, data_bus_activity=activity)

    @property
    def data_bs(self) -> float:
        """Expected data-bus bit switches per transferred byte."""
        return self.data_bus_activity * self.data_bus_width_bits
