"""DRAM row-buffer model for the off-chip side.

The paper's off-chip memory is an SRAM with one flat cost ``Em``.  A DRAM
main memory (what most of the paper's successors assumed) has structure:
each bank holds one *open row*, and an access either hits the open row
(cheap column access) or must precharge and activate a new one (expensive).
That makes off-chip energy sensitive to the very thing Section 4.1
manipulates -- the placement of arrays in memory -- so the model closes a
loop the paper opened: layout affects not only cache conflicts but also
row-buffer locality of the resulting miss stream.

:class:`DramModel` replays a line-fetch address stream against per-bank
open-row state and prices each fetch; :func:`miss_stream_energy` wraps the
common case (price the main-memory side of a cache's miss stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.cache.trace import MemoryTrace

__all__ = ["DramModel", "DramStats", "miss_stream_energy"]


@dataclass(frozen=True)
class DramStats:
    """Row-buffer behaviour and energy of one fetch stream."""

    fetches: int
    row_hits: int
    row_misses: int
    energy_nj: float

    @property
    def row_hit_rate(self) -> float:
        """Fraction of fetches served from an open row."""
        return self.row_hits / self.fetches if self.fetches else 0.0


class DramModel:
    """Open-page DRAM with per-bank row buffers.

    Parameters
    ----------
    row_bytes:
        Bytes per row (page); addresses in the same row and bank hit the
        open page.
    banks:
        Number of banks (rows interleave across banks by row index).
    row_hit_nj / row_miss_nj:
        Energy of a column access into an open row vs a full
        precharge+activate+access cycle.  Defaults keep the *average* cost
        near the paper's Cypress Em (4.95 nJ) so cache-side conclusions
        carry over: hits well under it, misses several times it.
    """

    def __init__(
        self,
        row_bytes: int = 512,
        banks: int = 4,
        row_hit_nj: float = 1.5,
        row_miss_nj: float = 12.0,
    ) -> None:
        if row_bytes <= 0 or banks <= 0:
            raise ValueError("row size and bank count must be positive")
        if row_hit_nj < 0 or row_miss_nj < row_hit_nj:
            raise ValueError("row-miss energy must be >= row-hit energy >= 0")
        self.row_bytes = row_bytes
        self.banks = banks
        self.row_hit_nj = row_hit_nj
        self.row_miss_nj = row_miss_nj

    def replay(self, addresses: Sequence[int]) -> DramStats:
        """Price a stream of byte addresses (one fetch per entry)."""
        open_rows: Dict[int, int] = {}
        hits = 0
        misses = 0
        for address in np.asarray(addresses, dtype=np.int64).tolist():
            row = address // self.row_bytes
            bank = row % self.banks
            if open_rows.get(bank) == row:
                hits += 1
            else:
                misses += 1
                open_rows[bank] = row
        energy = hits * self.row_hit_nj + misses * self.row_miss_nj
        return DramStats(
            fetches=hits + misses,
            row_hits=hits,
            row_misses=misses,
            energy_nj=energy,
        )


def miss_stream_energy(
    trace: MemoryTrace,
    cache_size: int,
    line_size: int,
    ways: int = 1,
    dram: "DramModel | None" = None,
) -> DramStats:
    """Price the main-memory side of a cache's miss stream.

    Simulates the cache (LRU fast path), extracts the missing accesses'
    addresses in order, and replays them against the DRAM model -- the
    off-chip energy a real system would pay for this trace and geometry.
    The miss vector is memoised in the engine's process-wide
    :class:`~repro.engine.cache.EvalCache`, so pricing several DRAM
    configurations over one trace simulates the cache once.
    """
    # Imported lazily: repro.engine pulls in the core/energy model stack,
    # and this module is imported during repro.energy's own initialisation.
    from repro.engine.backends import cached_miss_vector

    model = dram if dram is not None else DramModel()
    num_sets = (cache_size // line_size) // ways
    miss = cached_miss_vector(trace, line_size, num_sets, ways)
    miss_addresses = trace.addresses[miss]
    return model.replay(miss_addresses)
