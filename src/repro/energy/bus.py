"""Gray-code address encoding and bus switching activity.

"In the computation of address bus switching, we have assumed Gray code
encoding of the address lines" (Section 2.3).  Gray encoding guarantees that
consecutive integers differ in exactly one bit, which is why it was the
standard low-power bus encoding for the sequential-heavy address streams of
embedded kernels.  This module provides the codec plus measured switching
statistics over real traces; the measured average feeds the model's
``Add_bs`` term.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "address_bus_switching",
    "bus_switching",
    "gray_decode",
    "gray_encode",
    "hamming_distance",
]


def gray_encode(value: int) -> int:
    """Reflected-binary Gray code of a non-negative integer."""
    if value < 0:
        raise ValueError("Gray code is defined for non-negative integers")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if code < 0:
        raise ValueError("Gray code is defined for non-negative integers")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    return bin(a ^ b).count("1")


def _gray_array(values: np.ndarray) -> np.ndarray:
    return values ^ (values >> 1)


def _popcount(values: np.ndarray) -> np.ndarray:
    # Vectorized popcount via byte view; addresses are int64 and
    # non-negative, so the byte reinterpretation is safe.
    bytes_view = values.astype(np.int64).view(np.uint8).reshape(values.size, 8)
    return np.unpackbits(bytes_view, axis=1).sum(axis=1)


def bus_switching(words: Sequence[int], gray: bool = True) -> float:
    """Average bit switches per transition of the given word stream.

    With ``gray`` set (the paper's assumption) words are Gray-encoded before
    measuring transitions.  Streams shorter than two words switch nothing.
    """
    values = np.asarray(words, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError("bus word stream must be one-dimensional")
    if values.size and values.min() < 0:
        raise ValueError("bus words must be non-negative")
    if values.size < 2:
        return 0.0
    if gray:
        values = _gray_array(values)
    flips = _popcount(values[1:] ^ values[:-1])
    return float(flips.mean())


def address_bus_switching(addresses: Sequence[int], gray: bool = True) -> float:
    """Average address-bus bit switches per access (the model's ``Add_bs``).

    The paper quotes switching "per instruction"; in this data-cache setting
    every trace entry is one data access, so the average is per access.
    """
    return bus_switching(addresses, gray=gray)
