"""Detailed cache energy model after Kamble and Ghose (paper reference [3]).

The paper's model deliberately keeps only the dominant terms and argues,
citing Kamble & Ghose, that "even though the set associative cache consumes
more power in the control logic, tag comparators and address comparators,
the amount is not significant".  This module implements a structurally
faithful (if technology-simplified) version of the detailed model so that
claim can be *checked* instead of assumed:

* **bit-line energy** -- every access precharges and partially discharges
  the bit-line pairs of the data and tag arrays; capacitance grows with
  the number of rows (``num_sets``) and the number of columns swings
  (``8*L*S`` data bits + ``S`` tags);
* **word-line energy** -- one row driven per access, capacitance
  proportional to the number of cells on the row;
* **tag comparison** -- ``S`` comparators of ``tag_bits`` each switch per
  access;
* **output drivers** -- the selected way's ``8*L`` data bits (plus the hit
  signal) drive the cache output;
* **miss traffic** -- the paper's own ``E_io + E_main`` terms are reused
  unchanged, so the two models differ only on the on-chip side.

All capacitive terms use the same single calibration scale as the simple
model (:data:`repro.energy.params.CAPACITIVE_SCALE`), so the comparison is
apples to apples.  Relative weights of the components follow the
Kamble/Ghose decomposition (bit lines dominate, word lines next, tag logic
small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.energy.area import tag_bits_per_line
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import SRAMPart, TechnologyParams

__all__ = ["KambleGhoseModel", "OnChipBreakdown"]

#: Relative capacitance weights (cell-capacitance units) of the detailed
#: components; the ratios follow Kamble & Ghose's published decomposition.
BITLINE_WEIGHT = 1.0       # per cell hanging on a bit line
WORDLINE_WEIGHT = 0.5      # per cell on the driven word line
COMPARATOR_WEIGHT = 2.0    # per tag bit compared
OUTPUT_WEIGHT = 4.0        # per data bit driven out


@dataclass(frozen=True)
class OnChipBreakdown:
    """Detailed on-chip per-access components in nJ."""

    bit_lines: float
    word_lines: float
    tag_compare: float
    output_drive: float

    @property
    def total(self) -> float:
        """Sum of the on-chip components."""
        return self.bit_lines + self.word_lines + self.tag_compare + self.output_drive

    @property
    def associativity_overhead(self) -> float:
        """Fraction of on-chip energy spent on tag comparison."""
        return self.tag_compare / self.total if self.total else 0.0


class KambleGhoseModel(EnergyModel):
    """Drop-in alternative to :class:`EnergyModel` with detailed E_hit.

    The off-chip terms (``E_dec``, ``E_io``, ``E_main``) are inherited from
    the paper's model; only the cell-array term is replaced by the detailed
    decomposition, keeping the :class:`EnergyBreakdown` interface (the
    detailed on-chip total is reported as ``e_cell``).
    """

    def __init__(
        self,
        tech: Optional[TechnologyParams] = None,
        sram: Optional[SRAMPart] = None,
        address_bits: int = 32,
    ) -> None:
        super().__init__(tech=tech, sram=sram)
        if address_bits <= 0:
            raise ValueError("address width must be positive")
        self.address_bits = address_bits

    def on_chip_breakdown(
        self, size: int, line_size: int, ways: int
    ) -> OnChipBreakdown:
        """Detailed per-access on-chip components for a geometry."""
        word_line, bit_line = self.cell_geometry(size, line_size, ways)
        num_sets = bit_line  # rows of the array
        data_columns = word_line  # 8 * L * S cells per row
        tag_bits = tag_bits_per_line(size, line_size, ways, self.address_bits)
        tag_columns = tag_bits * ways
        scale = self.tech.beta * self.tech.capacitive_scale_nj

        bit_lines = (
            BITLINE_WEIGHT * (data_columns + tag_columns) * num_sets * scale
        )
        word_lines = WORDLINE_WEIGHT * (data_columns + tag_columns) * scale
        tag_compare = COMPARATOR_WEIGHT * tag_bits * ways * scale
        output_drive = OUTPUT_WEIGHT * 8 * line_size * scale
        return OnChipBreakdown(
            bit_lines=bit_lines,
            word_lines=word_lines,
            tag_compare=tag_compare,
            output_drive=output_drive,
        )

    def e_cell(self, size: int, line_size: int, ways: int) -> float:
        """Detailed on-chip access energy (replaces the simple 8T term)."""
        return self.on_chip_breakdown(size, line_size, ways).total

    def associativity_overhead(
        self, size: int, line_size: int, ways: int
    ) -> float:
        """Tag-comparison share of on-chip energy (the paper's claim is
        that this stays insignificant across the explored space)."""
        return self.on_chip_breakdown(size, line_size, ways).associativity_overhead
