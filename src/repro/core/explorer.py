"""Algorithm MemExplore: the paper's exploration loop.

For every candidate ``(T, L, S, B)`` the explorer

1. places the kernel's arrays off-chip -- by default with the Section 4.1
   padded assignment for the candidate geometry (the paper's "largest
   performance enhancement"), optionally with the dense unoptimized layout
   for the parenthesised comparison columns of Figure 9;
2. generates the exact address trace (tiled when ``B > 1``);
3. measures the miss rate with the LRU cache substrate;
4. evaluates the Section 2.2 cycle model and the Section 2.3 energy model
   (Gray-coded address-bus switching measured on the same trace);
5. records a :class:`~repro.core.metrics.PerformanceEstimate`.

Traces depend only on ``(T, L, B)`` -- the associativity sweep reuses them
-- so the explorer evaluates configurations grouped by trace and keeps a
small memoisation window.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.cache.fastsim import fast_miss_vector
from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig, design_space
from repro.core.cycles import processor_cycles
from repro.core.metrics import PerformanceEstimate
from repro.energy.bus import address_bus_switching
from repro.energy.model import EnergyModel
from repro.kernels.base import Kernel

__all__ = ["ExplorationResult", "MemExplorer", "evaluate_trace"]


def evaluate_trace(
    trace: MemoryTrace,
    config: CacheConfig,
    energy_model: Optional[EnergyModel] = None,
    conflict_free_layout: bool = False,
    gray_code: bool = True,
    events: Optional[int] = None,
) -> PerformanceEstimate:
    """Metrics of one configuration on a concrete trace.

    This is the geometry-only core of the explorer, also used directly for
    workloads that are traces rather than loop nests (e.g. the instruction
    streams of :mod:`repro.icache`).  The tiling field of ``config`` only
    enters the cycle model here -- the caller is responsible for having
    generated the trace in tiled order.

    ``events`` is the paper's *trip count*: the multiplier that turns
    per-event expectations into totals.  Loop-nest workloads pass the
    iteration count (the paper's convention, confirmed against the legible
    Figure 9 values); raw traces default to one event per access.
    """
    model = energy_model if energy_model is not None else EnergyModel()
    line_ids = trace.line_ids(config.line_size)
    miss = fast_miss_vector(line_ids, config.num_sets, config.ways)
    accesses = len(trace)
    if events is None:
        events = accesses
    misses = int(miss.sum())
    miss_rate = misses / accesses if accesses else 0.0

    read_mask = ~trace.is_write
    reads = int(read_mask.sum())
    read_misses = int((miss & read_mask).sum())
    read_miss_rate = read_misses / reads if reads else 0.0

    add_bs = address_bus_switching(trace.addresses, gray=gray_code)
    cycles = processor_cycles(
        miss_rate,
        events,
        ways=config.ways,
        line_size=config.line_size,
        tiling=config.tiling,
    )
    breakdown = model.breakdown(
        config.size,
        config.line_size,
        config.ways,
        hit_rate=1.0 - read_miss_rate,
        miss_rate=read_miss_rate,
        events=events,
        add_bs=add_bs,
    )
    return PerformanceEstimate(
        config=config,
        miss_rate=miss_rate,
        cycles=cycles,
        energy_nj=breakdown.total,
        events=events,
        accesses=accesses,
        reads=reads,
        read_miss_rate=read_miss_rate,
        add_bs=add_bs,
        conflict_free_layout=conflict_free_layout,
        energy_breakdown=breakdown,
    )


class ExplorationResult:
    """Ordered collection of estimates with selection helpers."""

    def __init__(self, estimates: Sequence[PerformanceEstimate]) -> None:
        self.estimates: List[PerformanceEstimate] = list(estimates)

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(self.estimates)

    def __getitem__(self, i: int) -> PerformanceEstimate:
        return self.estimates[i]

    def min_energy(
        self, cycle_bound: Optional[float] = None
    ) -> Optional[PerformanceEstimate]:
        """Minimum-energy configuration, optionally under a cycle bound."""
        candidates = [
            e
            for e in self.estimates
            if cycle_bound is None or e.cycles <= cycle_bound
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.energy_nj, e.cycles))

    def min_cycles(
        self, energy_bound: Optional[float] = None
    ) -> Optional[PerformanceEstimate]:
        """Minimum-time configuration, optionally under an energy bound."""
        candidates = [
            e
            for e in self.estimates
            if energy_bound is None or e.energy_nj <= energy_bound
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.cycles, e.energy_nj))

    def for_config(self, config: CacheConfig) -> PerformanceEstimate:
        """The estimate recorded for an exact configuration."""
        for estimate in self.estimates:
            if estimate.config == config:
                return estimate
        raise KeyError(f"no estimate for configuration {config}")

    def to_rows(self) -> List[Tuple[str, float, float, float]]:
        """(label, miss rate, cycles, energy) rows for tabular output."""
        return [
            (e.config.label(full=True), e.miss_rate, e.cycles, e.energy_nj)
            for e in self.estimates
        ]


class MemExplorer:
    """Run Algorithm MemExplore over one kernel.

    Parameters
    ----------
    kernel:
        The workload.  Estimates cover **one** invocation; the Section 5
        composite model applies the ``trip(j)`` weights.
    energy_model:
        Section 2.3 model (technology constants + off-chip ``Em``).
    optimize_layout:
        Apply the Section 4.1 assignment per ``(T, L)`` (default); when
        False, use the dense unoptimized placement throughout.
    gray_code:
        Gray-code the address bus when measuring ``Add_bs``.
    """

    def __init__(
        self,
        kernel: Kernel,
        energy_model: Optional[EnergyModel] = None,
        optimize_layout: bool = True,
        gray_code: bool = True,
    ) -> None:
        self.kernel = kernel
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.optimize_layout = optimize_layout
        self.gray_code = gray_code
        self._trace_key: Optional[Tuple[int, int, int]] = None
        self._trace: Optional[MemoryTrace] = None
        self._trace_conflict_free = False

    def _trace_for(self, config: CacheConfig) -> Tuple[MemoryTrace, bool]:
        key = (config.size, config.line_size, config.tiling)
        if key != self._trace_key:
            if self.optimize_layout:
                assignment = self.kernel.optimized_layout(
                    config.size, config.line_size
                )
                layout = assignment.layout
                conflict_free = assignment.conflict_free
            else:
                layout = self.kernel.default_layout()
                conflict_free = False
            self._trace = self.kernel.trace(layout=layout, tile=config.tiling)
            self._trace_key = key
            self._trace_conflict_free = conflict_free
        return self._trace, self._trace_conflict_free

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """Estimate miss rate, cycles and energy for one configuration."""
        trace, conflict_free = self._trace_for(config)
        return evaluate_trace(
            trace,
            config,
            energy_model=self.energy_model,
            conflict_free_layout=conflict_free,
            gray_code=self.gray_code,
            events=self.kernel.nest.iterations,
        )

    def explore(
        self,
        configs: Optional[Iterable[CacheConfig]] = None,
        max_size: int = 1024,
        progress: Optional[Callable[[PerformanceEstimate], None]] = None,
        **space_kwargs,
    ) -> ExplorationResult:
        """Evaluate a configuration set (default: the full MemExplore space).

        ``space_kwargs`` are forwarded to
        :func:`~repro.core.config.design_space` when ``configs`` is not
        given.  Configurations are re-ordered so that the associativity
        sweep shares each generated trace.
        """
        if configs is None:
            configs = design_space(max_size=max_size, **space_kwargs)
        ordered = sorted(
            configs,
            key=lambda c: (c.size, c.line_size, c.tiling, c.ways),
        )
        estimates = []
        for config in ordered:
            estimate = self.evaluate(config)
            estimates.append(estimate)
            if progress is not None:
                progress(estimate)
        return ExplorationResult(estimates)
