"""Algorithm MemExplore: the paper's exploration loop.

For every candidate ``(T, L, S, B)`` the explorer

1. places the kernel's arrays off-chip -- by default with the Section 4.1
   padded assignment for the candidate geometry (the paper's "largest
   performance enhancement"), optionally with the dense unoptimized layout
   for the parenthesised comparison columns of Figure 9;
2. generates the exact address trace (tiled when ``B > 1``);
3. measures the miss rate through a pluggable backend;
4. evaluates the Section 2.2 cycle model and the Section 2.3 energy model
   (Gray-coded address-bus switching measured on the same trace);
5. records a :class:`~repro.core.metrics.PerformanceEstimate`.

The pipeline itself lives in :mod:`repro.engine`; :class:`MemExplorer` is
its loop-nest consumer.  Traces depend only on ``(T, L, B)`` and miss
vectors only on ``(trace, sets, ways)``, so the engine's process-wide
:class:`~repro.engine.cache.EvalCache` shares them across the
associativity sweep, across explorer instances and across layers.
"""

from __future__ import annotations

import logging
import warnings
from typing import Callable, Iterable, Optional, Tuple, Union

from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.energy.bus import address_bus_switching
from repro.energy.model import EnergyModel
from repro.engine.backends import Backend, get_backend
from repro.engine.evaluator import Evaluator, assemble_estimate
from repro.engine.result import ExplorationResult
from repro.engine.workload import KernelWorkload, TraceBundle
from repro.kernels.base import Kernel

__all__ = ["ExplorationResult", "MemExplorer", "evaluate_trace"]

logger = logging.getLogger(__name__)


def evaluate_trace(
    trace: MemoryTrace,
    config: CacheConfig,
    energy_model: Optional[EnergyModel] = None,
    conflict_free_layout: bool = False,
    gray_code: bool = True,
    events: Optional[int] = None,
    backend: Union[str, Backend, None] = None,
) -> PerformanceEstimate:
    """Metrics of one configuration on a concrete trace.

    This is the geometry-only core of the explorer, also used directly for
    workloads that are traces rather than loop nests (e.g. the instruction
    streams of :mod:`repro.icache`).  The tiling field of ``config`` only
    enters the cycle model here -- the caller is responsible for having
    generated the trace in tiled order.

    ``events`` is the paper's *trip count*: the multiplier that turns
    per-event expectations into totals.  Loop-nest workloads pass the
    iteration count (the paper's convention, confirmed against the legible
    Figure 9 values); raw traces default to one event per access.

    Implemented on :mod:`repro.engine`; ``backend`` selects the miss
    measurement (default ``fastsim``).  One-shot calls bypass the engine
    cache -- wrap the trace in a
    :class:`~repro.engine.workload.TraceWorkload` and an
    :class:`~repro.engine.evaluator.Evaluator` to memoise repeated sweeps.
    """
    model = energy_model if energy_model is not None else EnergyModel()
    resolved = get_backend(backend)
    bundle = TraceBundle(
        trace=trace, conflict_free=conflict_free_layout, events=events
    )
    measurement = resolved.measure(trace, config)
    add_bs = address_bus_switching(trace.addresses, gray=gray_code)
    return assemble_estimate(bundle, config, measurement, model, add_bs)


class MemExplorer:
    """Run Algorithm MemExplore over one kernel.

    A thin consumer of :class:`repro.engine.Evaluator` that keeps the
    historical interface.

    Parameters
    ----------
    kernel:
        The workload.  Estimates cover **one** invocation; the Section 5
        composite model applies the ``trip(j)`` weights.
    energy_model:
        Section 2.3 model (technology constants + off-chip ``Em``).
    optimize_layout:
        Apply the Section 4.1 assignment per ``(T, L)`` (default); when
        False, use the dense unoptimized placement throughout.
    gray_code:
        Gray-code the address bus when measuring ``Add_bs``.
    backend:
        Miss-measurement backend name or instance (``fastsim``,
        ``reference``, ``sampled``, ``analytic``).
    """

    def __init__(
        self,
        kernel: Kernel,
        energy_model: Optional[EnergyModel] = None,
        optimize_layout: bool = True,
        gray_code: bool = True,
        backend: Union[str, Backend, None] = None,
    ) -> None:
        self.kernel = kernel
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.optimize_layout = optimize_layout
        self.gray_code = gray_code
        self.evaluator = Evaluator(
            KernelWorkload(kernel, optimize_layout=optimize_layout),
            backend=backend,
            energy_model=self.energy_model,
            gray_code=gray_code,
        )

    @property
    def backend(self) -> Backend:
        """The miss-measurement backend in use."""
        return self.evaluator.backend

    def _trace_for(self, config: CacheConfig) -> Tuple[MemoryTrace, bool]:
        """Deprecated: the engine's :class:`EvalCache` memoises traces now."""
        warnings.warn(
            "MemExplorer._trace_for is deprecated; traces are managed by "
            "repro.engine (KernelWorkload.trace_for + EvalCache)",
            DeprecationWarning,
            stacklevel=2,
        )
        bundle = self.evaluator._bundle_for(config)
        return bundle.trace, bundle.conflict_free

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """Estimate miss rate, cycles and energy for one configuration."""
        return self.evaluator.evaluate(config)

    def explore(
        self,
        configs: Optional[Iterable[CacheConfig]] = None,
        max_size: int = 1024,
        progress: Optional[Callable[[PerformanceEstimate], None]] = None,
        jobs: int = 1,
        resilience=None,
        **space_kwargs,
    ) -> ExplorationResult:
        """Evaluate a configuration set (default: the full MemExplore space).

        ``space_kwargs`` are forwarded to
        :func:`~repro.core.config.design_space` when ``configs`` is not
        given.  Configurations are re-ordered so that the associativity
        sweep shares each generated trace; ``jobs > 1`` distributes the
        sweep across processes with bit-identical results.  ``resilience``
        (a :class:`~repro.engine.resilience.ResilienceOptions`) opts into
        per-chunk retries, timeouts and checkpoint/resume.
        """
        logger.info(
            "MemExplore: kernel=%s backend=%s optimize_layout=%s jobs=%d",
            self.kernel.name,
            self.backend.name,
            self.optimize_layout,
            jobs,
        )
        return self.evaluator.sweep(
            configs=configs,
            max_size=max_size,
            jobs=jobs,
            progress=progress,
            resilience=resilience,
            **space_kwargs,
        )
