"""Energy-time Pareto analysis.

The paper's central observation is that cycles and energy pull in different
directions -- configurations that minimise one are usually not minimal in
the other -- so the useful summary of an exploration is the (cycles, energy)
Pareto frontier from which a designer picks once the bounds are known.

Beyond the estimate-based frontier the module provides objective-space
primitives used by the multi-objective search subsystem (``repro.moo``):
``dominates``/``pareto_points`` over plain objective tuples (minimisation,
deduplicated, deterministically ordered) and an exact ``hypervolume`` for
two and three objectives against a fixed reference point.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core.metrics import PerformanceEstimate

__all__ = [
    "dominated_by_any",
    "dominates",
    "hypervolume",
    "pareto_front",
    "pareto_points",
    "tradeoff_range",
]

Point = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimisation).

    ``a`` dominates ``b`` when it is no worse in every objective and strictly
    better in at least one.  Vectors must have equal length.
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def pareto_points(points: Iterable[Sequence[float]]) -> List[Point]:
    """Non-dominated subset of objective tuples, deduplicated and sorted.

    Equal-objective points collapse to one representative, and the result is
    ordered lexicographically -- so the output is a pure function of the
    *set* of input points, independent of input order (the determinism the
    search archive relies on under parallel evaluation).
    """
    unique = sorted({tuple(float(v) for v in p) for p in points})
    if unique and any(len(p) != len(unique[0]) for p in unique):
        raise ValueError("objective vectors differ in length")
    return [p for p in unique if not any(dominates(q, p) for q in unique if q != p)]


def _hypervolume_2d(points: Sequence[Point], reference: Point) -> float:
    """Exact 2-D hypervolume via a sweep over the sorted frontier."""
    front = [p for p in pareto_points(points) if p[0] < reference[0] and p[1] < reference[1]]
    volume = 0.0
    prev_y = reference[1]
    for x, y in front:  # sorted by x ascending => y strictly descending
        volume += (reference[0] - x) * (prev_y - y)
        prev_y = y
    return volume


def _hypervolume_3d(points: Sequence[Point], reference: Point) -> float:
    """Exact 3-D hypervolume by slicing along the third objective.

    Between consecutive distinct z values the dominated region's cross
    section is constant, so the volume is the 2-D hypervolume of the points
    at or below the slab, times the slab height.
    """
    inside = [
        p
        for p in pareto_points(points)
        if p[0] < reference[0] and p[1] < reference[1] and p[2] < reference[2]
    ]
    if not inside:
        return 0.0
    levels = sorted({p[2] for p in inside})
    volume = 0.0
    for index, z in enumerate(levels):
        z_next = levels[index + 1] if index + 1 < len(levels) else reference[2]
        active = [p[:2] for p in inside if p[2] <= z]
        volume += _hypervolume_2d(active, reference[:2]) * (z_next - z)
    return volume


def hypervolume(points: Iterable[Sequence[float]], reference: Sequence[float]) -> float:
    """Exact hypervolume dominated by ``points`` w.r.t. ``reference`` (minimisation).

    The reference must be weakly worse than every point that should count;
    points at or beyond the reference in any objective contribute nothing.
    Supports 2 and 3 objectives exactly (1 trivially); higher dimensions are
    rejected rather than approximated.
    """
    ref = tuple(float(v) for v in reference)
    pts = [tuple(float(v) for v in p) for p in points]
    for p in pts:
        if len(p) != len(ref):
            raise ValueError(
                f"point dimensionality {len(p)} does not match reference {len(ref)}"
            )
    if not pts:
        return 0.0
    if len(ref) == 1:
        best = min(p[0] for p in pts)
        return max(0.0, ref[0] - best)
    if len(ref) == 2:
        return _hypervolume_2d(pts, ref)
    if len(ref) == 3:
        return _hypervolume_3d(pts, ref)
    raise ValueError("hypervolume supports 1, 2 or 3 objectives")


def dominated_by_any(
    estimate: PerformanceEstimate, others: Sequence[PerformanceEstimate]
) -> bool:
    """True when some other estimate Pareto-dominates this one."""
    return any(other.dominates(estimate) for other in others)


def _config_key(estimate: PerformanceEstimate) -> Tuple[int, int, int, int]:
    config = estimate.config
    return (config.size, config.line_size, config.tiling, config.ways)


def pareto_front(
    estimates: Sequence[PerformanceEstimate],
) -> List[PerformanceEstimate]:
    """Non-dominated estimates, sorted by increasing cycles.

    Duplicate (cycles, energy) points keep a single representative -- the
    one with the smallest configuration key, independent of input order --
    so the frontier is strictly improving in energy as cycles increase and
    identical estimate sets always yield the identical frontier.
    """
    ordered = sorted(
        enumerate(estimates),
        key=lambda pair: (
            pair[1].cycles,
            pair[1].energy_nj,
            _config_key(pair[1]),
            pair[0],
        ),
    )
    front: List[PerformanceEstimate] = []
    best_energy = float("inf")
    last_point: Tuple[float, float] = (float("nan"), float("nan"))
    for _, estimate in ordered:
        point = (estimate.cycles, estimate.energy_nj)
        if estimate.energy_nj < best_energy and point != last_point:
            front.append(estimate)
            best_energy = estimate.energy_nj
            last_point = point
    return front


def tradeoff_range(
    estimates: Sequence[PerformanceEstimate],
) -> Tuple[PerformanceEstimate, PerformanceEstimate]:
    """The two ends of the frontier: (min-time point, min-energy point)."""
    if not estimates:
        raise ValueError("no estimates to analyse")
    front = pareto_front(estimates)
    return front[0], front[-1]
