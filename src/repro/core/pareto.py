"""Energy-time Pareto analysis.

The paper's central observation is that cycles and energy pull in different
directions -- configurations that minimise one are usually not minimal in
the other -- so the useful summary of an exploration is the (cycles, energy)
Pareto frontier from which a designer picks once the bounds are known.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.metrics import PerformanceEstimate

__all__ = ["dominated_by_any", "pareto_front", "tradeoff_range"]


def dominated_by_any(
    estimate: PerformanceEstimate, others: Sequence[PerformanceEstimate]
) -> bool:
    """True when some other estimate Pareto-dominates this one."""
    return any(other.dominates(estimate) for other in others)


def pareto_front(
    estimates: Sequence[PerformanceEstimate],
) -> List[PerformanceEstimate]:
    """Non-dominated estimates, sorted by increasing cycles.

    Duplicate (cycles, energy) points keep a single representative (the
    first in input order), so the frontier is strictly improving in energy
    as cycles increase.
    """
    ordered = sorted(
        enumerate(estimates), key=lambda pair: (pair[1].cycles, pair[1].energy_nj, pair[0])
    )
    front: List[PerformanceEstimate] = []
    best_energy = float("inf")
    last_point: Tuple[float, float] = (float("nan"), float("nan"))
    for _, estimate in ordered:
        point = (estimate.cycles, estimate.energy_nj)
        if estimate.energy_nj < best_energy and point != last_point:
            front.append(estimate)
            best_energy = estimate.energy_nj
            last_point = point
    return front


def tradeoff_range(
    estimates: Sequence[PerformanceEstimate],
) -> Tuple[PerformanceEstimate, PerformanceEstimate]:
    """The two ends of the frontier: (min-time point, min-energy point)."""
    if not estimates:
        raise ValueError("no estimates to analyse")
    front = pareto_front(estimates)
    return front[0], front[-1]
