"""Deprecated home of the pruned search heuristics (now ``repro.moo``).

Greedy coordinate descent and the bound-pruned minimum-energy sweep moved
to :mod:`repro.moo.heuristics`, where they are registered under the
``searcher`` registry kind next to the evolutionary multi-objective
strategies (so ``repro plugins`` lists every searcher with provenance).
This module keeps the historical call paths working behind
``DeprecationWarning`` shims; :class:`SearchOutcome` still lives here and
is re-used by the new implementations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.core.config import CacheConfig, powers_of_two
from repro.core.metrics import PerformanceEstimate
from repro.engine.result import ExplorationResult

__all__ = ["SearchOutcome", "greedy_descent", "pruned_min_energy"]

Evaluator = Callable[[CacheConfig], PerformanceEstimate]


@dataclass(frozen=True)
class SearchOutcome:
    """Best point found plus the cost of finding it."""

    best: PerformanceEstimate
    evaluations: int
    visited: Tuple[CacheConfig, ...]

    @property
    def result(self) -> ExplorationResult:
        """The visited estimates are not retained; expose the best only."""
        return ExplorationResult([self.best])


def _warn_moved(name: str) -> None:
    warnings.warn(
        f"repro.core.search.{name} moved to repro.moo.heuristics.{name}; "
        "this shim will be removed in a future release",
        DeprecationWarning,
        stacklevel=3,
    )


def greedy_descent(
    evaluator: Any,
    objective: str = "energy",
    seed: Optional[CacheConfig] = None,
    sizes: Sequence[int] = powers_of_two(16, 1024),
    line_sizes: Sequence[int] = (4, 8, 16, 32, 64),
    ways: Sequence[int] = (1, 2, 4, 8),
    tilings: Sequence[int] = (1, 2, 4, 8),
    max_rounds: int = 8,
) -> SearchOutcome:
    """Deprecated shim for :func:`repro.moo.heuristics.greedy_descent`."""
    _warn_moved("greedy_descent")
    from repro.moo.heuristics import greedy_descent as _impl

    return _impl(
        evaluator,
        objective=objective,
        seed=seed,
        sizes=sizes,
        line_sizes=line_sizes,
        ways=ways,
        tilings=tilings,
        max_rounds=max_rounds,
    )


def pruned_min_energy(
    evaluator: Any,
    configs: Sequence[CacheConfig],
    hit_energy_bound: Callable[[CacheConfig], float],
) -> SearchOutcome:
    """Deprecated shim for :func:`repro.moo.heuristics.pruned_min_energy`."""
    _warn_moved("pruned_min_energy")
    from repro.moo.heuristics import pruned_min_energy as _impl

    return _impl(evaluator, configs, hit_energy_bound)
