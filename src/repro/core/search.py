"""Exploration strategies: exhaustive vs pruned search.

Algorithm MemExplore is exhaustive -- fine for the paper's few hundred
configurations, but the point of "design automation" is scaling to spaces
where evaluations are expensive (each one is a trace simulation).  This
module adds two classic pruned strategies on top of any evaluator:

* **Greedy coordinate descent** -- start from a seed configuration, repeat
  sweeps over one parameter at a time (T, then L, then S, then B), keeping
  the best neighbour, until a full round improves nothing.  Evaluates
  ``O(rounds * (|T|+|L|+|S|+|B|))`` points instead of the product.
* **Bound pruning** -- during an exhaustive sweep, skip whole ``(T, L)``
  groups whose *lower bound* on energy (the all-hit energy, which only
  grows with ``T``) already exceeds the best total seen; sound for the
  minimum-energy objective because hit energy is a true lower bound.

Both strategies consume *any* evaluator -- a bare callable, a
:class:`~repro.engine.evaluator.Evaluator`, or a legacy explorer's bound
``evaluate`` method -- so they compose with every backend the engine
offers, and both return the same
:class:`~repro.engine.result.ExplorationResult` interface plus an
evaluation count, so the efficiency/optimality trade-off is measurable
(``benchmarks/test_ablation_search.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig, powers_of_two
from repro.core.metrics import PerformanceEstimate
from repro.engine.result import ExplorationResult

__all__ = ["SearchOutcome", "greedy_descent", "pruned_min_energy"]

Evaluator = Callable[[CacheConfig], PerformanceEstimate]


def _as_callable(evaluator: Any) -> Evaluator:
    """Accept engine evaluators (and explorers) anywhere a callable works."""
    evaluate = getattr(evaluator, "evaluate", None)
    if callable(evaluate):
        return evaluate
    return evaluator


@dataclass(frozen=True)
class SearchOutcome:
    """Best point found plus the cost of finding it."""

    best: PerformanceEstimate
    evaluations: int
    visited: Tuple[CacheConfig, ...]

    @property
    def result(self) -> ExplorationResult:
        """The visited estimates are not retained; expose the best only."""
        return ExplorationResult([self.best])


def _candidate_values(
    kind: str,
    config: CacheConfig,
    sizes: Sequence[int],
    line_sizes: Sequence[int],
    ways: Sequence[int],
    tilings: Sequence[int],
) -> List[CacheConfig]:
    candidates = []
    if kind == "size":
        pool = [CacheConfig(v, config.line_size, config.ways, config.tiling)
                for v in sizes if v >= config.line_size * config.ways]
    elif kind == "line":
        pool = [CacheConfig(config.size, v, config.ways, config.tiling)
                for v in line_sizes if v * config.ways <= config.size]
    elif kind == "ways":
        pool = [CacheConfig(config.size, config.line_size, v, config.tiling)
                for v in ways if v * config.line_size <= config.size]
    else:
        pool = [CacheConfig(config.size, config.line_size, config.ways, v)
                for v in tilings]
    for candidate in pool:
        try:
            candidates.append(candidate)
        except ValueError:
            continue
    return candidates


def greedy_descent(
    evaluator: Evaluator,
    objective: str = "energy",
    seed: Optional[CacheConfig] = None,
    sizes: Sequence[int] = powers_of_two(16, 1024),
    line_sizes: Sequence[int] = (4, 8, 16, 32, 64),
    ways: Sequence[int] = (1, 2, 4, 8),
    tilings: Sequence[int] = (1, 2, 4, 8),
    max_rounds: int = 8,
) -> SearchOutcome:
    """Coordinate-descent search for the best configuration.

    ``objective`` is ``"energy"`` or ``"cycles"``.  Finds a local optimum
    of the design space; on the bundled kernels' well-behaved surfaces it
    reaches the global optimum with ~10x fewer evaluations (measured by
    the search ablation bench).
    """
    if objective not in ("energy", "cycles"):
        raise ValueError("objective must be 'energy' or 'cycles'")
    key = (
        (lambda e: (e.energy_nj, e.cycles))
        if objective == "energy"
        else (lambda e: (e.cycles, e.energy_nj))
    )
    if seed is None:
        seed = CacheConfig(sizes[len(sizes) // 2], line_sizes[0])
    evaluate_fn = _as_callable(evaluator)
    cache: dict = {}
    visited: List[CacheConfig] = []

    def evaluate(config: CacheConfig) -> PerformanceEstimate:
        if config not in cache:
            cache[config] = evaluate_fn(config)
            visited.append(config)
        return cache[config]

    best = evaluate(seed)
    for _ in range(max_rounds):
        improved = False
        for kind in ("size", "line", "ways", "tiling"):
            candidates = _candidate_values(
                kind, best.config, sizes, line_sizes, ways, tilings
            )
            for candidate in candidates:
                estimate = evaluate(candidate)
                if key(estimate) < key(best):
                    best = estimate
                    improved = True
        if not improved:
            break
    return SearchOutcome(
        best=best, evaluations=len(visited), visited=tuple(visited)
    )


def pruned_min_energy(
    evaluator: Evaluator,
    configs: Sequence[CacheConfig],
    hit_energy_bound: Callable[[CacheConfig], float],
) -> SearchOutcome:
    """Exhaustive minimum-energy sweep with sound lower-bound pruning.

    ``hit_energy_bound(config)`` must be a true lower bound on the total
    energy of ``config`` (the all-hit energy ``events * E_hit`` is one:
    misses only add energy).  Configurations whose bound exceeds the best
    total seen are skipped without evaluation, preserving optimality.
    """
    best: Optional[PerformanceEstimate] = None
    visited: List[CacheConfig] = []
    evaluate_fn = _as_callable(evaluator)
    ordered = sorted(configs, key=lambda c: (c.size, c.line_size, c.tiling, c.ways))
    for config in ordered:
        if best is not None and hit_energy_bound(config) > best.energy_nj:
            continue
        estimate = evaluate_fn(config)
        visited.append(config)
        if best is None or (estimate.energy_nj, estimate.cycles) < (
            best.energy_nj,
            best.cycles,
        ):
            best = estimate
    if best is None:
        raise ValueError("no configurations to search")
    return SearchOutcome(
        best=best, evaluations=len(visited), visited=tuple(visited)
    )
