"""Constraint-driven configuration selection.

The exploration's purpose: "find the minimum energy cache configuration if
time is the hard constraint, or the minimum time cache configuration if
energy is the hard constraint".  The paper's Compress walk-through: the
unconstrained minimum-energy point is C16L4 and minimum-time is C512L64;
bounding cycles at 5,000 moves the minimum-energy choice to C64L16, and
bounding energy at 5,500 nJ keeps C512L64 as the minimum-time choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.metrics import PerformanceEstimate

__all__ = ["SelectionError", "Selection", "select_configuration"]


class SelectionError(ValueError):
    """No configuration satisfies the requested bounds."""


@dataclass(frozen=True)
class Selection:
    """Outcome of a constrained selection."""

    chosen: PerformanceEstimate
    objective: str
    cycle_bound: Optional[float] = None
    energy_bound: Optional[float] = None

    def __str__(self) -> str:
        bounds = []
        if self.cycle_bound is not None:
            bounds.append(f"cycles <= {self.cycle_bound:g}")
        if self.energy_bound is not None:
            bounds.append(f"energy <= {self.energy_bound:g} nJ")
        suffix = f" s.t. {', '.join(bounds)}" if bounds else ""
        return f"min {self.objective}{suffix}: {self.chosen}"


def _feasible(
    estimates: Sequence[PerformanceEstimate],
    cycle_bound: Optional[float],
    energy_bound: Optional[float],
) -> Sequence[PerformanceEstimate]:
    return [
        e
        for e in estimates
        if (cycle_bound is None or e.cycles <= cycle_bound)
        and (energy_bound is None or e.energy_nj <= energy_bound)
    ]


def select_configuration(
    estimates: Sequence[PerformanceEstimate],
    objective: str = "energy",
    cycle_bound: Optional[float] = None,
    energy_bound: Optional[float] = None,
) -> Selection:
    """Pick the best configuration under the paper's three scenarios.

    ``objective`` is ``"energy"`` (minimise energy, typically with a cycle
    bound), ``"cycles"`` (minimise time, typically with an energy bound),
    or ``"edp"`` (minimise the energy-delay product -- the balanced metric
    that needs no bound at all).
    Raises :class:`SelectionError` when no configuration meets the bounds.
    """
    if objective not in ("energy", "cycles", "edp"):
        raise ValueError("objective must be 'energy', 'cycles' or 'edp'")
    if not estimates:
        raise SelectionError("no configurations were explored")
    feasible = _feasible(estimates, cycle_bound, energy_bound)
    if not feasible:
        raise SelectionError(
            f"no configuration satisfies cycle_bound={cycle_bound}, "
            f"energy_bound={energy_bound}"
        )
    if objective == "energy":
        chosen = min(feasible, key=lambda e: (e.energy_nj, e.cycles))
    elif objective == "cycles":
        chosen = min(feasible, key=lambda e: (e.cycles, e.energy_nj))
    else:
        chosen = min(feasible, key=lambda e: (e.energy_delay_product, e.cycles))
    return Selection(
        chosen=chosen,
        objective=objective,
        cycle_bound=cycle_bound,
        energy_bound=energy_bound,
    )
