"""Performance records: the paper's three metrics per design point.

:class:`PerformanceEstimate` is the result of evaluating one
:class:`~repro.core.config.CacheConfig` on one workload: miss rate, processor
cycles and energy (plus the supporting measurements).  It doubles as the
Section 5 *record* ``(T, L, S, B, mr, C, E)`` that the composite-program
model aggregates; :meth:`PerformanceEstimate.record` emits exactly that
tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import CacheConfig
from repro.energy.model import EnergyBreakdown

__all__ = ["PerformanceEstimate"]


@dataclass(frozen=True)
class PerformanceEstimate:
    """Metrics of one configuration on one workload.

    ``miss_rate`` covers all accesses and ``read_miss_rate`` follows the
    paper's read-only energy accounting.  ``events`` is the paper's
    *trip count* -- the number of loop iterations (or trace entries for raw
    traces) by which the per-event expectations are scaled into the
    ``cycles`` and ``energy_nj`` totals.  ``accesses``/``reads`` record the
    underlying trace volume for reference.
    """

    config: CacheConfig
    miss_rate: float
    cycles: float
    energy_nj: float
    events: int
    accesses: int
    reads: int
    read_miss_rate: float
    add_bs: float
    conflict_free_layout: bool = False
    energy_breakdown: Optional[EnergyBreakdown] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError("miss rate must lie in [0, 1]")
        if not 0.0 <= self.read_miss_rate <= 1.0:
            raise ValueError("read miss rate must lie in [0, 1]")
        if self.cycles < 0 or self.energy_nj < 0:
            raise ValueError("cycles and energy must be non-negative")
        if self.accesses < 0 or self.reads < 0 or self.reads > self.accesses:
            raise ValueError("inconsistent access counts")
        if self.events < 0:
            raise ValueError("event count must be non-negative")

    @property
    def hit_rate(self) -> float:
        """Overall hit rate."""
        return 1.0 - self.miss_rate

    @property
    def energy_per_event_nj(self) -> float:
        """Average energy per trip-count event (0 for an empty run)."""
        return self.energy_nj / self.events if self.events else 0.0

    @property
    def cycles_per_event(self) -> float:
        """Average cycles per trip-count event (0 for an empty run)."""
        return self.cycles / self.events if self.events else 0.0

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product (nJ x cycles).

        The metric that succeeded this paper's era of pure-energy
        optimisation: it penalises configurations that buy energy with
        disproportionate slowdown, and typically lands between the
        min-energy and min-time corners of the Pareto frontier.
        """
        return self.energy_nj * self.cycles

    def average_power_mw(self, clock_mhz: float) -> float:
        """Average power at a clock rate: ``E / (cycles / f)``.

        The paper reports energy; embedded datasheets quote milliwatts.
        With energy in nJ and the runtime ``cycles / f_MHz`` in
        microseconds, the quotient is directly in mW.
        """
        if clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.cycles == 0:
            return 0.0
        runtime_us = self.cycles / clock_mhz
        return self.energy_nj / runtime_us  # nJ/us == mW

    def record(self) -> Tuple[int, int, int, int, float, float, float]:
        """The Section 5 record ``(T, L, S, B, mr, C, E)``."""
        return (
            self.config.size,
            self.config.line_size,
            self.config.ways,
            self.config.tiling,
            self.miss_rate,
            self.cycles,
            self.energy_nj,
        )

    def dominates(self, other: "PerformanceEstimate") -> bool:
        """Pareto dominance on (cycles, energy): no worse in both, better in one."""
        if self.cycles > other.cycles or self.energy_nj > other.energy_nj:
            return False
        return self.cycles < other.cycles or self.energy_nj < other.energy_nj

    def __str__(self) -> str:
        return (
            f"{self.config}: mr={self.miss_rate:.4f} "
            f"cycles={self.cycles:.0f} energy={self.energy_nj:.0f} nJ"
        )
