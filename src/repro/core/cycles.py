"""Section 2.2 processor-cycle model.

The paper adopts Hennessy & Patterson's numbers: hits cost 1 / 1.1 / 1.12 /
1.14 cycles for 1/2/4/8-way caches ("greater associativity can come at the
cost of increased hit time"), and misses cost 40/40/42/44/48/56/72 cycles
for line sizes 4/8/16/32/64/128/256 ("increasing the line size reduces the
miss rate while increasing the miss penalty").  The cycle count is::

    cycles = hit_rate  * trip_count * cycles_per_hit
           + miss_rate * trip_count * (tiling_size + cycles_per_miss)

where the tiling size enters the miss penalty: a tiled loop pays extra
control overhead on the refill path.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "CYCLES_PER_HIT",
    "CYCLES_PER_MISS",
    "cycles_per_hit",
    "cycles_per_miss",
    "processor_cycles",
]

#: Hit latency in cycles, by set associativity (paper Section 2.2).
CYCLES_PER_HIT: Dict[int, float] = {1: 1.0, 2: 1.1, 4: 1.12, 8: 1.14}

#: Miss penalty in cycles, by line size in bytes (paper Section 2.2).
CYCLES_PER_MISS: Dict[int, int] = {
    4: 40,
    8: 40,
    16: 42,
    32: 44,
    64: 48,
    128: 56,
    256: 72,
}


def cycles_per_hit(ways: int) -> float:
    """Hit latency for an ``S``-way cache.

    The paper tabulates 1..8 ways; wider caches extend the table's pattern
    (+0.02 cycles per doubling beyond 4-way), narrower than 1 is invalid.
    """
    if ways in CYCLES_PER_HIT:
        return CYCLES_PER_HIT[ways]
    if ways < 1 or ways & (ways - 1):
        raise ValueError(f"associativity must be a power of two >= 1, got {ways}")
    doublings_past_8 = ways.bit_length() - 4  # 16 -> 1, 32 -> 2, ...
    return CYCLES_PER_HIT[8] + 0.02 * doublings_past_8


def cycles_per_miss(line_size: int) -> float:
    """Miss penalty for an ``L``-byte line.

    Lines below 4 bytes pay the 4-byte penalty (the 40-cycle base is
    dominated by latency, not transfer); lines beyond 256 bytes extend the
    table's doubling pattern (+16 cycles per doubling, its final increment).
    """
    if line_size in CYCLES_PER_MISS:
        return float(CYCLES_PER_MISS[line_size])
    if line_size < 1 or line_size & (line_size - 1):
        raise ValueError(f"line size must be a power of two >= 1, got {line_size}")
    if line_size < 4:
        return float(CYCLES_PER_MISS[4])
    doublings_past_256 = line_size.bit_length() - 9  # 512 -> 1, ...
    return float(CYCLES_PER_MISS[256] + 16 * doublings_past_256)


def processor_cycles(
    miss_rate: float,
    trip_count: int,
    ways: int = 1,
    line_size: int = 4,
    tiling: int = 1,
) -> float:
    """The Section 2.2 cycle count for one run.

    ``trip_count`` is the total number of memory accesses of the run and
    ``miss_rate`` the fraction of them that missed.
    """
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError("miss rate must lie in [0, 1]")
    if trip_count < 0:
        raise ValueError("trip count must be non-negative")
    if tiling < 1:
        raise ValueError("tiling size must be at least 1")
    hit_rate = 1.0 - miss_rate
    return trip_count * (
        hit_rate * cycles_per_hit(ways)
        + miss_rate * (tiling + cycles_per_miss(line_size))
    )
