"""Persistence for exploration results (CSV and JSON).

An exploration of a large program is expensive enough to be worth saving;
the Section 5 workflow in particular wants per-kernel record tables
``(T, L, S, B, mr, C, E)`` written once and re-aggregated under different
trip counts.  This module round-trips :class:`ExplorationResult` objects
through CSV (the record table, human-diffable) and JSON (full estimates,
including the supporting measurements).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, List, Union

from repro.core.config import CacheConfig
from repro.core.explorer import ExplorationResult
from repro.core.metrics import PerformanceEstimate

__all__ = [
    "load_results_csv",
    "load_results_json",
    "save_results_csv",
    "save_results_json",
]

PathOrFile = Union[str, Path, IO[str]]

_CSV_HEADER = [
    "size", "line_size", "ways", "tiling",
    "miss_rate", "cycles", "energy_nj",
    "events", "accesses", "reads", "read_miss_rate", "add_bs",
    "conflict_free_layout",
]


def _open(target: PathOrFile, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8", newline=""), True
    return target, False


def save_results_csv(result: ExplorationResult, target: PathOrFile) -> int:
    """Write the estimates as a CSV record table; returns the row count."""
    fh, owned = _open(target, "w")
    try:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for e in result:
            writer.writerow(
                [
                    e.config.size, e.config.line_size, e.config.ways,
                    e.config.tiling,
                    repr(e.miss_rate), repr(e.cycles), repr(e.energy_nj),
                    e.events, e.accesses, e.reads,
                    repr(e.read_miss_rate), repr(e.add_bs),
                    int(e.conflict_free_layout),
                ]
            )
    finally:
        if owned:
            fh.close()
    return len(result)


def load_results_csv(source: PathOrFile) -> ExplorationResult:
    """Read a CSV record table back into an :class:`ExplorationResult`."""
    fh, owned = _open(source, "r")
    try:
        reader = csv.DictReader(fh)
        missing = set(_CSV_HEADER) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"results CSV is missing columns: {sorted(missing)}")
        estimates: List[PerformanceEstimate] = []
        for row in reader:
            estimates.append(
                PerformanceEstimate(
                    config=CacheConfig(
                        int(row["size"]), int(row["line_size"]),
                        int(row["ways"]), int(row["tiling"]),
                    ),
                    miss_rate=float(row["miss_rate"]),
                    cycles=float(row["cycles"]),
                    energy_nj=float(row["energy_nj"]),
                    events=int(row["events"]),
                    accesses=int(row["accesses"]),
                    reads=int(row["reads"]),
                    read_miss_rate=float(row["read_miss_rate"]),
                    add_bs=float(row["add_bs"]),
                    conflict_free_layout=bool(int(row["conflict_free_layout"])),
                )
            )
    finally:
        if owned:
            fh.close()
    return ExplorationResult(estimates)


def _estimate_to_dict(e: PerformanceEstimate) -> dict:
    return {
        "config": {
            "size": e.config.size,
            "line_size": e.config.line_size,
            "ways": e.config.ways,
            "tiling": e.config.tiling,
        },
        "miss_rate": e.miss_rate,
        "cycles": e.cycles,
        "energy_nj": e.energy_nj,
        "events": e.events,
        "accesses": e.accesses,
        "reads": e.reads,
        "read_miss_rate": e.read_miss_rate,
        "add_bs": e.add_bs,
        "conflict_free_layout": e.conflict_free_layout,
    }


def save_results_json(result: ExplorationResult, target: PathOrFile) -> int:
    """Write the estimates as JSON; returns the estimate count."""
    payload = {
        "format": "repro.exploration/1",
        "estimates": [_estimate_to_dict(e) for e in result],
    }
    fh, owned = _open(target, "w")
    try:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(result)


def load_results_json(source: PathOrFile) -> ExplorationResult:
    """Read estimates previously written by :func:`save_results_json`."""
    fh, owned = _open(source, "r")
    try:
        payload = json.load(fh)
    finally:
        if owned:
            fh.close()
    if payload.get("format") != "repro.exploration/1":
        raise ValueError("not a repro exploration results file")
    estimates = []
    for item in payload["estimates"]:
        cfg = item["config"]
        estimates.append(
            PerformanceEstimate(
                config=CacheConfig(
                    cfg["size"], cfg["line_size"], cfg["ways"], cfg["tiling"]
                ),
                miss_rate=item["miss_rate"],
                cycles=item["cycles"],
                energy_nj=item["energy_nj"],
                events=item["events"],
                accesses=item["accesses"],
                reads=item["reads"],
                read_miss_rate=item["read_miss_rate"],
                add_bs=item["add_bs"],
                conflict_free_layout=item["conflict_free_layout"],
            )
        )
    return ExplorationResult(estimates)
