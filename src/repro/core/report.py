"""Per-configuration datasheets: every model's view of one design point.

The exploration's three metrics answer "which configuration"; a designer
committing to one also wants the supporting numbers -- area (tag overhead
included), access time, the energy component breakdown, and the miss
structure.  :func:`datasheet` gathers all of it for one
``(kernel, configuration)`` pair, and :func:`render_datasheet` formats it
for terminals and docs (used by the ``memexplore datasheet`` subcommand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.stats import MissClassification
from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.core.metrics import PerformanceEstimate
from repro.energy.area import cache_area_bits, tag_bits_per_line
from repro.energy.model import EnergyModel
from repro.energy.timing import AccessTimeModel
from repro.kernels.base import Kernel

__all__ = ["ConfigDatasheet", "datasheet", "render_datasheet"]


@dataclass(frozen=True)
class ConfigDatasheet:
    """Everything the models say about one (kernel, configuration) pair."""

    kernel_name: str
    estimate: PerformanceEstimate
    miss_classes: MissClassification
    area_bits: int
    tag_bits: int
    relative_hit_time: float
    min_cache_size: int

    @property
    def config(self) -> CacheConfig:
        """The configuration described."""
        return self.estimate.config

    @property
    def tag_overhead_fraction(self) -> float:
        """Share of the storage bits spent on tags and status."""
        data_bits = self.config.size * 8
        return 1.0 - data_bits / self.area_bits


def datasheet(
    kernel: Kernel,
    config: CacheConfig,
    energy_model: Optional[EnergyModel] = None,
    optimize_layout: bool = True,
    timing_model: Optional[AccessTimeModel] = None,
) -> ConfigDatasheet:
    """Assemble the full datasheet for one configuration."""
    explorer = MemExplorer(
        kernel, energy_model=energy_model, optimize_layout=optimize_layout
    )
    estimate = explorer.evaluate(config)
    if optimize_layout:
        layout = kernel.optimized_layout(config.size, config.line_size).layout
    else:
        layout = kernel.default_layout()
    trace = kernel.trace(layout=layout, tile=config.tiling)
    sim = CacheSimulator(CacheGeometry(config.size, config.line_size, config.ways))
    miss_classes = sim.classified_misses(trace)
    timing = timing_model if timing_model is not None else AccessTimeModel()
    return ConfigDatasheet(
        kernel_name=kernel.name,
        estimate=estimate,
        miss_classes=miss_classes,
        area_bits=cache_area_bits(config.size, config.line_size, config.ways),
        tag_bits=tag_bits_per_line(config.size, config.line_size, config.ways),
        relative_hit_time=timing.relative_hit_time(
            config.size, config.line_size, config.ways
        ),
        min_cache_size=kernel.min_cache_size(config.line_size),
    )


def render_datasheet(sheet: ConfigDatasheet) -> str:
    """Human-readable multi-line rendering of a datasheet."""
    e = sheet.estimate
    breakdown = e.energy_breakdown
    lines: List[str] = [
        f"=== {sheet.kernel_name} @ {sheet.config} ===",
        "",
        "metrics",
        f"  miss rate        : {e.miss_rate:.4f} "
        f"(reads only: {e.read_miss_rate:.4f})",
        f"  cycles           : {e.cycles:.0f} "
        f"({e.cycles_per_event:.2f}/iteration)",
        f"  energy           : {e.energy_nj:.0f} nJ "
        f"({e.energy_per_event_nj:.3f} nJ/iteration)",
        "",
        "miss structure",
        f"  compulsory       : {sheet.miss_classes.compulsory}",
        f"  capacity         : {sheet.miss_classes.capacity}",
        f"  conflict         : {sheet.miss_classes.conflict}"
        + ("  (conflict-free layout)" if e.conflict_free_layout else ""),
        f"  Sec-3 min size   : {sheet.min_cache_size} bytes at this line size",
        "",
        "implementation",
        f"  storage          : {sheet.area_bits} bits "
        f"({sheet.tag_overhead_fraction:.1%} tag/status overhead)",
        f"  tag width        : {sheet.tag_bits} bits",
        f"  relative hit time: {sheet.relative_hit_time:.3f}x direct-mapped",
    ]
    if breakdown is not None:
        lines += [
            "",
            "energy components (per read access)",
            f"  E_dec  : {breakdown.e_dec:.5f} nJ",
            f"  E_cell : {breakdown.e_cell:.4f} nJ",
            f"  E_io   : {breakdown.e_io:.4f} nJ (per miss)",
            f"  E_main : {breakdown.e_main:.4f} nJ (per miss)",
        ]
    return "\n".join(lines)
