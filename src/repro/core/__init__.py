"""The paper's primary contribution: Algorithm MemExplore and its metrics.

Workflow: build (or pick) a :class:`~repro.kernels.base.Kernel`, hand it to
:class:`MemExplorer`, sweep :func:`design_space`, then select with
:func:`select_configuration` or inspect the :func:`pareto_front`.  Whole
programs (Section 5) aggregate kernels through :class:`CompositeProgram`.
"""

from repro.core.analytic import (
    AnalyticExplorer,
    analytic_miss_rate,
    analytic_misses,
)
from repro.core.config import CacheConfig, design_space, powers_of_two
from repro.core.cycles import (
    CYCLES_PER_HIT,
    CYCLES_PER_MISS,
    cycles_per_hit,
    cycles_per_miss,
    processor_cycles,
)
from repro.core.metrics import PerformanceEstimate
from repro.core.explorer import ExplorationResult, MemExplorer, evaluate_trace
from repro.core.selection import Selection, SelectionError, select_configuration
from repro.core.pareto import dominated_by_any, pareto_front, tradeoff_range
from repro.core.composite import CompositeProgram, KernelContribution
from repro.core.report import ConfigDatasheet, datasheet, render_datasheet
from repro.core.search import SearchOutcome, greedy_descent, pruned_min_energy
from repro.core.sensitivity import SensitivityRow, tornado
from repro.core.serialize import (
    load_results_csv,
    load_results_json,
    save_results_csv,
    save_results_json,
)

__all__ = [
    "AnalyticExplorer",
    "CYCLES_PER_HIT",
    "CYCLES_PER_MISS",
    "CacheConfig",
    "CompositeProgram",
    "ConfigDatasheet",
    "ExplorationResult",
    "KernelContribution",
    "MemExplorer",
    "PerformanceEstimate",
    "SearchOutcome",
    "Selection",
    "SelectionError",
    "SensitivityRow",
    "cycles_per_hit",
    "cycles_per_miss",
    "analytic_miss_rate",
    "analytic_misses",
    "datasheet",
    "design_space",
    "dominated_by_any",
    "evaluate_trace",
    "load_results_csv",
    "load_results_json",
    "greedy_descent",
    "pareto_front",
    "pruned_min_energy",
    "render_datasheet",
    "powers_of_two",
    "processor_cycles",
    "save_results_csv",
    "save_results_json",
    "select_configuration",
    "tornado",
    "tradeoff_range",
]
