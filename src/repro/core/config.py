"""Cache configurations and the MemExplore design space.

Algorithm MemExplore sweeps, all in powers of two::

    for on-chip memory size M:
      for cache size T (< M):
        for line size L (< T):
          for set associativity S (<= 8):
            for tiling size B (<= T/L):
              estimate performance

:class:`CacheConfig` is one ``(T, L, S, B)`` point; :func:`design_space`
enumerates the sweep.  The paper labels configurations ``C<T>L<L>`` (e.g.
``C64L16``), which :meth:`CacheConfig.label` reproduces, extended with
``S``/``B`` suffixes when they differ from the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional, Sequence, Tuple

__all__ = ["CacheConfig", "design_space", "powers_of_two"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def powers_of_two(low: int, high: int) -> Tuple[int, ...]:
    """All powers of two in ``[low, high]`` (inclusive)."""
    if low <= 0 or high <= 0:
        raise ValueError("bounds must be positive")
    value = 1
    while value < low:
        value *= 2
    result = []
    while value <= high:
        result.append(value)
        value *= 2
    return tuple(result)


@dataclass(frozen=True, order=True)
class CacheConfig:
    """One MemExplore design point: ``(T, L, S, B)``."""

    size: int
    line_size: int
    ways: int = 1
    tiling: int = 1

    def __post_init__(self) -> None:
        for label, value in (
            ("cache size T", self.size),
            ("line size L", self.line_size),
            ("set associativity S", self.ways),
            ("tiling size B", self.tiling),
        ):
            if not _is_pow2(value):
                raise ValueError(f"{label} must be a power of two, got {value}")
        if self.line_size > self.size:
            raise ValueError("line size exceeds cache size")
        if self.ways > self.num_lines:
            raise ValueError("more ways than cache lines")
        # Algorithm MemExplore bounds B by T/L, but Figures 6 and 7 plot
        # tiling sizes past the line count to show the degradation once the
        # tile no longer fits, so the bound is applied by design_space()
        # rather than here.

    @property
    def num_lines(self) -> int:
        """Number of cache lines ``T / L``."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets ``T / (L * S)``."""
        return self.num_lines // self.ways

    def label(self, full: bool = False) -> str:
        """The paper's ``C<T>L<L>`` label; ``full`` appends S and B."""
        base = f"C{self.size}L{self.line_size}"
        if full or self.ways != 1 or self.tiling != 1:
            base += f"S{self.ways}B{self.tiling}"
        return base

    def with_tiling(self, tiling: int) -> "CacheConfig":
        """A copy with a different tiling size."""
        return replace(self, tiling=tiling)

    def with_ways(self, ways: int) -> "CacheConfig":
        """A copy with a different associativity."""
        return replace(self, ways=ways)

    def __str__(self) -> str:
        return self.label(full=True)


def design_space(
    max_size: int,
    min_size: int = 16,
    min_line: int = 4,
    max_line: int = 256,
    max_ways: int = 8,
    sizes: Optional[Sequence[int]] = None,
    line_sizes: Optional[Sequence[int]] = None,
    ways: Optional[Sequence[int]] = None,
    tilings: Optional[Sequence[int]] = None,
) -> Iterator[CacheConfig]:
    """Enumerate the MemExplore sweep.

    By default sizes run over powers of two in ``[min_size, max_size]``,
    line sizes in ``[min_line, min(max_line, T)]``, associativities in
    ``[1, max_ways]`` limited to the line count, and tilings in
    ``[1, T/L]``.  Any dimension can be pinned with an explicit sequence;
    infeasible combinations from explicit sequences are skipped silently so
    callers can pass one flat list per dimension.
    """
    size_list = tuple(sizes) if sizes is not None else powers_of_two(min_size, max_size)
    for size in size_list:
        if line_sizes is not None:
            lines = tuple(line_sizes)
        else:
            lines = powers_of_two(min_line, min(max_line, size))
        for line in lines:
            if line > size:
                continue
            num_lines = size // line
            if ways is not None:
                way_list = tuple(ways)
            else:
                way_list = powers_of_two(1, min(max_ways, num_lines))
            for way in way_list:
                if way > num_lines:
                    continue
                if tilings is not None:
                    tiling_list = tuple(tilings)
                else:
                    tiling_list = powers_of_two(1, num_lines)
                for tiling in tiling_list:
                    if tiling > num_lines:
                        continue
                    yield CacheConfig(size, line, way, tiling)
