"""Section 5 composite-program model.

A large program (the MPEG decoder) is a set of kernel programs ``j``, each
invoked ``trip(j)`` times.  For every shared cache configuration the paper
aggregates the per-kernel records ``(T, L, S, B, mr, C, E)``::

    MISS_R = sum_j mr(j) * trip(j) / sum_j trip(j)
    CYCLES = sum_j C(j) * trip(j)
    ENERGY = sum_j E(j) * trip(j)

Note the miss rate is trip-weighted (as printed in the paper), not
access-weighted -- the per-kernel records carry per-invocation cycles and
energy, so CYCLES and ENERGY scale correctly regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate
from repro.energy.model import EnergyModel
from repro.engine.evaluator import Evaluator, order_configs
from repro.engine.result import ExplorationResult
from repro.engine.workload import KernelWorkload
from repro.kernels.base import Kernel

__all__ = ["CompositeProgram", "KernelContribution"]


@dataclass(frozen=True)
class KernelContribution:
    """One kernel's per-invocation estimate and its trip weight."""

    kernel_name: str
    trip: int
    estimate: PerformanceEstimate


class CompositeProgram:
    """A whole program assembled from weighted kernel programs.

    ``kernels`` carry their own ``invocations`` as the trip counts; pass
    ``trips`` to override them (keyed by kernel name).
    """

    def __init__(
        self,
        kernels: Sequence[Kernel],
        trips: Optional[Dict[str, int]] = None,
        energy_model: Optional[EnergyModel] = None,
        optimize_layout: bool = True,
        backend: str = "fastsim",
    ) -> None:
        if not kernels:
            raise ValueError("a composite program needs at least one kernel")
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise ValueError("kernel names must be unique within a composite")
        self.kernels = list(kernels)
        self.trips: Dict[str, int] = {
            k.name: (trips or {}).get(k.name, k.invocations) for k in kernels
        }
        if any(t <= 0 for t in self.trips.values()):
            raise ValueError("trip counts must be positive")
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.optimize_layout = optimize_layout
        self.backend = backend
        # One engine evaluator per kernel; the shared EvalCache means two
        # composites over overlapping kernel sets reuse each other's work.
        self._evaluators = {
            k.name: Evaluator(
                KernelWorkload(k, optimize_layout=optimize_layout),
                backend=backend,
                energy_model=self.energy_model,
            )
            for k in kernels
        }

    @property
    def total_trips(self) -> int:
        """``sum_j trip(j)``."""
        return sum(self.trips.values())

    def contributions(self, config: CacheConfig) -> List[KernelContribution]:
        """Per-kernel records for one shared configuration."""
        return [
            KernelContribution(
                kernel_name=kernel.name,
                trip=self.trips[kernel.name],
                estimate=self._evaluators[kernel.name].evaluate(config),
            )
            for kernel in self.kernels
        ]

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """Aggregate whole-program metrics for one configuration."""
        parts = self.contributions(config)
        total_trip = self.total_trips
        miss_rate = sum(p.estimate.miss_rate * p.trip for p in parts) / total_trip
        read_miss_rate = (
            sum(p.estimate.read_miss_rate * p.trip for p in parts) / total_trip
        )
        cycles = sum(p.estimate.cycles * p.trip for p in parts)
        energy = sum(p.estimate.energy_nj * p.trip for p in parts)
        events = sum(p.estimate.events * p.trip for p in parts)
        accesses = sum(p.estimate.accesses * p.trip for p in parts)
        reads = sum(p.estimate.reads * p.trip for p in parts)
        add_bs = (
            sum(p.estimate.add_bs * p.estimate.accesses * p.trip for p in parts)
            / accesses
            if accesses
            else 0.0
        )
        return PerformanceEstimate(
            config=config,
            miss_rate=miss_rate,
            cycles=cycles,
            energy_nj=energy,
            events=events,
            accesses=accesses,
            reads=reads,
            read_miss_rate=read_miss_rate,
            add_bs=add_bs,
            conflict_free_layout=all(
                p.estimate.conflict_free_layout for p in parts
            ),
        )

    def explore(
        self, configs: Iterable[CacheConfig], jobs: int = 1, resilience=None
    ) -> ExplorationResult:
        """Aggregate estimates over a configuration set.

        ``jobs > 1`` distributes whole-program evaluations (each one covers
        every kernel) across processes via
        :class:`~repro.engine.parallel.ParallelSweep`, preserving order.
        ``resilience`` (a
        :class:`~repro.engine.resilience.ResilienceOptions`) opts into
        per-chunk retries, timeouts and checkpoint/resume -- the journal
        fingerprint covers every kernel and trip count of the composite.
        """
        ordered = order_configs(configs)
        if (jobs and jobs > 1) or resilience is not None:
            from repro.engine.parallel import ParallelSweep

            return ExplorationResult(
                ParallelSweep(jobs=jobs or 1, resilience=resilience).run(
                    self, ordered
                )
            )
        return ExplorationResult([self.evaluate(c) for c in ordered])

    def shared_cache_trace(self, config: CacheConfig) -> "MemoryTrace":
        """One interleaved trace of the whole program through a single cache.

        The paper aggregates per-kernel records, implicitly assuming each
        kernel runs against a cold cache and kernels do not interact.  This
        builds the alternative: kernel invocations interleaved in pipeline
        order (round-robin weighted by trip counts, the natural schedule of
        a block-structured decoder), each kernel's data disjoint in memory,
        all flowing through one cache.  Used by the composite-independence
        ablation to measure what the record model misses.
        """
        from repro.cache.trace import MemoryTrace

        pieces = []
        offsets: Dict[str, int] = {}
        cursor = 0
        for kernel in self.kernels:
            if self.optimize_layout:
                layout = kernel.optimized_layout(
                    config.size, config.line_size
                ).layout
            else:
                layout = kernel.default_layout()
            trace = kernel.trace(layout=layout, tile=config.tiling)
            offsets[kernel.name] = cursor
            pieces.append((kernel.name, trace))
            footprint = int(trace.addresses.max()) + 1 if len(trace) else 0
            cursor += -(-max(footprint, 1) // 256) * 256  # 256-byte spacing

        max_trip = max(self.trips.values())
        schedule = []
        for round_index in range(max_trip):
            for name, trace in pieces:
                if round_index < self.trips[name]:
                    shifted = MemoryTrace(
                        trace.addresses + offsets[name],
                        trace.is_write,
                        trace.ref_ids,
                    )
                    schedule.append(shifted)
        return MemoryTrace.concatenate(schedule)

    def evaluate_shared_cache(self, config: CacheConfig) -> PerformanceEstimate:
        """Whole-program metrics from the interleaved single-cache trace."""
        from repro.engine.workload import TraceWorkload

        trace = self.shared_cache_trace(config)
        events = sum(
            kernel.nest.iterations * self.trips[kernel.name]
            for kernel in self.kernels
        )
        workload = TraceWorkload(trace, events=events)
        evaluator = Evaluator(
            workload, backend=self.backend, energy_model=self.energy_model
        )
        return evaluator.evaluate(config)

    def per_kernel_optima(
        self, configs: Sequence[CacheConfig]
    ) -> Dict[str, Tuple[CacheConfig, float]]:
        """Each kernel's own minimum-energy configuration over ``configs``.

        Used for the paper's closing observation that the whole-program
        optimum differs from every kernel's individual optimum (Figure 10
        versus the Section 5 composite result).
        """
        optima: Dict[str, Tuple[CacheConfig, float]] = {}
        for kernel in self.kernels:
            evaluator = self._evaluators[kernel.name]
            result = evaluator.sweep(configs=list(configs))
            best = result.min_energy()
            optima[kernel.name] = (best.config, best.energy_nj)
        return optima
