"""Sensitivity analysis: how robust is the chosen configuration?

Every constant in the Section 2 models is a 1999 measurement or an
assumption; a designer committing silicon wants to know which ones the
decision actually hinges on.  :func:`tornado` perturbs each model
parameter over a factor band (classic tornado-diagram analysis), re-runs
the exploration, and reports per parameter (a) the energy swing at the
nominal winner and (b) whether the winner itself changes -- separating
"changes the number" from "changes the decision".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.explorer import MemExplorer
from repro.energy.model import EnergyModel
from repro.energy.params import SRAMPart
from repro.kernels.base import Kernel

__all__ = ["ParameterSweep", "SensitivityRow", "tornado"]


@dataclass(frozen=True)
class ParameterSweep:
    """One parameter axis: a name and a model factory per factor."""

    name: str
    build: Callable[[float], EnergyModel]


@dataclass(frozen=True)
class SensitivityRow:
    """Tornado result for one parameter."""

    parameter: str
    low_energy: float
    nominal_energy: float
    high_energy: float
    winner_changes: bool

    @property
    def swing(self) -> float:
        """Relative energy swing across the band at the nominal winner."""
        if not self.nominal_energy:
            return 0.0
        return (self.high_energy - self.low_energy) / self.nominal_energy


def _default_sweeps(nominal: EnergyModel) -> List[ParameterSweep]:
    tech = nominal.tech
    sram = nominal.sram

    def with_em(factor: float) -> EnergyModel:
        part = SRAMPart(
            name=f"{sram.name}*{factor}",
            size_bits=sram.size_bits,
            energy_per_access_nj=sram.energy_per_access_nj * factor,
        )
        return EnergyModel(tech=tech, sram=part)

    def with_tech(field: str) -> Callable[[float], EnergyModel]:
        def build(factor: float) -> EnergyModel:
            return EnergyModel(
                tech=replace(tech, **{field: getattr(tech, field) * factor}),
                sram=sram,
            )
        return build

    def with_activity(factor: float) -> EnergyModel:
        activity = min(1.0, tech.data_bus_activity * factor)
        return EnergyModel(tech=tech.with_activity(activity), sram=sram)

    return [
        ParameterSweep("Em (main memory)", with_em),
        ParameterSweep("beta (cell array)", with_tech("beta")),
        ParameterSweep("gamma (I/O pads)", with_tech("gamma")),
        ParameterSweep("alpha (decoder)", with_tech("alpha")),
        ParameterSweep("data-bus activity", with_activity),
    ]


def tornado(
    kernel: Kernel,
    configs: Sequence[CacheConfig],
    band: Tuple[float, float] = (0.5, 2.0),
    sweeps: Optional[Sequence[ParameterSweep]] = None,
    nominal_model: Optional[EnergyModel] = None,
) -> List[SensitivityRow]:
    """Tornado analysis over the default (or given) parameter axes.

    Returns one row per parameter, sorted by decreasing swing -- the
    tornado's classic presentation.
    """
    low_factor, high_factor = band
    if not 0 < low_factor <= 1 <= high_factor:
        raise ValueError("band must bracket the nominal factor 1.0")
    nominal = nominal_model if nominal_model is not None else EnergyModel()
    if sweeps is None:
        sweeps = _default_sweeps(nominal)

    nominal_result = MemExplorer(kernel, energy_model=nominal).explore(
        configs=list(configs)
    )
    nominal_best = nominal_result.min_energy()
    rows: List[SensitivityRow] = []
    for sweep in sweeps:
        energies: Dict[float, float] = {}
        winner_changes = False
        for factor in (low_factor, high_factor):
            model = sweep.build(factor)
            result = MemExplorer(kernel, energy_model=model).explore(
                configs=list(configs)
            )
            energies[factor] = result.for_config(nominal_best.config).energy_nj
            if result.min_energy().config != nominal_best.config:
                winner_changes = True
        rows.append(
            SensitivityRow(
                parameter=sweep.name,
                low_energy=energies[low_factor],
                nominal_energy=nominal_best.energy_nj,
                high_energy=energies[high_factor],
                winner_changes=winner_changes,
            )
        )
    rows.sort(key=lambda r: abs(r.swing), reverse=True)
    return rows
