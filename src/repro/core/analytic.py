"""Closed-form miss-rate model (the paper's own methodology).

The authors state they "developed analytical expressions to calculate the
minimum cache line requirement, minimum cache size, off-chip data
assignment, miss rates, # of cycles and energy ... rather than developing
a trace driven simulator".  This module reconstructs that analytic layer
on top of the Section 3 class analysis, with the assumptions the paper's
numbers imply:

* the off-chip layout is the Section 4.1 conflict-free placement and the
  cache is at least the Section 3 minimum size, so **conflict misses are
  zero by construction**;
* the cache retains exactly the classes' sliding windows, so every line a
  class touches during one innermost-loop sweep is fetched once per sweep
  (**no retention across sweeps** -- the paper's miss rates depend on the
  line size but not on the cache size beyond the minimum);
* a class whose addresses do not move with the innermost loop touches its
  (static) window once per sweep.

Per class/case ``g`` with innermost step displacement ``delta_g`` bytes and
instantaneous window width ``w_g`` bytes::

    span_g   = (trip_inner - 1) * |delta_g| + w_g        bytes per sweep
    misses_g = outer_sweeps * ceil(span_g / L)
    miss rate = sum_g misses_g / total accesses

Cross-validation: at the minimum conflict-free cache size the model
reproduces the simulator exactly for the bundled compatible kernels
(Compress at C16L4: 496 misses both ways); above it the simulator's
cross-sweep retention lowers the real miss rate -- the systematic
difference between the paper's model and trace-driven truth, quantified by
``benchmarks/test_ablation_analytic.py``.

The same per-access expectations feed the Section 2.2 cycle and Section
2.3 energy models, giving :class:`AnalyticExplorer` -- a drop-in,
simulation-free counterpart of :class:`~repro.core.explorer.MemExplorer`
that evaluates a configuration in microseconds (how the authors swept the
space in 1999).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.core.config import CacheConfig, design_space
from repro.core.cycles import processor_cycles
from repro.core.explorer import ExplorationResult
from repro.core.metrics import PerformanceEstimate
from repro.energy.model import EnergyModel
from repro.kernels.base import Kernel
from repro.loops.ir import LoopNest
from repro.loops.reuse import ReferenceGroup, group_references

__all__ = ["AnalyticExplorer", "analytic_miss_rate", "analytic_misses"]

#: Gray-coded address-bus switching assumed by the analytic model; the
#: kernels' measured values sit between ~1 (sequential) and ~6
#: (interleaved); the model uses a fixed mid value since E_dec is tiny.
DEFAULT_ADD_BS = 2.0


def _group_geometry(nest: LoopNest, group: ReferenceGroup) -> "tuple[int, int]":
    """``(delta_bytes, width_bytes)`` of a class under the dense pitches.

    ``delta_bytes`` is how far the class's window moves per innermost-loop
    step; ``width_bytes`` its instantaneous extent.  Padding only shifts
    windows relative to each other (it never changes a single class's
    stride along the innermost loop for the outermost-dimension padding
    the Section 4.1 assignment applies), so the dense strides suffice.
    """
    decl = nest.array(group.array)
    strides = decl.row_major_strides()
    innermost = nest.loops[-1].index
    ref = nest.refs[group.ref_indices[0]]
    delta_elements = sum(
        stride * expr.coeff(innermost)
        for stride, expr in zip(strides, ref.indices)
    )
    delta_bytes = abs(delta_elements) * decl.element_size * nest.loops[-1].step
    width_bytes = (group.span + 1) * decl.element_size
    return delta_bytes, width_bytes


def analytic_misses(nest: LoopNest, line_size: int) -> int:
    """Total misses of one nest execution under the paper's assumptions."""
    if line_size <= 0:
        raise ValueError("line size must be positive")
    if not nest.loops:
        return len(nest.refs)
    inner_trips = nest.loops[-1].trip_count
    outer_sweeps = 1
    for loop in nest.loops[:-1]:
        outer_sweeps *= loop.trip_count
    total = 0
    for group in group_references(nest):
        delta, width = _group_geometry(nest, group)
        span = (inner_trips - 1) * delta + width
        total += outer_sweeps * max(1, math.ceil(span / line_size))
    return total


def analytic_miss_rate(nest: LoopNest, line_size: int) -> float:
    """Miss rate over all accesses (misses capped at the access count)."""
    accesses = nest.accesses
    if accesses == 0:
        return 0.0
    return min(analytic_misses(nest, line_size), accesses) / accesses


class AnalyticExplorer:
    """Simulation-free MemExplore using the closed-form miss model.

    Mirrors :class:`~repro.core.explorer.MemExplorer`'s interface.  The
    model assumes the Section 4.1 conflict-free layout and a cache at
    least the Section 3 minimum size for the requested line size;
    configurations below that minimum are scored as fully thrashing
    (miss rate 1.0), matching the catastrophic regime the simulator shows
    there.  Associativity does not change the analytic miss rate (no
    conflicts remain to absorb); tiling enters only the cycle model.
    """

    def __init__(
        self,
        kernel: Kernel,
        energy_model: Optional[EnergyModel] = None,
        add_bs: float = DEFAULT_ADD_BS,
    ) -> None:
        if add_bs < 0:
            raise ValueError("address-bus switching must be non-negative")
        self.kernel = kernel
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.add_bs = add_bs
        self._mr_cache: dict = {}

    def miss_rate(self, config: CacheConfig) -> float:
        """Analytic miss rate of the kernel at this geometry."""
        key = config.line_size
        if key not in self._mr_cache:
            self._mr_cache[key] = (
                analytic_miss_rate(self.kernel.nest, config.line_size),
                self.kernel.min_cache_size(config.line_size),
            )
        mr, min_size = self._mr_cache[key]
        if config.size < min_size:
            return 1.0
        return mr

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """Closed-form counterpart of :meth:`MemExplorer.evaluate`."""
        nest = self.kernel.nest
        miss_rate = self.miss_rate(config)
        events = nest.iterations
        cycles = processor_cycles(
            miss_rate,
            events,
            ways=config.ways,
            line_size=config.line_size,
            tiling=config.tiling,
        )
        breakdown = self.energy_model.breakdown(
            config.size,
            config.line_size,
            config.ways,
            hit_rate=1.0 - miss_rate,
            miss_rate=miss_rate,
            events=events,
            add_bs=self.add_bs,
        )
        return PerformanceEstimate(
            config=config,
            miss_rate=miss_rate,
            cycles=cycles,
            energy_nj=breakdown.total,
            events=events,
            accesses=nest.accesses,
            reads=len(nest.reads) * nest.iterations,
            read_miss_rate=miss_rate,
            add_bs=self.add_bs,
            conflict_free_layout=True,
            energy_breakdown=breakdown,
        )

    def explore(
        self,
        configs: Optional[Iterable[CacheConfig]] = None,
        max_size: int = 1024,
        **space_kwargs,
    ) -> ExplorationResult:
        """Sweep a configuration set with the closed-form model."""
        if configs is None:
            configs = design_space(max_size=max_size, **space_kwargs)
        ordered: List[CacheConfig] = sorted(
            configs, key=lambda c: (c.size, c.line_size, c.tiling, c.ways)
        )
        return ExplorationResult([self.evaluate(c) for c in ordered])
