"""The plugin registry: one name -> factory table for every component kind.

Before this module, each subsystem wired its components by name in a
private dict (``_BACKENDS`` in :mod:`repro.engine.backends`,
``_FACTORIES`` in :mod:`repro.kernels`, ``SRAM_CATALOG`` membership
checks in the CLI and :class:`~repro.serve.jobs.JobSpec`).  Dropping in a
new backend or kernel meant editing core modules.  The registry replaces
all of those dicts with one table, keyed by ``(kind, name)``:

``backend``
    Miss-measurement backends (:class:`~repro.engine.backends.Backend`
    subclasses; the factory is called with the backend's kwargs).
``kernel``
    Benchmark kernels (zero-argument factories returning
    :class:`~repro.kernels.base.Kernel`).
``energy``
    Energy models (factories with the :class:`~repro.energy.model.EnergyModel`
    constructor signature).
``sram``
    Off-chip SRAM parts (zero-argument factories returning
    :class:`~repro.energy.params.SRAMPart`).
``store``
    Result-store tiers (factories with the
    :func:`~repro.serve.store.open_store` signature).
``searcher``
    Multi-objective search strategies (zero-argument factories returning
    :class:`~repro.moo.searchers.Searcher` instances).

Population happens lazily, on first lookup, in two deterministic steps:

1. the built-ins register through :func:`repro.registry.builtins.register`
   -- the *same* hook protocol third-party packages use;
2. every ``repro.plugins`` entry point is loaded in sorted order and
   called with a :class:`RegistryHook` bound to its distribution, so the
   origin and version of every plugin are recorded for run manifests.

Name collisions are resolved deterministically: the first registration
wins (built-ins always run first, so a plugin can never shadow a built-in)
and a :class:`PluginCollisionWarning` is emitted naming both origins.
"""

from __future__ import annotations

import logging
import threading
import warnings
from dataclasses import dataclass
from difflib import get_close_matches
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "EP_GROUP",
    "KINDS",
    "PluginCollisionWarning",
    "PluginError",
    "PluginInfo",
    "PluginRegistry",
    "RegistryHook",
    "UnknownPluginError",
    "get_registry",
    "reset_registry",
]

logger = logging.getLogger(__name__)

#: The entry-point group third-party packages register under.
EP_GROUP = "repro.plugins"

#: Component kinds the registry manages.
KINDS = ("backend", "kernel", "energy", "sram", "store", "searcher")

#: Origin tag of components bundled with repro itself.
BUILTIN_ORIGIN = "builtin"


class PluginError(Exception):
    """A plugin could not be registered or resolved."""


class UnknownPluginError(PluginError, LookupError):
    """No plugin of the requested kind carries the requested name.

    Carries the sorted ``available`` names and a did-you-mean
    ``suggestion`` (or ``None``) so front ends can render a helpful
    message instead of a traceback.
    """

    def __init__(self, kind: str, name: str, available: Tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.available = available
        matches = get_close_matches(name, available, n=1, cutoff=0.5)
        self.suggestion: Optional[str] = matches[0] if matches else None
        hint = f"; did you mean {self.suggestion!r}?" if self.suggestion else ""
        super().__init__(
            f"unknown {kind} {name!r}{hint} (available: {', '.join(available)})"
        )


class PluginCollisionWarning(UserWarning):
    """Two registrations claimed the same ``(kind, name)``; first wins."""


@dataclass(frozen=True)
class PluginInfo:
    """One registered component: identity, factory and provenance.

    ``origin`` is ``"builtin"`` for bundled components, otherwise the
    distribution (or module) that provided the plugin; ``version`` is that
    distribution's version.  Both flow into run manifests, which is how a
    stored result names the exact code that produced it.
    """

    kind: str
    name: str
    factory: Callable[..., Any]
    origin: str
    version: str

    def create(self, **kwargs: Any) -> Any:
        """Instantiate the component (``factory(**kwargs)``)."""
        return self.factory(**kwargs)

    def to_json(self) -> Dict[str, str]:
        """The manifest row for this plugin (no factory, provenance only)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "origin": self.origin,
            "version": self.version,
        }


@dataclass
class RegistryHook:
    """What a plugin's ``register(hook)`` entry point receives.

    The hook pre-binds the plugin's provenance, so registrations made
    through it are attributed to the right distribution without the
    plugin author spelling it out.  Built-ins register through a hook
    bound to ``origin="builtin"`` -- one mechanism for everything.
    """

    registry: "PluginRegistry"
    origin: str
    version: str

    def add(
        self, kind: str, name: str, factory: Callable[..., Any]
    ) -> Optional[PluginInfo]:
        """Register ``factory`` as the ``kind`` component called ``name``."""
        return self.registry.register(
            kind, name, factory, origin=self.origin, version=self.version
        )

    # Convenience verbs, one per kind -- what plugin code actually calls.

    def backend(self, name: str, factory: Callable[..., Any]):
        """Register a miss-measurement backend."""
        return self.add("backend", name, factory)

    def kernel(self, name: str, factory: Callable[..., Any]):
        """Register a benchmark kernel factory."""
        return self.add("kernel", name, factory)

    def energy(self, name: str, factory: Callable[..., Any]):
        """Register an energy model."""
        return self.add("energy", name, factory)

    def sram(self, name: str, factory: Callable[..., Any]):
        """Register an off-chip SRAM part."""
        return self.add("sram", name, factory)

    def store(self, name: str, factory: Callable[..., Any]):
        """Register a result-store tier."""
        return self.add("store", name, factory)

    def searcher(self, name: str, factory: Callable[..., Any]):
        """Register a multi-objective search strategy."""
        return self.add("searcher", name, factory)


def _iter_entry_points() -> List[Any]:
    """Every ``repro.plugins`` entry point."""
    from importlib import metadata

    try:
        eps: Iterable[Any] = metadata.entry_points(group=EP_GROUP)
    except TypeError:  # Python 3.9: entry_points() takes no kwargs
        eps = metadata.entry_points().get(EP_GROUP, [])  # type: ignore[attr-defined]
    return list(eps)


def _entry_point_provenance(ep: Any) -> Tuple[str, str]:
    """Best-effort ``(origin, version)`` of one entry point."""
    dist = getattr(ep, "dist", None)
    if dist is not None:
        try:
            return dist.name, dist.version
        except Exception:  # pragma: no cover - exotic metadata backends
            pass
    # Python 3.9 entry points carry no dist; fall back to the module's
    # top-level distribution when one exists.
    module = ep.value.split(":", 1)[0].split(".", 1)[0]
    try:
        from importlib import metadata

        return module, metadata.version(module)
    except Exception:
        return module, "unknown"


class PluginRegistry:
    """The ``(kind, name) -> PluginInfo`` table with lazy discovery.

    ``entry_points`` overrides the entry-point source (tests register
    fake plugins without installing a distribution).  All lookups are
    thread-safe; discovery runs at most once per registry.
    """

    def __init__(
        self,
        entry_points: Optional[Callable[[], Iterable[Any]]] = None,
    ) -> None:
        self._plugins: Dict[Tuple[str, str], PluginInfo] = {}
        self._entry_points = (
            entry_points if entry_points is not None else _iter_entry_points
        )
        self._discovered = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # registration

    def register(
        self,
        kind: str,
        name: str,
        factory: Callable[..., Any],
        origin: str = BUILTIN_ORIGIN,
        version: Optional[str] = None,
    ) -> Optional[PluginInfo]:
        """Record one component; first registration of a name wins.

        Returns the registered :class:`PluginInfo`, or ``None`` when the
        name was already taken (a :class:`PluginCollisionWarning` is
        emitted naming both origins).
        """
        if kind not in KINDS:
            raise PluginError(
                f"unknown plugin kind {kind!r} (one of: {', '.join(KINDS)})"
            )
        if not name or not isinstance(name, str):
            raise PluginError(f"plugin names must be non-empty strings: {name!r}")
        if not callable(factory):
            raise PluginError(f"{kind} {name!r}: factory must be callable")
        if version is None:
            version = _repro_version()
        info = PluginInfo(
            kind=kind, name=name, factory=factory, origin=origin, version=version
        )
        with self._lock:
            taken = self._plugins.get((kind, name))
            if taken is not None:
                warnings.warn(
                    f"{kind} {name!r} from {origin} {version} ignored: "
                    f"already registered by {taken.origin} {taken.version}",
                    PluginCollisionWarning,
                    stacklevel=2,
                )
                return None
            self._plugins[(kind, name)] = info
        return info

    def _discover(self) -> None:
        """Built-ins first, then entry points -- exactly once."""
        with self._lock:
            if self._discovered:
                return
            # Mark first: builtins.register resolves names through this
            # registry's own modules, which must not recurse into discovery.
            self._discovered = True
            from repro.registry import builtins as builtin_plugins

            builtin_plugins.register(
                RegistryHook(
                    registry=self,
                    origin=BUILTIN_ORIGIN,
                    version=_repro_version(),
                )
            )
            # Sorted here (not in the source) so collision resolution is
            # deterministic for injected entry-point sources too.
            eps = sorted(
                self._entry_points(), key=lambda ep: (ep.name, ep.value)
            )
            for ep in eps:
                origin, version = _entry_point_provenance(ep)
                try:
                    register_fn = ep.load()
                except Exception as exc:
                    logger.warning(
                        "could not load plugin entry point %r from %s: %s",
                        ep.name, origin, exc,
                    )
                    continue
                if not callable(register_fn):
                    logger.warning(
                        "plugin entry point %r from %s is not callable; ignored",
                        ep.name, origin,
                    )
                    continue
                hook = RegistryHook(
                    registry=self, origin=origin, version=version
                )
                try:
                    register_fn(hook)
                except Exception as exc:
                    logger.warning(
                        "plugin %r from %s failed to register: %s",
                        ep.name, origin, exc,
                    )

    # ------------------------------------------------------------------
    # lookups

    def get(self, kind: str, name: str) -> PluginInfo:
        """The :class:`PluginInfo` for ``(kind, name)``.

        Raises :class:`UnknownPluginError` (with a did-you-mean
        suggestion and the available names) when nothing matches.
        """
        self._discover()
        with self._lock:
            info = self._plugins.get((kind, name))
        if info is None:
            raise UnknownPluginError(kind, name, self.names(kind))
        return info

    def create(self, kind: str, name: str, **kwargs: Any) -> Any:
        """Resolve and instantiate in one step."""
        return self.get(kind, name).create(**kwargs)

    def has(self, kind: str, name: str) -> bool:
        """Whether ``(kind, name)`` resolves."""
        self._discover()
        with self._lock:
            return (kind, name) in self._plugins

    def names(self, kind: str) -> Tuple[str, ...]:
        """Sorted names registered under ``kind``."""
        self._discover()
        with self._lock:
            return tuple(
                sorted(n for (k, n) in self._plugins if k == kind)
            )

    def infos(self, kind: Optional[str] = None) -> List[PluginInfo]:
        """Every registration (of one kind, or all), sorted by (kind, name)."""
        self._discover()
        with self._lock:
            rows = [
                info
                for (k, _), info in self._plugins.items()
                if kind is None or k == kind
            ]
        return sorted(rows, key=lambda info: (info.kind, info.name))


def _repro_version() -> str:
    """The installed distribution version, else the package fallback."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from repro import __version__

        return __version__


_registry: Optional[PluginRegistry] = None
_registry_lock = threading.Lock()


def get_registry() -> PluginRegistry:
    """The process-wide registry (created, not yet discovered, on first use)."""
    global _registry
    with _registry_lock:
        if _registry is None:
            _registry = PluginRegistry()
        return _registry


def reset_registry(registry: Optional[PluginRegistry] = None) -> None:
    """Replace the process-wide registry (tests; pass ``None`` to re-create)."""
    global _registry
    with _registry_lock:
        _registry = registry
