"""repro.registry: the plugin registry and reproducible run manifests.

One entry-point-based registry (group ``repro.plugins``) is the single
source of truth for every pluggable component family -- miss-measurement
backends, benchmark kernels, energy models, SRAM parts and result-store
tiers.  Built-ins register through the same hook protocol third-party
distributions use, so dropping a new backend into the fleet is a
``pip install``, not a core-module edit:

* :mod:`repro.registry.core` -- :class:`PluginRegistry` (lazy, deterministic
  discovery; first registration wins, collisions warn), :class:`PluginInfo`
  provenance rows, :class:`RegistryHook` (what a plugin's ``register(hook)``
  receives) and the did-you-mean :class:`UnknownPluginError`;
* :mod:`repro.registry.builtins` -- the bundled components, registered via
  the same hook;
* :mod:`repro.registry.manifest` -- ``repro.manifest/1`` run manifests:
  the provenance document (plugins + versions, python, seeds,
  fingerprints) recorded alongside every sweep/job result.

Quickstart (plugin author)::

    # mypkg/__init__.py
    def register(hook):
        hook.backend("mybackend", MyBackend)
        hook.kernel("mykernel", make_my_kernel)

    # pyproject.toml
    [project.entry-points."repro.plugins"]
    mypkg = "mypkg:register"

Quickstart (consumer)::

    from repro.registry import get_registry

    registry = get_registry()
    backend = registry.create("backend", "mybackend")
    for info in registry.infos():
        print(info.kind, info.name, info.origin, info.version)
"""

from repro.registry.core import (
    EP_GROUP,
    KINDS,
    PluginCollisionWarning,
    PluginError,
    PluginInfo,
    PluginRegistry,
    RegistryHook,
    UnknownPluginError,
    get_registry,
    reset_registry,
)
from repro.registry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    check_manifest,
)

__all__ = [
    "EP_GROUP",
    "KINDS",
    "MANIFEST_SCHEMA",
    "PluginCollisionWarning",
    "PluginError",
    "PluginInfo",
    "PluginRegistry",
    "RegistryHook",
    "UnknownPluginError",
    "build_manifest",
    "check_manifest",
    "get_registry",
    "reset_registry",
]
