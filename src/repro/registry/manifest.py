"""Reproducible run manifests (schema ``repro.manifest/1``).

A fleet of services sharing one content-addressed result store can only
trust each other's cached rows if every row's provenance is on record:
which code -- down to the exact plugin distributions and versions --
produced it, on which Python, with which seeds.  A *manifest* is that
record: a small JSON document built next to every sweep/job and persisted
alongside (never mixed into) the store keys.  Fingerprints stay what they
were before manifests existed, so pre-manifest ``repro.store/1`` databases
remain valid; the manifest is pure metadata about a key, not part of it.

Document layout::

    {
      "schema": "repro.manifest/1",
      "spec_hash": "<sha256 | null>",      -- the JobSpec hash, when any
      "eval_id": "<sha256 | null>",        -- evaluator fingerprint
      "sweep_fingerprint": "<sha256 | null>",
      "python": "3.11.7",
      "platform": "Linux-...",
      "repro_version": "1.0.0",
      "packages": {"repro": "1.0.0", "numpy": "..."},
      "plugins": [{"kind", "name", "origin", "version"}, ...],
      "seeds": {"retry_backoff": 0},
      "created_s": 1754500000.0
    }

``plugins`` names only the registry entries the run actually used (its
kernel, backend, energy model, SRAM part, store tier), each with the
distribution that provided it -- so a result produced by a third-party
backend is attributable even after the plugin is uninstalled.
"""

from __future__ import annotations

import platform
import time
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.registry.core import UnknownPluginError, get_registry

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "check_manifest",
]

MANIFEST_SCHEMA = "repro.manifest/1"

#: Distributions whose versions every manifest records.
_CORE_PACKAGES = ("repro", "numpy")


def _package_versions() -> Dict[str, str]:
    from importlib import metadata

    versions: Dict[str, str] = {}
    for name in _CORE_PACKAGES:
        try:
            versions[name] = metadata.version(name)
        except Exception:
            if name == "repro":
                from repro import __version__

                versions[name] = __version__
    return versions


def build_manifest(
    plugins: Iterable[Tuple[str, str]],
    spec_hash: Optional[str] = None,
    eval_id: Optional[str] = None,
    sweep_fingerprint: Optional[str] = None,
    seeds: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one ``repro.manifest/1`` document.

    ``plugins`` is the ``(kind, name)`` list of registry entries the run
    used; each is resolved to its full provenance row.  Entries that do
    not resolve (e.g. a stale name) are recorded with origin
    ``"unresolved"`` rather than dropped -- an honest manifest beats a
    silently incomplete one.  ``extra`` keys are merged at the top level
    (they must not collide with the schema's own fields).
    """
    registry = get_registry()
    rows = []
    for kind, name in plugins:
        try:
            rows.append(registry.get(kind, name).to_json())
        except UnknownPluginError:
            rows.append(
                {
                    "kind": kind,
                    "name": name,
                    "origin": "unresolved",
                    "version": "unknown",
                }
            )
    rows.sort(key=lambda row: (row["kind"], row["name"]))
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "spec_hash": spec_hash,
        "eval_id": eval_id,
        "sweep_fingerprint": sweep_fingerprint,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": _package_versions().get("repro", "unknown"),
        "packages": _package_versions(),
        "plugins": rows,
        "seeds": dict(seeds or {}),
        "created_s": time.time(),
    }
    if extra:
        collisions = set(extra) & set(manifest)
        if collisions:
            raise ValueError(
                f"extra manifest fields collide with the schema: "
                f"{sorted(collisions)}"
            )
        manifest.update(extra)
    return manifest


def check_manifest(doc: Any) -> Dict[str, Any]:
    """Validate the shape of a manifest document and return it.

    Raises ``ValueError`` on anything that is not a ``repro.manifest/1``
    object (including manifests from a newer schema, named as such).
    """
    if not isinstance(doc, dict):
        raise ValueError("manifest must be a JSON object")
    schema = doc.get("schema")
    if schema != MANIFEST_SCHEMA:
        if isinstance(schema, str) and schema.startswith("repro.manifest/"):
            raise ValueError(
                f"manifest uses schema {schema}, newer than the "
                f"{MANIFEST_SCHEMA} this version reads"
            )
        raise ValueError(f"not a {MANIFEST_SCHEMA} document (schema {schema!r})")
    if not isinstance(doc.get("plugins"), list):
        raise ValueError("manifest has no plugins list")
    return doc
