"""Built-in component registration -- through the same hook plugins use.

Everything repro bundles (the miss-measurement backends, seventeen
kernels, two energy models, three SRAM parts, the sqlite store tier) is
registered here, via exactly the :class:`~repro.registry.core.RegistryHook`
protocol a third-party ``repro.plugins`` entry point receives.  There is
no privileged wiring path: deleting a line here and re-adding it from an
installed package would be behaviour-preserving (modulo the ``origin``
recorded in manifests).

Imports are deliberately local to :func:`register`: the registry is
discovered lazily from inside :mod:`repro.engine.backends` and
:mod:`repro.kernels`, and importing those modules at the top level here
would recurse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.registry.core import RegistryHook

__all__ = ["register"]


def register(hook: "RegistryHook") -> None:
    """Register every bundled component on ``hook``."""
    _register_backends(hook)
    _register_kernels(hook)
    _register_energy(hook)
    _register_srams(hook)
    _register_stores(hook)
    _register_searchers(hook)


def _register_backends(hook: "RegistryHook") -> None:
    from repro.engine import backends

    hook.backend(backends.FastSimBackend.name, backends.FastSimBackend)
    hook.backend(backends.ReferenceBackend.name, backends.ReferenceBackend)
    hook.backend(backends.SampledBackend.name, backends.SampledBackend)
    hook.backend(backends.AnalyticBackend.name, backends.AnalyticBackend)
    hook.backend(backends.OnePassBackend.name, backends.OnePassBackend)
    # "auto" is the sweep-default alias: it constructs the one-pass
    # backend, so everything downstream (fingerprints, store eval ids,
    # manifests) records the concrete name "onepass".
    hook.backend("auto", backends.OnePassBackend)


def _register_kernels(hook: "RegistryHook") -> None:
    from repro import kernels
    from repro.kernels.mpeg import MPEG_KERNEL_NAMES, make_mpeg_kernel

    hook.kernel("compress", kernels.make_compress)
    hook.kernel("conv2d", kernels.make_conv2d)
    hook.kernel("matmul", kernels.make_matmul)
    hook.kernel("matadd", kernels.make_matadd)
    hook.kernel("pde", kernels.make_pde)
    hook.kernel("sor", kernels.make_sor)
    hook.kernel("dequant", kernels.make_dequant)
    hook.kernel("transpose", kernels.make_transpose)
    for name in MPEG_KERNEL_NAMES:
        hook.kernel(
            f"mpeg:{name}",
            _bind_mpeg_kernel(make_mpeg_kernel, name),
        )


def _bind_mpeg_kernel(make_mpeg_kernel, name):
    """A zero-argument factory for one MPEG decoder kernel."""

    def factory():
        return make_mpeg_kernel(name)

    factory.__name__ = f"make_mpeg_{name}"
    factory.__qualname__ = factory.__name__
    factory.__doc__ = f"The MPEG decoder kernel {name!r} (paper defaults)."
    return factory


def _register_energy(hook: "RegistryHook") -> None:
    from repro.energy.kamble_ghose import KambleGhoseModel
    from repro.energy.model import EnergyModel

    hook.energy("hwo", EnergyModel)
    hook.energy("kamble-ghose", KambleGhoseModel)


def _register_srams(hook: "RegistryHook") -> None:
    from repro.energy.params import SRAM_CATALOG

    for name, part in SRAM_CATALOG.items():
        hook.sram(name, _bind_sram(part))


def _bind_sram(part):
    """A zero-argument factory returning one (frozen) SRAM part."""

    def factory():
        return part

    factory.__name__ = f"sram_{part.name}"
    factory.__qualname__ = factory.__name__
    factory.__doc__ = f"The off-chip SRAM part {part.name!r}."
    return factory


def _register_stores(hook: "RegistryHook") -> None:
    from repro.serve.store import open_store

    hook.store("sqlite", open_store)


def _register_searchers(hook: "RegistryHook") -> None:
    from repro.moo.heuristics import GreedyDescentSearcher, PrunedSweepSearcher
    from repro.moo.searchers import GrammaticalEvolutionSearcher, NSGA2Searcher

    hook.searcher(NSGA2Searcher.name, NSGA2Searcher)
    hook.searcher(GrammaticalEvolutionSearcher.name, GrammaticalEvolutionSearcher)
    hook.searcher(GreedyDescentSearcher.name, GreedyDescentSearcher)
    hook.searcher(PrunedSweepSearcher.name, PrunedSweepSearcher)
