"""Instruction-cache extension.

"The exploration procedure described here for data caches can be extended
to instruction caches by merging the method of Kirovski et al [8] with
ours" (Section 1).  This subpackage implements that extension: a basic-block
program model generates instruction-fetch traces (Kirovski's
application-driven view of code as weighted basic blocks), and the same
MemExplore metrics rank instruction-cache configurations.  Tiling does not
apply to instruction streams, so the sweep is over ``(T, L, S)`` only.
"""

from repro.icache.blocks import BasicBlock, ControlFlowTrace, Program
from repro.icache.explorer import ICacheExplorer
from repro.icache.placement import PlacementResult, place_blocks, temporal_affinity
from repro.icache.unified import SplitComparison, merged_trace, split_vs_unified

__all__ = [
    "BasicBlock",
    "ControlFlowTrace",
    "ICacheExplorer",
    "PlacementResult",
    "Program",
    "SplitComparison",
    "merged_trace",
    "place_blocks",
    "split_vs_unified",
    "temporal_affinity",
]
