"""Basic-block program model for instruction traces.

A :class:`Program` is a set of basic blocks placed in instruction memory;
a :class:`ControlFlowTrace` is the dynamic sequence of blocks executed
(loops are expressed by repetition).  Expanding the block sequence into
per-instruction fetch addresses gives the instruction analogue of the data
traces of :mod:`repro.loops.trace_gen`, which the shared metric machinery
then scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cache.trace import MemoryTrace

__all__ = ["BasicBlock", "ControlFlowTrace", "Program"]


@dataclass(frozen=True)
class BasicBlock:
    """A straight-line code region: name, byte address, instruction count."""

    name: str
    address: int
    instructions: int
    instruction_size: int = 4

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"block {self.name!r}: negative address")
        if self.instructions <= 0:
            raise ValueError(f"block {self.name!r}: needs at least 1 instruction")
        if self.instruction_size <= 0:
            raise ValueError(f"block {self.name!r}: bad instruction size")

    @property
    def size_bytes(self) -> int:
        """Byte footprint of the block."""
        return self.instructions * self.instruction_size

    def fetch_addresses(self) -> np.ndarray:
        """Fetch address of every instruction in the block, in order."""
        return self.address + self.instruction_size * np.arange(
            self.instructions, dtype=np.int64
        )


@dataclass(frozen=True)
class Program:
    """Basic blocks laid out in instruction memory."""

    blocks: Tuple[BasicBlock, ...]

    def __post_init__(self) -> None:
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ValueError("basic block names must be unique")
        spans = sorted((b.address, b.address + b.size_bytes) for b in self.blocks)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            if start < end:
                raise ValueError("basic blocks overlap in instruction memory")

    @staticmethod
    def sequential(
        sizes: Sequence[Tuple[str, int]],
        base: int = 0,
        instruction_size: int = 4,
    ) -> "Program":
        """Lay blocks back to back starting at ``base``."""
        blocks: List[BasicBlock] = []
        cursor = base
        for name, instructions in sizes:
            block = BasicBlock(name, cursor, instructions, instruction_size)
            blocks.append(block)
            cursor += block.size_bytes
        return Program(tuple(blocks))

    def block(self, name: str) -> BasicBlock:
        """Look up a block by name."""
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"program has no basic block {name!r}")

    @property
    def footprint_bytes(self) -> int:
        """Bytes from the lowest block start to the highest block end."""
        if not self.blocks:
            return 0
        start = min(b.address for b in self.blocks)
        end = max(b.address + b.size_bytes for b in self.blocks)
        return end - start


@dataclass(frozen=True)
class ControlFlowTrace:
    """A dynamic execution: the sequence of basic blocks entered."""

    program: Program
    sequence: Tuple[str, ...]

    def __post_init__(self) -> None:
        known = {b.name for b in self.program.blocks}
        unknown = set(self.sequence) - known
        if unknown:
            raise ValueError(f"trace references unknown blocks {sorted(unknown)}")

    @staticmethod
    def loop(
        program: Program,
        body: Sequence[str],
        iterations: int,
        prologue: Sequence[str] = (),
        epilogue: Sequence[str] = (),
    ) -> "ControlFlowTrace":
        """A simple loop execution: prologue, body x iterations, epilogue."""
        if iterations < 0:
            raise ValueError("iteration count must be non-negative")
        sequence = tuple(prologue) + tuple(body) * iterations + tuple(epilogue)
        return ControlFlowTrace(program, sequence)

    @property
    def dynamic_instructions(self) -> int:
        """Total instructions fetched."""
        return sum(self.program.block(name).instructions for name in self.sequence)

    def block_frequencies(self) -> Dict[str, int]:
        """How many times each block is entered (Kirovski's weights)."""
        freq: Dict[str, int] = {}
        for name in self.sequence:
            freq[name] = freq.get(name, 0) + 1
        return freq

    def fetch_trace(self) -> MemoryTrace:
        """Expand to the instruction-fetch address trace (all reads)."""
        if not self.sequence:
            return MemoryTrace([])
        parts = [self.program.block(name).fetch_addresses() for name in self.sequence]
        addresses = np.concatenate(parts)
        return MemoryTrace(addresses)
