"""Basic-block placement for instruction caches (the code-side Section 4.1).

Kirovski et al.'s application-driven synthesis places code so that the hot
path does not conflict with itself in the instruction cache -- the exact
mirror of the paper's off-chip *data* assignment.  This module implements
a weighted conflict-minimising placement:

1. Estimate pairwise *temporal affinity* from the dynamic block sequence:
   blocks executed close together must not share cache lines.
2. Greedily lay blocks out in descending execution frequency, choosing for
   each block the line-aligned address (within a bounded search window)
   that minimises the affinity-weighted overlap with already-placed
   neighbours, modulo the cache span.

Like the data-side assignment, the placement can insert gaps ("even though
there is no valid data in locations 32 through 35" -- here, padding NOPs
between functions), and the result is validated by simulation, not
assumed: :func:`place_blocks` returns a relocated
:class:`~repro.icache.blocks.Program` whose fetch trace the caller replays
through the cache substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.icache.blocks import BasicBlock, ControlFlowTrace, Program

__all__ = ["PlacementResult", "place_blocks", "temporal_affinity"]


def temporal_affinity(
    execution: ControlFlowTrace, window: int = 2
) -> Dict[Tuple[str, str], int]:
    """Pairwise co-execution weights from the dynamic block sequence.

    Two blocks executed within ``window`` steps of each other gain one
    unit of affinity per co-occurrence; blocks with high affinity must not
    alias in the cache.  The pair key is order-independent.
    """
    if window < 1:
        raise ValueError("affinity window must be at least 1")
    sequence = execution.sequence
    affinity: Dict[Tuple[str, str], int] = {}
    for i, name in enumerate(sequence):
        for j in range(i + 1, min(i + 1 + window, len(sequence))):
            other = sequence[j]
            if other == name:
                continue
            key = (name, other) if name < other else (other, name)
            affinity[key] = affinity.get(key, 0) + 1
    return affinity


@dataclass(frozen=True)
class PlacementResult:
    """A relocated program plus the placement diagnostics."""

    program: Program
    cache_size: int
    line_size: int
    padding_bytes: int
    estimated_conflict_weight: int


def _lines_of(
    address: int, size_bytes: int, line_size: int, num_lines: int
) -> Set[int]:
    first = address // line_size
    last = (address + size_bytes - 1) // line_size
    return {line % num_lines for line in range(first, last + 1)}


def place_blocks(
    execution: ControlFlowTrace,
    cache_size: int,
    line_size: int,
    window: int = 2,
    search_lines: Optional[int] = None,
) -> PlacementResult:
    """Conflict-minimising relocation of the program's basic blocks.

    Blocks are placed in descending execution frequency; each may be pushed
    forward by up to ``search_lines`` line-aligned gaps (default: one full
    cache span) when doing so reduces the affinity-weighted line overlap
    with the blocks already placed.
    """
    if cache_size <= 0 or line_size <= 0 or cache_size % line_size:
        raise ValueError("cache size must be a positive multiple of line size")
    num_lines = cache_size // line_size
    if search_lines is None:
        search_lines = num_lines
    freq = execution.block_frequencies()
    affinity = temporal_affinity(execution, window=window)
    program = execution.program

    order = sorted(
        program.blocks,
        key=lambda b: (-freq.get(b.name, 0), b.address),
    )
    placed: Dict[str, Tuple[BasicBlock, Set[int]]] = {}
    cursor = min(b.address for b in program.blocks) if program.blocks else 0
    total_padding = 0
    total_conflict = 0

    for block in order:
        aligned = -(-cursor // line_size) * line_size
        best_cost = None
        best_address = aligned
        for step in range(search_lines + 1):
            candidate = aligned + step * line_size
            lines = _lines_of(candidate, block.size_bytes, line_size, num_lines)
            cost = 0
            for other_name, (_, other_lines) in placed.items():
                if lines & other_lines:
                    key = (
                        (block.name, other_name)
                        if block.name < other_name
                        else (other_name, block.name)
                    )
                    cost += affinity.get(key, 0)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_address = candidate
            if cost == 0:
                break
        lines = _lines_of(best_address, block.size_bytes, line_size, num_lines)
        placed[block.name] = (
            BasicBlock(
                block.name, best_address, block.instructions, block.instruction_size
            ),
            lines,
        )
        total_padding += best_address - aligned
        total_conflict += best_cost or 0
        cursor = best_address + block.size_bytes

    relocated = Program(
        tuple(sorted((b for b, _ in placed.values()), key=lambda b: b.address))
    )
    return PlacementResult(
        program=relocated,
        cache_size=cache_size,
        line_size=line_size,
        padding_bytes=total_padding,
        estimated_conflict_weight=total_conflict,
    )
