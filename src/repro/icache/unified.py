"""Split vs unified caches: spending one on-chip budget on I and D.

The paper explores the data cache alone (and sketches the instruction side
as future work).  A real SoC splits one silicon budget between the two --
or buys a single unified cache serving both streams.  This module builds
the merged instruction+data trace of a loop kernel (each iteration fetches
its loop body, then performs its data accesses) and compares:

* **split** -- an instruction cache and a data cache, each a power-of-two
  share of the budget, each serving its own stream;
* **unified** -- one cache of the full budget serving the interleaved
  stream, where hot loop code and data evict each other.

The expected embedded-systems result (borne out by the bench): a tiny
dedicated I-cache pins the loop body, so the best split beats the unified
cache whenever the data stream is eviction-prone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.fastsim import fast_hit_miss_counts
from repro.cache.trace import MemoryTrace
from repro.core.config import powers_of_two
from repro.kernels.base import Kernel

__all__ = ["SplitComparison", "merged_trace", "split_vs_unified"]

#: Instruction width in bytes (matches the basic-block model's default).
INSTRUCTION_BYTES = 4


def merged_trace(
    kernel: Kernel,
    body_instructions: int = 12,
    code_base: Optional[int] = None,
) -> Tuple[MemoryTrace, np.ndarray]:
    """Interleave per-iteration instruction fetches with the data accesses.

    Returns the merged trace plus a boolean mask marking the instruction
    fetches.  The loop body is ``body_instructions`` straight-line
    instructions starting at ``code_base`` (defaults to just past the data
    footprint, rounded to 4 KiB -- code and data segments are disjoint).
    """
    if body_instructions < 1:
        raise ValueError("a loop body needs at least one instruction")
    data = kernel.trace()
    if code_base is None:
        footprint = int(data.addresses.max()) + 1 if len(data) else 0
        code_base = -(-footprint // 4096) * 4096
    iterations = kernel.nest.iterations
    refs_per_iter = len(kernel.nest.refs)
    fetches = code_base + INSTRUCTION_BYTES * np.arange(
        body_instructions, dtype=np.int64
    )

    addresses: List[np.ndarray] = []
    masks: List[np.ndarray] = []
    data_matrix = data.addresses.reshape(iterations, refs_per_iter)
    for it in range(iterations):
        addresses.append(fetches)
        masks.append(np.ones(body_instructions, dtype=bool))
        addresses.append(data_matrix[it])
        masks.append(np.zeros(refs_per_iter, dtype=bool))
    merged = MemoryTrace(np.concatenate(addresses))
    return merged, np.concatenate(masks)


@dataclass(frozen=True)
class SplitComparison:
    """One budget: the best split pair vs the unified cache."""

    budget: int
    line_size: int
    best_icache: int
    best_dcache: int
    split_misses: int
    unified_misses: int

    @property
    def winner(self) -> str:
        """``"split"`` or ``"unified"`` by total miss count."""
        return "split" if self.split_misses <= self.unified_misses else "unified"


def split_vs_unified(
    kernel: Kernel,
    budget: int,
    line_size: int = 8,
    body_instructions: int = 12,
) -> SplitComparison:
    """Best split of ``budget`` bytes vs one unified cache (direct-mapped).

    The split search tries every power-of-two partition with at least one
    line per side; both organisations serve the same merged trace.
    """
    if budget < 2 * line_size:
        raise ValueError("budget must hold at least one line per side")
    merged, is_fetch = merged_trace(kernel, body_instructions)
    line_ids = merged.line_ids(line_size)
    i_lines = line_ids[is_fetch]
    d_lines = line_ids[~is_fetch]

    best: Optional[Tuple[int, int, int]] = None
    seen = set()
    for i_size in powers_of_two(line_size, budget - line_size):
        remainder = budget - i_size
        d_size = 1 << (remainder.bit_length() - 1)  # round down to 2^k
        if d_size < line_size or (i_size, d_size) in seen:
            continue
        seen.add((i_size, d_size))
        _, i_misses = fast_hit_miss_counts(i_lines, i_size // line_size, 1)
        _, d_misses = fast_hit_miss_counts(d_lines, d_size // line_size, 1)
        total = i_misses + d_misses
        if best is None or total < best[0]:
            best = (total, i_size, d_size)
    assert best is not None
    _, unified_misses = fast_hit_miss_counts(line_ids, budget // line_size, 1)
    return SplitComparison(
        budget=budget,
        line_size=line_size,
        best_icache=best[1],
        best_dcache=best[2],
        split_misses=best[0],
        unified_misses=unified_misses,
    )
