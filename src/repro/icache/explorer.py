"""Instruction-cache exploration over basic-block traces.

A thin consumer of :mod:`repro.engine`: the fetch trace of a
:class:`~repro.icache.blocks.ControlFlowTrace` becomes an
:class:`~repro.engine.workload.InstructionWorkload` and flows through the
same evaluation pipeline as the data-side explorers.  The design space
drops the tiling dimension (``B`` is pinned to 1 -- tiling is a
data-locality transformation), matching how the paper proposes merging
Kirovski's application-driven instruction-side method with its data-side
exploration.
"""

from __future__ import annotations

import logging
import warnings
from typing import Iterable, Optional, Union

from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig, design_space
from repro.core.metrics import PerformanceEstimate
from repro.energy.model import EnergyModel
from repro.engine.backends import Backend
from repro.engine.evaluator import Evaluator
from repro.engine.result import ExplorationResult
from repro.engine.workload import InstructionWorkload
from repro.icache.blocks import ControlFlowTrace

__all__ = ["ICacheExplorer"]

logger = logging.getLogger(__name__)


class ICacheExplorer:
    """MemExplore over an instruction-fetch stream."""

    def __init__(
        self,
        execution: ControlFlowTrace,
        energy_model: Optional[EnergyModel] = None,
        gray_code: bool = True,
        backend: Union[str, Backend, None] = None,
    ) -> None:
        self.execution = execution
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.gray_code = gray_code
        self.workload = InstructionWorkload(execution)
        self.evaluator = Evaluator(
            self.workload,
            backend=backend,
            energy_model=self.energy_model,
            gray_code=gray_code,
        )

    @property
    def trace(self) -> MemoryTrace:
        """Deprecated: the engine workload owns the fetch trace now."""
        warnings.warn(
            "ICacheExplorer.trace is deprecated; use "
            "ICacheExplorer.workload.trace (repro.engine.InstructionWorkload)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.workload.trace

    def evaluate(self, config: CacheConfig) -> PerformanceEstimate:
        """Metrics of one instruction-cache configuration."""
        return self.evaluator.evaluate(config)

    def explore(
        self,
        configs: Optional[Iterable[CacheConfig]] = None,
        max_size: int = 1024,
        jobs: int = 1,
        **space_kwargs,
    ) -> ExplorationResult:
        """Sweep the (T, L, S) space (tiling pinned to 1)."""
        if configs is None:
            space_kwargs.setdefault("tilings", (1,))
            configs = design_space(max_size=max_size, **space_kwargs)
        logger.info(
            "ICacheExplore: %d fetch accesses, backend=%s jobs=%d",
            len(self.workload.trace),
            self.evaluator.backend.name,
            jobs,
        )
        return self.evaluator.sweep(configs=configs, jobs=jobs)
