"""Instruction-cache exploration over basic-block traces.

Reuses :func:`repro.core.explorer.evaluate_trace` on the fetch trace of a
:class:`~repro.icache.blocks.ControlFlowTrace`.  The design space drops the
tiling dimension (``B`` is pinned to 1 -- tiling is a data-locality
transformation), matching how the paper proposes merging Kirovski's
application-driven instruction-side method with its data-side exploration.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.trace import MemoryTrace
from repro.core.config import CacheConfig, design_space
from repro.core.explorer import ExplorationResult, evaluate_trace
from repro.energy.model import EnergyModel
from repro.icache.blocks import ControlFlowTrace

__all__ = ["ICacheExplorer"]


class ICacheExplorer:
    """MemExplore over an instruction-fetch stream."""

    def __init__(
        self,
        execution: ControlFlowTrace,
        energy_model: Optional[EnergyModel] = None,
        gray_code: bool = True,
    ) -> None:
        self.execution = execution
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.gray_code = gray_code
        self._trace: Optional[MemoryTrace] = None

    @property
    def trace(self) -> MemoryTrace:
        """The expanded fetch trace (computed once)."""
        if self._trace is None:
            self._trace = self.execution.fetch_trace()
        return self._trace

    def evaluate(self, config: CacheConfig) -> "PerformanceEstimate":
        """Metrics of one instruction-cache configuration."""
        if config.tiling != 1:
            raise ValueError("tiling does not apply to instruction caches")
        return evaluate_trace(
            self.trace,
            config,
            energy_model=self.energy_model,
            gray_code=self.gray_code,
        )

    def explore(
        self,
        configs: Optional[Iterable[CacheConfig]] = None,
        max_size: int = 1024,
        **space_kwargs,
    ) -> ExplorationResult:
        """Sweep the (T, L, S) space (tiling pinned to 1)."""
        if configs is None:
            space_kwargs.setdefault("tilings", (1,))
            configs = design_space(max_size=max_size, **space_kwargs)
        estimates = []
        for config in sorted(
            configs, key=lambda c: (c.size, c.line_size, c.ways)
        ):
            estimates.append(self.evaluate(config))
        return ExplorationResult(estimates)
