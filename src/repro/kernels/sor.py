"""SOR benchmark: in-place successive over-relaxation (Gauss-Seidel) sweep.

::

    int a[32][32];
    for i = 1, 31:
        for j = 1, 31:
            a[i][j] = (a[i][j] + a[i-1][j] + a[i][j-1]) / 3;

The in-place over-relaxation update in its causal (Gauss-Seidel) form --
only already-updated neighbours are read, which keeps the paper's full
31x31 iteration space inside a 32x32 array with a power-of-two row pitch.
Like PDE it is a multi-class stencil, but updating in place puts *all*
classes on one array, stressing the row-pitch padding of the Section 4.1
assignment rather than its inter-array padding.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_sor"]

_SOURCE = """\
int a[32][32];
for i = 1, 31:
    for j = 1, 31:
        a[i][j] = (a[i][j] + a[i-1][j] + a[i][j-1]) / 3;
"""


def make_sor(n: int = 31, element_size: int = 1) -> Kernel:
    """Build SOR over an ``(n+1) x (n+1)`` array (paper: n = 31)."""
    if n < 1:
        raise ValueError("SOR needs at least one interior point")
    i, j = var("i"), var("j")
    nest = LoopNest(
        name="sor",
        loops=(Loop("i", 1, n), Loop("j", 1, n)),
        refs=(
            ArrayRef("a", (i, j)),
            ArrayRef("a", (i - 1, j)),
            ArrayRef("a", (i, j - 1)),
            ArrayRef("a", (i, j), is_write=True),
        ),
        arrays=(ArrayDecl("a", (n + 1, n + 1), element_size),),
        description="in-place Gauss-Seidel over-relaxation sweep",
    )
    return Kernel(nest=nest, source=_SOURCE)
