"""PDE benchmark: backward-difference relaxation sweep.

::

    int a[32][32], b[32][32];
    for i = 1, 31:
        for j = 1, 31:
            b[i][j] = a[i-1][j] + a[i][j-1] - 2*a[i][j];

An explicit finite-difference update using the causal (backward) stencil, so
the full 31x31 iteration space the paper quotes fits 32x32 arrays with their
natural power-of-two row pitch -- the layout whose row aliasing produces the
catastrophic unoptimized miss rates of Figure 9.  All references share the
identity linear part (fully compatible); the source array contributes two
equivalence classes (rows ``i-1`` and ``i``) and the destination a third.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_pde"]

_SOURCE = """\
int a[32][32], b[32][32];
for i = 1, 31:
    for j = 1, 31:
        b[i][j] = a[i-1][j] + a[i][j-1] - 2*a[i][j];
"""


def make_pde(n: int = 31, element_size: int = 1) -> Kernel:
    """Build the PDE stencil over ``(n+1) x (n+1)`` arrays (paper: n = 31)."""
    if n < 1:
        raise ValueError("PDE needs at least one interior point")
    i, j = var("i"), var("j")
    nest = LoopNest(
        name="pde",
        loops=(Loop("i", 1, n), Loop("j", 1, n)),
        refs=(
            ArrayRef("a", (i - 1, j)),
            ArrayRef("a", (i, j - 1)),
            ArrayRef("a", (i, j)),
            ArrayRef("b", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("a", (n + 1, n + 1), element_size),
            ArrayDecl("b", (n + 1, n + 1), element_size),
        ),
        description="out-of-place backward-difference relaxation sweep",
    )
    return Kernel(nest=nest, source=_SOURCE)
