"""Transpose kernel (Example 3 of the paper -- the tiling motivator).

::

    int a[n][n], b[n][n];
    for i = 1, n:
        for j = 1, n:
            a[i][j] = b[j][i];

"With the j loop innermost, access to array b[] is stride-1 ... access to
array a[] is stride-n.  Interchanging does not help"; tiling both loops
(Example 3(b)) is what fixes it.  Note the reference roles relative to the
paper's sentence: the *written* array ``a[i][j]`` walks stride-1 in ``j``
while the *read* array ``b[j][i]`` walks stride-n, so the read stream is
the one tiling rescues -- the paper quotes the miss rate dropping from 0.44
to 0.06 with a tiling size of two.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_transpose"]

_SOURCE = """\
int a[n][n], b[n][n];
for ti = 1, n, B:
    for tj = 1, n, B:
        for i = ti, min(ti+B-1, n):
            for j = tj, min(tj+B-1, n):
                a[i][j] = b[j][i];
"""


def make_transpose(n: int = 32, element_size: int = 1) -> Kernel:
    """Build the transpose copy over ``(n+1) x (n+1)`` arrays."""
    if n < 1:
        raise ValueError("Transpose needs positive extent")
    i, j = var("i"), var("j")
    nest = LoopNest(
        name="transpose",
        loops=(Loop("i", 1, n), Loop("j", 1, n)),
        refs=(
            ArrayRef("b", (j, i)),
            ArrayRef("a", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("a", (n + 1, n + 1), element_size),
            ArrayDecl("b", (n + 1, n + 1), element_size),
        ),
        description="matrix transpose copy (paper Example 3)",
    )
    return Kernel(nest=nest, source=_SOURCE)
