"""Matrix Multiplication benchmark.

::

    int a[32][32], b[32][32], c[32][32];
    for i = 1, 31:
        for j = 1, 31:
            for k = 1, 31:
                c[i][j] = c[i][j] + a[i][k] * b[k][j];

The three arrays are accessed with *different* linear parts (``[i,k]``,
``[k,j]`` and ``[i,j]``), so the nest is not fully compatible: off-chip
assignment can separate the groups' starting lines but cannot eliminate
conflicts outright, and this kernel is the paper's canonical beneficiary of
tiling.  The paper quotes a 31x31 iteration space for all the small
benchmarks; with the k-loop that is 31^3 iterations.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_matmul"]

_SOURCE = """\
int a[32][32], b[32][32], c[32][32];
for i = 1, 31:
    for j = 1, 31:
        for k = 1, 31:
            c[i][j] = c[i][j] + a[i][k] * b[k][j];
"""


def make_matmul(n: int = 31, element_size: int = 1) -> Kernel:
    """Build Matrix Multiplication over ``(n+1) x (n+1)`` arrays."""
    if n < 1:
        raise ValueError("Matrix Multiplication needs positive extent")
    i, j, k = var("i"), var("j"), var("k")
    nest = LoopNest(
        name="matmul",
        loops=(Loop("i", 1, n), Loop("j", 1, n), Loop("k", 1, n)),
        refs=(
            ArrayRef("c", (i, j)),
            ArrayRef("a", (i, k)),
            ArrayRef("b", (k, j)),
            ArrayRef("c", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("a", (n + 1, n + 1), element_size),
            ArrayDecl("b", (n + 1, n + 1), element_size),
            ArrayDecl("c", (n + 1, n + 1), element_size),
        ),
        description="dense matrix multiply (ijk order)",
    )
    # Tiling the j and k loops (the classic Wolf/Lam blocking) keeps the
    # b[k][j] working set resident; the i loop is left untiled.
    return Kernel(nest=nest, n_tiled=2, source=_SOURCE)
