"""MPEG decoder kernel suite (Section 5 case study).

The paper's case study decomposes an MPEG-1 decoder (Thordarson's behavioural
description, reference [7]) into nine kernels: VLD, Dequant, IDCT, Plus,
Display, Store, and the Prediction trio Addr, Fetch, Compute.  The original
C sources are not published; following the substitution rule of DESIGN.md we
model each kernel as an affine loop nest with the array shapes and reference
patterns of the textbook MPEG-1 pipeline:

* **VLD** -- sequential scan of the bitstream buffer against the VLC table,
  emitting one coefficient per step.  (Real VLD does data-dependent table
  walks; the affine model keeps the stream/table/output *traffic pattern*,
  which is all the exploration consumes.)
* **Dequant** -- 8x8 coefficient block scaled by the quantisation matrix.
* **IDCT** -- 8x8 block times 8x8 cosine basis (one separable pass as a
  small matrix multiply; two passes per block are counted via invocations).
* **Plus** -- reconstruction add of prediction and residual blocks.
* **Display** -- linear copy of the reconstructed frame to the display
  buffer.
* **Store** -- 2D copy of the frame into the reference-frame store.
* **Addr** -- motion-vector fetch and address formation (short linear scan).
* **Fetch** -- 9x9 reference-window load from the frame store (8x8 block
  plus one row/column of half-pel margin).
* **Compute** -- half-pel interpolation over the fetched window (four
  neighbour reads per output pixel).

Invocation counts follow one macroblock row of a small frame
(``macroblocks`` macroblocks of 6 blocks each); the Section 5 aggregation
only consumes the relative ``trip(j)`` weights, so the frame scale is a
tunable, not a result.
"""

from __future__ import annotations

from typing import Dict, List

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["MPEG_KERNEL_NAMES", "make_mpeg_kernel", "mpeg_decoder_kernels"]

MPEG_KERNEL_NAMES = (
    "vld",
    "dequant",
    "idct",
    "plus",
    "display",
    "store",
    "addr",
    "fetch",
    "compute",
)

_BLOCK = 8  # MPEG block edge


def _vld() -> LoopNest:
    k = var("k")
    return LoopNest(
        name="vld",
        loops=(Loop("k", 0, 63),),
        refs=(
            ArrayRef("bits", (k,)),
            ArrayRef("vlc", (k,)),
            ArrayRef("coef", (k,), is_write=True),
        ),
        arrays=(
            ArrayDecl("bits", (64,)),
            ArrayDecl("vlc", (64,)),
            ArrayDecl("coef", (64,)),
        ),
        description="variable-length decode of one block's coefficients",
    )


def _dequant() -> LoopNest:
    i, j = var("i"), var("j")
    return LoopNest(
        name="dequant",
        loops=(Loop("i", 0, _BLOCK - 1), Loop("j", 0, _BLOCK - 1)),
        refs=(
            ArrayRef("coef", (i, j)),
            ArrayRef("qt", (i, j)),
            ArrayRef("dq", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("coef", (_BLOCK, _BLOCK)),
            ArrayDecl("qt", (_BLOCK, _BLOCK)),
            ArrayDecl("dq", (_BLOCK, _BLOCK)),
        ),
        description="8x8 dequantisation",
    )


def _idct() -> LoopNest:
    i, j, k = var("i"), var("j"), var("k")
    return LoopNest(
        name="idct",
        loops=(
            Loop("i", 0, _BLOCK - 1),
            Loop("j", 0, _BLOCK - 1),
            Loop("k", 0, _BLOCK - 1),
        ),
        refs=(
            ArrayRef("dq", (i, k)),
            ArrayRef("cos", (k, j)),
            ArrayRef("pix", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("dq", (_BLOCK, _BLOCK)),
            ArrayDecl("cos", (_BLOCK, _BLOCK)),
            ArrayDecl("pix", (_BLOCK, _BLOCK)),
        ),
        description="one separable 8x8 IDCT pass",
    )


def _plus() -> LoopNest:
    i, j = var("i"), var("j")
    return LoopNest(
        name="plus",
        loops=(Loop("i", 0, _BLOCK - 1), Loop("j", 0, _BLOCK - 1)),
        refs=(
            ArrayRef("pred", (i, j)),
            ArrayRef("pix", (i, j)),
            ArrayRef("rec", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("pred", (_BLOCK, _BLOCK)),
            ArrayDecl("pix", (_BLOCK, _BLOCK)),
            ArrayDecl("rec", (_BLOCK, _BLOCK)),
        ),
        description="reconstruction add (prediction + residual)",
    )


def _display(frame_bytes: int) -> LoopNest:
    k = var("k")
    return LoopNest(
        name="display",
        loops=(Loop("k", 0, frame_bytes - 1),),
        refs=(
            ArrayRef("frame", (k,)),
            ArrayRef("screen", (k,), is_write=True),
        ),
        arrays=(
            ArrayDecl("frame", (frame_bytes,)),
            ArrayDecl("screen", (frame_bytes,)),
        ),
        description="linear frame-to-display copy",
    )


def _store(edge: int) -> LoopNest:
    i, j = var("i"), var("j")
    return LoopNest(
        name="store",
        loops=(Loop("i", 0, edge - 1), Loop("j", 0, edge - 1)),
        refs=(
            ArrayRef("frame", (i, j)),
            ArrayRef("refstore", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("frame", (edge, edge)),
            ArrayDecl("refstore", (edge, edge)),
        ),
        description="2D copy into the reference-frame store",
    )


def _addr() -> LoopNest:
    k = var("k")
    return LoopNest(
        name="addr",
        loops=(Loop("k", 0, 15),),
        refs=(
            ArrayRef("mv", (k,)),
            ArrayRef("mbinfo", (k,)),
            ArrayRef("addrs", (k,), is_write=True),
        ),
        arrays=(
            ArrayDecl("mv", (16,)),
            ArrayDecl("mbinfo", (16,)),
            ArrayDecl("addrs", (16,)),
        ),
        description="motion-vector fetch and address formation",
    )


def _fetch(edge: int) -> LoopNest:
    i, j = var("i"), var("j")
    window = _BLOCK + 1  # one half-pel margin row/column
    return LoopNest(
        name="fetch",
        loops=(Loop("i", 0, window - 1), Loop("j", 0, window - 1)),
        refs=(
            ArrayRef("refstore", (i, j)),
            ArrayRef("win", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("refstore", (edge, edge)),
            ArrayDecl("win", (window, window)),
        ),
        description="9x9 reference-window fetch",
    )


def _compute() -> LoopNest:
    i, j = var("i"), var("j")
    window = _BLOCK + 1
    return LoopNest(
        name="compute",
        loops=(Loop("i", 0, _BLOCK - 1), Loop("j", 0, _BLOCK - 1)),
        refs=(
            ArrayRef("win", (i, j)),
            ArrayRef("win", (i, j + 1)),
            ArrayRef("win", (i + 1, j)),
            ArrayRef("win", (i + 1, j + 1)),
            ArrayRef("pred", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("win", (window, window)),
            ArrayDecl("pred", (_BLOCK, _BLOCK)),
        ),
        description="half-pel interpolation of the prediction block",
    )


def make_mpeg_kernel(name: str, macroblocks: int = 8) -> Kernel:
    """Build one MPEG kernel with its per-frame invocation count.

    ``macroblocks`` scales the frame: each macroblock carries 6 blocks, the
    frame store is sized to hold them, and invocation counts follow the
    pipeline (block kernels run once per block, prediction kernels once per
    macroblock or block, Display/Store once per frame).
    """
    if macroblocks <= 0:
        raise ValueError("macroblock count must be positive")
    blocks = 6 * macroblocks
    edge = 32
    frame_bytes = 1024
    builders = {
        "vld": (_vld(), blocks),
        "dequant": (_dequant(), blocks),
        "idct": (_idct(), 2 * blocks),  # row pass + column pass
        "plus": (_plus(), blocks),
        "display": (_display(frame_bytes), 1),
        "store": (_store(edge), 1),
        "addr": (_addr(), macroblocks),
        "fetch": (_fetch(edge), macroblocks),
        "compute": (_compute(), blocks),
    }
    if name not in builders:
        raise KeyError(
            f"unknown MPEG kernel {name!r}; choose from {MPEG_KERNEL_NAMES}"
        )
    nest, invocations = builders[name]
    return Kernel(nest=nest, invocations=invocations)


def mpeg_decoder_kernels(macroblocks: int = 8) -> List[Kernel]:
    """All nine kernels of the decoder, in pipeline order."""
    return [make_mpeg_kernel(name, macroblocks) for name in MPEG_KERNEL_NAMES]


def mpeg_trip_counts(macroblocks: int = 8) -> Dict[str, int]:
    """``kernel name -> trip count`` (the Section 5 ``trip(j)`` weights)."""
    return {
        kernel.name: kernel.invocations
        for kernel in mpeg_decoder_kernels(macroblocks)
    }
