"""Benchmark kernels: the paper's five loop kernels, the two worked
examples, and the nine-kernel MPEG decoder suite.

:data:`PAPER_KERNELS` lists the five benchmarks of Figures 2, 6, 8 and 9 in
the paper's column order.  :func:`get_kernel` builds any registered kernel
by name with its default (paper) parameters -- resolution goes through the
:mod:`repro.registry` plugin registry, so kernels contributed by installed
``repro.plugins`` entry points are built the same way the bundled ones are.
"""

from typing import List

from repro.kernels.base import Kernel
from repro.kernels.compress import make_compress
from repro.kernels.conv2d import make_conv2d
from repro.kernels.dequant import make_dequant
from repro.kernels.matadd import make_matadd
from repro.kernels.matmul import make_matmul
from repro.kernels.mpeg import (
    MPEG_KERNEL_NAMES,
    make_mpeg_kernel,
    mpeg_decoder_kernels,
    mpeg_trip_counts,
)
from repro.kernels.pde import make_pde
from repro.kernels.sor import make_sor
from repro.kernels.transpose import make_transpose

__all__ = [
    "Kernel",
    "MPEG_KERNEL_NAMES",
    "PAPER_KERNELS",
    "available_kernels",
    "get_kernel",
    "make_compress",
    "make_conv2d",
    "make_dequant",
    "make_matadd",
    "make_matmul",
    "make_mpeg_kernel",
    "make_pde",
    "make_sor",
    "make_transpose",
    "mpeg_decoder_kernels",
    "mpeg_trip_counts",
    "paper_kernels",
]

#: The five benchmarks of the paper's figures, in column order.
PAPER_KERNELS = ("compress", "matmul", "pde", "sor", "dequant")

def available_kernels() -> List[str]:
    """Names accepted by :func:`get_kernel`.

    Non-MPEG kernels sort first, then the ``mpeg:*`` suite -- the order
    the CLI ``list`` command has always printed.  Sourced from the plugin
    registry, so kernels from installed ``repro.plugins`` entry points
    appear too.
    """
    from repro.registry import get_registry

    names = get_registry().names("kernel")
    plain = [name for name in names if not name.startswith("mpeg:")]
    mpeg = [name for name in names if name.startswith("mpeg:")]
    return plain + mpeg


def get_kernel(name: str) -> Kernel:
    """Build a registered kernel by name (``mpeg:<kernel>`` for MPEG kernels)."""
    from repro.registry import UnknownPluginError, get_registry

    try:
        return get_registry().create("kernel", name)
    except UnknownPluginError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {available_kernels()}"
        ) from None


def paper_kernels() -> List[Kernel]:
    """The five figure benchmarks with paper-default parameters."""
    return [get_kernel(name) for name in PAPER_KERNELS]
