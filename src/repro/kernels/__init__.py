"""Benchmark kernels: the paper's five loop kernels, the two worked
examples, and the nine-kernel MPEG decoder suite.

:data:`PAPER_KERNELS` lists the five benchmarks of Figures 2, 6, 8 and 9 in
the paper's column order.  :func:`get_kernel` builds any bundled kernel by
name with its default (paper) parameters.
"""

from typing import Callable, Dict, List

from repro.kernels.base import Kernel
from repro.kernels.compress import make_compress
from repro.kernels.conv2d import make_conv2d
from repro.kernels.dequant import make_dequant
from repro.kernels.matadd import make_matadd
from repro.kernels.matmul import make_matmul
from repro.kernels.mpeg import (
    MPEG_KERNEL_NAMES,
    make_mpeg_kernel,
    mpeg_decoder_kernels,
    mpeg_trip_counts,
)
from repro.kernels.pde import make_pde
from repro.kernels.sor import make_sor
from repro.kernels.transpose import make_transpose

__all__ = [
    "Kernel",
    "MPEG_KERNEL_NAMES",
    "PAPER_KERNELS",
    "available_kernels",
    "get_kernel",
    "make_compress",
    "make_conv2d",
    "make_dequant",
    "make_matadd",
    "make_matmul",
    "make_mpeg_kernel",
    "make_pde",
    "make_sor",
    "make_transpose",
    "mpeg_decoder_kernels",
    "mpeg_trip_counts",
    "paper_kernels",
]

#: The five benchmarks of the paper's figures, in column order.
PAPER_KERNELS = ("compress", "matmul", "pde", "sor", "dequant")

_FACTORIES: Dict[str, Callable[[], Kernel]] = {
    "compress": make_compress,
    "conv2d": make_conv2d,
    "matmul": make_matmul,
    "matadd": make_matadd,
    "pde": make_pde,
    "sor": make_sor,
    "dequant": make_dequant,
    "transpose": make_transpose,
}


def available_kernels() -> List[str]:
    """Names accepted by :func:`get_kernel`."""
    return sorted(_FACTORIES) + [f"mpeg:{name}" for name in MPEG_KERNEL_NAMES]


def get_kernel(name: str) -> Kernel:
    """Build a bundled kernel by name (``mpeg:<kernel>`` for MPEG kernels)."""
    if name.startswith("mpeg:"):
        return make_mpeg_kernel(name.split(":", 1)[1])
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {available_kernels()}"
        ) from None
    return factory()


def paper_kernels() -> List[Kernel]:
    """The five figure benchmarks with paper-default parameters."""
    return [get_kernel(name) for name in PAPER_KERNELS]
