"""The Compress kernel (Example 1 of the paper).

::

    int a[32][32];
    for i = 1, 31:
        for j = 1, 31:
            a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1];

All five references share the identity linear part, so the nest is fully
compatible and Section 4.1 can eliminate its conflict misses completely.
Section 3 derives two equivalence classes -- class 1 ``{a[i-1][j-1],
a[i-1][j]}`` and class 2 ``{a[i][j-1], a[i][j]}`` -- needing two cache lines
each, hence a minimum cache size of ``4 * L``.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_compress"]

_SOURCE = """\
int a[32][32];
for i = 1, 31:
    for j = 1, 31:
        a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1];
"""


def make_compress(n: int = 31, element_size: int = 1) -> Kernel:
    """Build Compress over an ``(n+1) x (n+1)`` array (paper: n = 31)."""
    if n < 1:
        raise ValueError("Compress needs at least one interior row/column")
    i, j = var("i"), var("j")
    nest = LoopNest(
        name="compress",
        loops=(Loop("i", 1, n), Loop("j", 1, n)),
        refs=(
            ArrayRef("a", (i, j)),
            ArrayRef("a", (i - 1, j)),
            ArrayRef("a", (i, j - 1)),
            ArrayRef("a", (i - 1, j - 1)),
            ArrayRef("a", (i, j), is_write=True),
        ),
        arrays=(ArrayDecl("a", (n + 1, n + 1), element_size),),
        description="lossless predictor update (paper Example 1)",
    )
    return Kernel(nest=nest, source=_SOURCE)
