"""Dequant benchmark: MPEG coefficient dequantisation.

::

    int coef[32][32], qt[32][32], out[32][32];
    for i = 1, 31:
        for j = 1, 31:
            out[i][j] = coef[i][j] * qt[i][j];

The dequantisation step of the MPEG decoder (from Panda's study, reference
[1] of the paper), flattened to the same 31x31 iteration space the paper
quotes for all the small benchmarks: each transform coefficient is scaled
by the corresponding entry of the quantisation table.  Three arrays, one
shared identity linear part -- three *cases* of one class, fully compatible.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_dequant"]

_SOURCE = """\
int coef[32][32], qt[32][32], out[32][32];
for i = 1, 31:
    for j = 1, 31:
        out[i][j] = coef[i][j] * qt[i][j];
"""


def make_dequant(n: int = 31, element_size: int = 1) -> Kernel:
    """Build Dequant over ``(n+1) x (n+1)`` arrays (paper: n = 31)."""
    if n < 1:
        raise ValueError("Dequant needs positive extent")
    i, j = var("i"), var("j")
    nest = LoopNest(
        name="dequant",
        loops=(Loop("i", 1, n), Loop("j", 1, n)),
        refs=(
            ArrayRef("coef", (i, j)),
            ArrayRef("qt", (i, j)),
            ArrayRef("out", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("coef", (n + 1, n + 1), element_size),
            ArrayDecl("qt", (n + 1, n + 1), element_size),
            ArrayDecl("out", (n + 1, n + 1), element_size),
        ),
        description="MPEG coefficient dequantisation",
    )
    return Kernel(nest=nest, source=_SOURCE)
