"""Matrix Addition (Example 2 of the paper).

::

    int a[6][6], b[6][6], c[6][6];
    for i = 0, 5:
        for j = 0, 5:
            c[i][j] = a[i][j] + b[i][j];

All three references share the identity linear part but touch different
arrays: they are three *cases* of one equivalence class and need one cache
line each (three lines total).  The paper's Section 4.1 walk-through pads
the bases so array ``b`` starts at byte 38 and ``c`` at byte 76 for a
line size of 2.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_matadd"]

_SOURCE = """\
int a[6][6], b[6][6], c[6][6];
for i = 0, 5:
    for j = 0, 5:
        c[i][j] = a[i][j] + b[i][j];
"""


def make_matadd(n: int = 6, element_size: int = 1) -> Kernel:
    """Build Matrix Addition over ``n x n`` arrays (paper: n = 6)."""
    if n < 1:
        raise ValueError("Matrix Addition needs positive extent")
    i, j = var("i"), var("j")
    nest = LoopNest(
        name="matadd",
        loops=(Loop("i", 0, n - 1), Loop("j", 0, n - 1)),
        refs=(
            ArrayRef("a", (i, j)),
            ArrayRef("b", (i, j)),
            ArrayRef("c", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("a", (n, n), element_size),
            ArrayDecl("b", (n, n), element_size),
            ArrayDecl("c", (n, n), element_size),
        ),
        description="element-wise matrix addition (paper Example 2)",
    )
    return Kernel(nest=nest, source=_SOURCE)
