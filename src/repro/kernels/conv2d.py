"""2D convolution kernel (beyond the paper's five benchmarks).

::

    int img[36][36], coef[4][4], out[32][32];
    for i = 0, 31:
        for j = 0, 31:
            for ki = 0, 3:
                for kj = 0, 3:
                    out[i][j] += coef[ki][kj] * img[i+ki][j+kj];

The workhorse of embedded imaging pipelines and a natural stress case for
the exploration: the image reference mixes two loop indices per subscript
dimension (``i+ki``, ``j+kj``), giving heavy short-distance reuse that a
few cache lines capture, while the coefficient array is tiny and hot.
Added as an out-of-paper workload for the tiling and scratchpad studies.
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.loops.ir import ArrayDecl, ArrayRef, Loop, LoopNest, var

__all__ = ["make_conv2d"]

_SOURCE = """\
int img[n+k][n+k], coef[k][k], out[n][n];
for i = 0, n-1:
    for j = 0, n-1:
        for ki = 0, k-1:
            for kj = 0, k-1:
                out[i][j] += coef[ki][kj] * img[i+ki][j+kj];
"""


def make_conv2d(n: int = 32, taps: int = 4, element_size: int = 1) -> Kernel:
    """Build an ``n x n`` convolution with a ``taps x taps`` kernel."""
    if n < 1 or taps < 1:
        raise ValueError("convolution extents must be positive")
    i, j, ki, kj = var("i"), var("j"), var("ki"), var("kj")
    nest = LoopNest(
        name="conv2d",
        loops=(
            Loop("i", 0, n - 1),
            Loop("j", 0, n - 1),
            Loop("ki", 0, taps - 1),
            Loop("kj", 0, taps - 1),
        ),
        refs=(
            ArrayRef("coef", (ki, kj)),
            ArrayRef("img", (i + ki, j + kj)),
            ArrayRef("out", (i, j)),
            ArrayRef("out", (i, j), is_write=True),
        ),
        arrays=(
            ArrayDecl("img", (n + taps, n + taps), element_size),
            ArrayDecl("coef", (taps, taps), element_size),
            ArrayDecl("out", (n, n), element_size),
        ),
        description="2D convolution (dense, direct form)",
    )
    # Tiling applies to all four loops; the tap loops clip at their tiny
    # extents, so in effect a tile of B >= taps blocks the spatial (i, j)
    # plane -- the standard convolution blocking.
    return Kernel(nest=nest, source=_SOURCE)
