"""Kernel wrapper: a loop nest plus exploration metadata.

A :class:`Kernel` bundles the :class:`~repro.loops.ir.LoopNest` with the
knobs the exploration needs: how many of its innermost loops tiling applies
to, how many times the kernel is invoked inside a larger program (the
``trip(j)`` of Section 5), and the original pseudo-code for documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cache.trace import MemoryTrace
from repro.layout.address_map import DataLayout, default_layout
from repro.layout.assignment import AssignmentResult, assign_offchip_layout
from repro.loops.ir import LoopNest
from repro.loops.reuse import min_cache_lines, min_cache_size
from repro.loops.trace_gen import generate_trace

__all__ = ["Kernel"]


@dataclass(frozen=True)
class Kernel:
    """A benchmark workload: loop nest + exploration metadata."""

    nest: LoopNest
    n_tiled: Optional[int] = None
    invocations: int = 1
    source: str = ""

    def __post_init__(self) -> None:
        if self.invocations <= 0:
            raise ValueError("invocation count must be positive")
        if self.n_tiled is not None and not 0 <= self.n_tiled <= len(self.nest.loops):
            raise ValueError(
                f"kernel {self.name!r}: cannot tile {self.n_tiled} of "
                f"{len(self.nest.loops)} loops"
            )

    @property
    def name(self) -> str:
        """Kernel name (the nest's name)."""
        return self.nest.name

    @property
    def accesses_per_invocation(self) -> int:
        """Memory accesses of one kernel invocation."""
        return self.nest.accesses

    def with_invocations(self, invocations: int) -> "Kernel":
        """A copy invoked a different number of times."""
        return replace(self, invocations=invocations)

    def default_layout(self) -> DataLayout:
        """The unoptimized dense off-chip placement."""
        return default_layout(self.nest)

    def optimized_layout(self, cache_size: int, line_size: int) -> AssignmentResult:
        """Section 4.1 padded placement for the given geometry."""
        return assign_offchip_layout(self.nest, cache_size, line_size)

    def trace(
        self,
        layout: Optional[DataLayout] = None,
        tile: int = 1,
        repeat: int = 1,
    ) -> MemoryTrace:
        """Address trace of ``repeat`` invocations under ``layout``.

        Tiling (``tile > 1``) is applied to the kernel's tiled loops
        (``n_tiled`` innermost; all loops when unset).
        """
        return generate_trace(
            self.nest, layout=layout, tile=tile, n_tiled=self.n_tiled, repeat=repeat
        )

    def min_cache_lines(self, line_size: int) -> int:
        """Section 3 minimum conflict-free line count."""
        return min_cache_lines(self.nest, line_size)

    def min_cache_size(self, line_size: int) -> int:
        """Section 3 minimum conflict-free cache size in bytes."""
        return min_cache_size(self.nest, line_size)
