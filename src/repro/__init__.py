"""repro: reproduction of Shiue & Chakrabarti, "Memory Exploration for Low
Power, Embedded Systems" (DAC 1999).

The package implements the paper's complete stack:

* :mod:`repro.loops` -- affine loop-nest IR, trace generation, tiling, and
  the Section 3 reuse analysis;
* :mod:`repro.cache` -- a Dinero-style trace-driven cache simulator;
* :mod:`repro.energy` -- the Section 2.3 energy model, Gray-coded bus
  switching, and the SRAM part catalog;
* :mod:`repro.layout` -- the Section 4.1 off-chip data assignment;
* :mod:`repro.kernels` -- the benchmark kernels and the MPEG decoder suite;
* :mod:`repro.core` -- Algorithm MemExplore, the cycle model, selection
  under energy/time bounds, Pareto analysis, and the Section 5 composite
  program model;
* :mod:`repro.icache` -- the instruction-cache extension the paper sketches
  in its introduction;
* :mod:`repro.engine` -- the pluggable, parallel evaluation engine every
  explorer runs on: workloads, miss-measurement backends (``fastsim``,
  ``reference``, ``sampled``, ``analytic``), the process-wide
  :class:`~repro.engine.cache.EvalCache`, and multi-process sweeps;
* :mod:`repro.registry` -- the ``repro.plugins`` entry-point registry all
  component names (backends, kernels, energy models, SRAM parts, store
  tiers) resolve through, plus ``repro.manifest/1`` run manifests;
* :mod:`repro.serve` -- exploration-as-a-service: job queue, request
  coalescing, and the persistent ``repro.store/1`` result store.

Quickstart::

    from repro import CacheConfig, MemExplorer, get_kernel

    explorer = MemExplorer(get_kernel("compress"))
    result = explorer.explore(max_size=512, jobs=4)
    print(result.min_energy())           # minimum-energy configuration
    print(result.min_cycles(5500.0))     # minimum-time under an energy bound
"""

from repro.core import (
    AnalyticExplorer,
    CacheConfig,
    CompositeProgram,
    ExplorationResult,
    MemExplorer,
    PerformanceEstimate,
    Selection,
    SelectionError,
    design_space,
    evaluate_trace,
    pareto_front,
    processor_cycles,
    select_configuration,
)
from repro.cache import CacheGeometry, CacheSimulator, MemoryTrace, simulate_trace
from repro.energy import EnergyModel, SRAM_CATALOG, SRAMPart, TechnologyParams
from repro.engine import (
    Backend,
    EvalCache,
    Evaluator,
    InstructionWorkload,
    KernelWorkload,
    ParallelSweep,
    TraceWorkload,
    Workload,
    available_backends,
    configure_eval_cache,
    get_backend,
    get_eval_cache,
)
from repro.kernels import (
    PAPER_KERNELS,
    Kernel,
    available_kernels,
    get_kernel,
    mpeg_decoder_kernels,
    paper_kernels,
)
from repro.layout import assign_offchip_layout, default_layout
from repro.loops import LoopNest, generate_trace, min_cache_lines, min_cache_size

__version__ = "1.0.0"

__all__ = [
    "AnalyticExplorer",
    "Backend",
    "CacheConfig",
    "CacheGeometry",
    "CacheSimulator",
    "CompositeProgram",
    "EnergyModel",
    "EvalCache",
    "Evaluator",
    "ExplorationResult",
    "InstructionWorkload",
    "Kernel",
    "KernelWorkload",
    "LoopNest",
    "MemExplorer",
    "MemoryTrace",
    "PAPER_KERNELS",
    "ParallelSweep",
    "PerformanceEstimate",
    "SRAMPart",
    "SRAM_CATALOG",
    "Selection",
    "SelectionError",
    "TechnologyParams",
    "TraceWorkload",
    "Workload",
    "__version__",
    "assign_offchip_layout",
    "available_backends",
    "available_kernels",
    "configure_eval_cache",
    "default_layout",
    "design_space",
    "evaluate_trace",
    "generate_trace",
    "get_backend",
    "get_eval_cache",
    "get_kernel",
    "min_cache_lines",
    "min_cache_size",
    "mpeg_decoder_kernels",
    "paper_kernels",
    "pareto_front",
    "processor_cycles",
    "select_configuration",
    "simulate_trace",
]
