"""Off-chip memory assignment (Section 4.1).

Conflict misses occur when data that will be reused soon is displaced by a
subsequent access mapping to the same cache line.  The paper (extending
Panda/Dutt/Nicolau) removes them by *placing arrays in main memory with
padding* so that references belonging to different equivalence
classes/cases never share a cache line.

Worked example from the paper (Compress, line size 2, cache size 8 = 4
lines): class 1 anchors at ``a[0][0]`` = address 0 = line slot 0; class 2
anchors at ``a[1][0]``.  With the dense row pitch of 32 that address is 32,
which is slot 0 again -- a conflict every iteration.  Padding the row pitch
to 36 moves ``a[1][0]`` to slot 2 and all conflicts disappear, "even though
there is no valid data in locations 32 through 35".

The algorithm generalizes that construction.  Each class/case occupies a
byte *window* that slides through the cache as the loops advance; the
placement is conflict-free when, at every instant, no two windows touch the
same cache line.  Because all windows of a *compatible* nest (one shared
linear part ``H``) slide in lockstep, two invariants make that instantaneous
condition hold for the whole execution:

1. **Guarded separation.**  Working modulo the cache span
   (``num_lines * line_size`` bytes), the circular gap between any two
   windows' byte intervals must be at least the line size: two bytes closer
   than ``L`` can land in the same line for *some* slide offset.  This is
   exactly why the paper's line-count formula rounds up by two lines rather
   than one when the distance does not divide evenly.
2. **Pitch coherence.**  When the outer loop advances, a window anchored on
   array ``x`` jumps by ``element_size * row_pitch(x)``.  All referenced
   multi-row arrays must therefore use row pitches congruent modulo the
   cache span, or their windows drift relative to each other and eventually
   collide (this is invisible in single-array kernels like Compress but
   essential for PDE's ``a``/``b`` pair).

The search picks, per array, the smallest padded row pitch satisfying both
invariants for its own windows and then the smallest base (preferring the
lowest free line slot, matching the paper's walk-throughs) that clears the
windows already placed.  For incompatible nests (Matrix Multiplication)
windows slide at different rates and no placement is conflict-free; the
search still separates the anchors (best effort) and the result's
``conflict_free`` flag reports which case applies -- verified against the
simulator's 3C classification by the integration suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.layout.address_map import ArrayPlacement, DataLayout
from repro.loops.compat import nest_is_compatible
from repro.loops.ir import ArrayDecl, LoopNest
from repro.loops.reuse import ReferenceGroup, group_references

__all__ = ["AssignmentResult", "assign_offchip_layout"]


@dataclass(frozen=True)
class ByteWindow:
    """One group's instantaneous footprint: anchor byte offset and width.

    ``anchor_elements`` is relative to the array base (in elements, at the
    nest's first iteration point); ``width_bytes`` spans from the first to
    one past the last byte the group touches at one instant.
    """

    group: ReferenceGroup
    anchor_elements: int
    width_bytes: int


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of the off-chip assignment.

    ``layout`` is the padded placement; ``slots`` maps each group (keyed by
    the index of its first reference) to the cache-line slot its anchor
    occupies at the first iteration; ``conflict_free`` is True when the nest
    is compatible *and* every window got guarded separation, i.e. the
    paper's complete-elimination guarantee applies.
    """

    layout: DataLayout
    slots: Tuple[Tuple[int, int], ...]
    conflict_free: bool
    cache_lines: int
    line_size: int

    def slot_of(self, first_ref_index: int) -> int:
        """Line slot of the group anchored at ``first_ref_index``."""
        for ref, slot in self.slots:
            if ref == first_ref_index:
                return slot
        raise KeyError(f"no group anchored at reference {first_ref_index}")


def _pitches_with_row(decl: ArrayDecl, row_pitch: int) -> Tuple[int, ...]:
    """Row-major pitches with the outermost dimension padded to ``row_pitch``."""
    dense = list(decl.row_major_strides())
    if decl.rank == 1:
        return tuple(dense)
    if row_pitch < dense[0]:
        raise ValueError("row pitch below dense stride would fold rows")
    padded = list(dense)
    padded[0] = row_pitch
    return tuple(padded)


def _group_windows(
    nest: LoopNest,
    groups: Sequence[ReferenceGroup],
    decl: ArrayDecl,
    pitches: Sequence[int],
    sweep: bool,
) -> List[ByteWindow]:
    """Byte windows of one array's groups under the given pitches.

    Anchors are evaluated at the nest's first iteration point with the
    padded pitches, so row padding moves the windows exactly as it moves
    the addresses.

    With ``sweep`` set, a window covers the group's entire innermost-loop
    *sweep range* (its instantaneous extent plus the distance it slides
    during one sweep).  Sweep ranges protect a class's trail -- lines
    already passed this sweep that will be reused after the outer loop
    advances -- from other classes crossing them.  Without it, the window
    is the instantaneous extent only (the fallback criterion for caches
    too small to hold sweep ranges, where no trail survives anyway).
    """
    first_point = {lp.index: lp.lower for lp in nest.loops}
    innermost = nest.loops[-1] if nest.loops else None
    windows = []
    for group in groups:
        offsets = []
        for ref_index in group.ref_indices:
            subscripts = nest.refs[ref_index].evaluate(first_point)
            offsets.append(sum(p * s for p, s in zip(pitches, subscripts)))
        anchor = min(offsets)
        width = (max(offsets) - anchor + 1) * decl.element_size
        if sweep and innermost is not None:
            ref = nest.refs[group.ref_indices[0]]
            delta = sum(
                p * expr.coeff(innermost.index)
                for p, expr in zip(pitches, ref.indices)
            )
            slide = abs(delta) * decl.element_size * innermost.step
            width += (innermost.trip_count - 1) * slide
            if delta < 0:
                anchor -= (innermost.trip_count - 1) * abs(delta)
        windows.append(ByteWindow(group, anchor, width))
    return windows


def _intervals_clear(
    intervals: Sequence[Tuple[int, int]],
    line_size: int,
    span: int,
) -> bool:
    """True when no two circular byte intervals can ever share a cache line.

    ``intervals`` are ``(start mod span, width)`` pairs on a circle of
    ``span`` bytes tiled by ``line_size``-byte lines.  As the windows slide
    by a *common* offset, two bytes land in the same line for some offset
    iff their circular distance is at most ``line_size - 1``; so a pair of
    windows is safe iff the byte distance from either window's last byte to
    the other's first byte (going forward around the circle) is at least
    ``line_size``.  A single window never conflicts with itself (a class
    owns its own lines).
    """
    n = len(intervals)
    for i in range(n):
        start_i, width_i = intervals[i]
        end_i = start_i + width_i - 1
        for j in range(i + 1, n):
            start_j, width_j = intervals[j]
            end_j = start_j + width_j - 1
            if width_i + width_j > span:
                return False  # they must overlap somewhere on the circle
            if (start_j - start_i) % span < width_i:
                return False  # j starts inside i
            if (start_i - start_j) % span < width_j:
                return False  # i starts inside j
            forward = (start_j - end_i) % span
            backward = (start_i - end_j) % span
            if forward < line_size or backward < line_size:
                return False
    return True


def assign_offchip_layout(
    nest: LoopNest,
    cache_size: int,
    line_size: int,
    max_pitch_padding: Optional[int] = None,
    verify: bool = True,
) -> AssignmentResult:
    """Compute a padded off-chip layout for ``nest`` targeting the geometry.

    Placement is constructed in two attempts: first separating the classes'
    full *sweep ranges* (which also protects each class's trail within a
    sweep), then -- for caches too small to hold sweep ranges, where no
    trail survives any replacement policy -- separating the instantaneous
    windows only.

    Parameters
    ----------
    cache_size, line_size:
        Geometry in bytes; separation is enforced modulo the full cache
        span so the placement is conflict-free for a direct-mapped cache of
        this size (and therefore for any higher associativity of the same
        size).
    max_pitch_padding:
        Upper bound on extra row padding in elements (defaults to one full
        cache span, which always contains a coherent candidate).
    verify:
        Certify the ``conflict_free`` flag by simulation (default): the
        flag is set only when the padded trace takes *exactly* as many
        misses direct-mapped as fully associative at this capacity.  With
        ``verify=False`` the flag reports the constructive sweep-range
        criterion only (sound but conservative).
    """
    if cache_size <= 0 or line_size <= 0 or cache_size % line_size:
        raise ValueError("cache size must be a positive multiple of line size")
    placements, slots, all_clear = _place(
        nest, cache_size, line_size, max_pitch_padding, sweep=True
    )
    if not all_clear:
        fallback_placements, fallback_slots, _ = _place(
            nest, cache_size, line_size, max_pitch_padding, sweep=False
        )
        placements, slots = fallback_placements, fallback_slots

    num_lines = cache_size // line_size
    layout = DataLayout.from_dict(placements)
    if nest_is_compatible(nest) and nest.refs:
        if verify:
            conflict_free = _verified_conflict_free(
                nest, layout, cache_size, line_size
            )
        else:
            conflict_free = all_clear
    else:
        conflict_free = False if nest.refs else True
    return AssignmentResult(
        layout=layout,
        slots=tuple(slots),
        conflict_free=conflict_free,
        cache_lines=num_lines,
        line_size=line_size,
    )


def _verified_conflict_free(
    nest: LoopNest, layout: DataLayout, cache_size: int, line_size: int
) -> bool:
    """Simulation certificate: zero conflict misses in the 3C sense.

    A miss is a *conflict* miss when the direct-mapped cache takes it but a
    fully-associative LRU cache of the same capacity would not; the layout
    is certified when the direct-mapped miss count does not exceed the
    fully-associative one.  (A good padded placement can beat
    fully-associative LRU outright -- the indexed placement protects lines
    LRU would evict -- so equality is not required.)
    """
    from repro.cache.fastsim import fast_hit_miss_counts
    from repro.loops.trace_gen import generate_trace

    trace = generate_trace(nest, layout=layout)
    line_ids = trace.line_ids(line_size)
    num_lines = cache_size // line_size
    _, direct_mapped = fast_hit_miss_counts(line_ids, num_lines, 1)
    _, fully_assoc = fast_hit_miss_counts(line_ids, 1, num_lines)
    return direct_mapped <= fully_assoc


def _place(
    nest: LoopNest,
    cache_size: int,
    line_size: int,
    max_pitch_padding: Optional[int],
    sweep: bool,
) -> "tuple[Dict[str, ArrayPlacement], List[Tuple[int, int]], bool]":
    """One constructive placement pass (see :func:`assign_offchip_layout`)."""
    span = cache_size  # num_lines * line_size bytes
    num_lines = cache_size // line_size
    groups = group_references(nest)
    by_array: Dict[str, List[ReferenceGroup]] = {}
    for group in groups:
        by_array.setdefault(group.array, []).append(group)

    placements: Dict[str, ArrayPlacement] = {}
    slots: List[Tuple[int, int]] = []
    placed: List[Tuple[int, int]] = []  # (start mod span, width) intervals
    cursor = 0
    all_clear = True
    required_shift: Optional[int] = None

    for decl in nest.arrays:
        array_groups = by_array.get(decl.name, [])
        if not array_groups:
            # Array never referenced: dense placement, no constraints.
            placements[decl.name] = ArrayPlacement(
                cursor, decl.row_major_strides(), decl.element_size
            )
            cursor += decl.size_bytes
            continue

        dense_row = decl.row_major_strides()[0]
        if max_pitch_padding is None:
            pad_limit = max(span // decl.element_size, 1)
        else:
            pad_limit = max_pitch_padding

        chosen: Optional[Tuple[int, List[ByteWindow], int]] = None
        fallback: Optional[Tuple[int, List[ByteWindow], int]] = None
        pitch_candidates = []
        for extra in range(pad_limit + 1):
            row_pitch = dense_row + extra
            if (
                decl.rank >= 2
                and required_shift is not None
                and (decl.element_size * row_pitch) % span != required_shift
            ):
                continue
            # Prefer pitches that keep every window anchor line-aligned, as
            # the paper's walk-through does (Compress picks 36, not 35).
            aligned = (decl.element_size * row_pitch) % line_size == 0
            pitch_candidates.append((0 if aligned else 1, extra, row_pitch))
        for _, extra, row_pitch in sorted(pitch_candidates):
            pitches = _pitches_with_row(decl, row_pitch)
            windows = _group_windows(nest, array_groups, decl, pitches, sweep)
            internal = [
                (decl.element_size * w.anchor_elements, w.width_bytes)
                for w in windows
            ]
            internally_ok = _intervals_clear(internal, line_size, span)
            base = _find_base(
                cursor, windows, decl, line_size, span, placed,
                require_clear=internally_ok,
            )
            if fallback is None and base is not None:
                fallback = (row_pitch, windows, base)
            if internally_ok and base is not None:
                chosen = (row_pitch, windows, base)
                break
            if decl.rank == 1:
                break  # 1D arrays have no pitch freedom

        if chosen is None:
            all_clear = False
            if fallback is None:
                fallback = (
                    dense_row,
                    _group_windows(
                        nest,
                        array_groups,
                        decl,
                        _pitches_with_row(decl, dense_row),
                        sweep,
                    ),
                    cursor,
                )
            chosen = fallback

        row_pitch, windows, base = chosen
        for w in windows:
            start = (base + decl.element_size * w.anchor_elements) % span
            placed.append((start, w.width_bytes))
            slots.append((w.group.ref_indices[0], (start // line_size) % num_lines))
        if decl.rank >= 2 and required_shift is None:
            required_shift = (decl.element_size * row_pitch) % span
        pitches = _pitches_with_row(decl, row_pitch)
        placement = ArrayPlacement(base, pitches, decl.element_size)
        placements[decl.name] = placement
        cursor = base + placement.extent_bytes(decl.dims)

    if all_clear and not _intervals_clear(placed, line_size, span):
        all_clear = False
    return placements, slots, all_clear


def _find_base(
    cursor: int,
    windows: Sequence[ByteWindow],
    decl: ArrayDecl,
    line_size: int,
    span: int,
    placed: Sequence[Tuple[int, int]],
    require_clear: bool,
) -> Optional[int]:
    """Base >= cursor whose windows clear everything already placed.

    Candidate bases cover one full cache span at line granularity and are
    tried in order of the line slot the first window would land on --
    matching the paper's walk-throughs, which hand the next class the
    lowest free line (Matrix Addition: a -> line 0, b -> line 1, c -> line
    2).  Returns None when no clear base exists (only possible when
    ``require_clear`` is set).
    """
    element_size = decl.element_size
    candidates = []
    for step in range(span // line_size):
        base = cursor + step * line_size
        anchor = base + element_size * windows[0].anchor_elements
        misalign = anchor % line_size
        if misalign:
            base += line_size - misalign
            anchor += line_size - misalign
        candidates.append(((anchor % span) // line_size, base))
    if not require_clear:
        return min(candidates)[1] if candidates else cursor
    for _, base in sorted(candidates):
        trial = list(placed) + [
            ((base + element_size * w.anchor_elements) % span, w.width_bytes)
            for w in windows
        ]
        if _intervals_clear(trial, line_size, span):
            return base
    return None
