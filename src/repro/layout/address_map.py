"""Array-to-address mapping and cache-geometry helpers.

A :class:`DataLayout` records, for each array of a loop nest, where it lives
in off-chip memory: a byte ``base`` address and per-dimension ``pitches``
measured in *elements*.  A dense row-major placement has
``pitches == ArrayDecl.row_major_strides()``; the Section 4.1 assignment
algorithm produces layouts whose bases and row pitches include padding.

The byte address of element ``a[s_0]...[s_{r-1}]`` is::

    base + element_size * sum(pitches[d] * s_d)

which is exactly the addressing the paper uses in its Compress example
(element size 1, row pitch 32: ``a[1][0]`` is at byte 32 before padding, 36
after).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Sequence, Tuple

if TYPE_CHECKING:  # imported lazily to avoid a loops <-> layout import cycle
    from repro.loops.ir import ArrayDecl, LoopNest

__all__ = [
    "ArrayPlacement",
    "DataLayout",
    "cache_line_of",
    "cache_set_of",
    "default_layout",
]


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of one array: byte base plus per-dimension element pitches."""

    base: int
    pitches: Tuple[int, ...]
    element_size: int = 1

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("array base address must be non-negative")
        if any(p <= 0 for p in self.pitches):
            raise ValueError("array pitches must be positive")
        if self.element_size <= 0:
            raise ValueError("element size must be positive")

    def address_of(self, subscripts: Sequence[int]) -> int:
        """Byte address of the element at ``subscripts``."""
        if len(subscripts) != len(self.pitches):
            raise ValueError(
                f"expected {len(self.pitches)} subscripts, got {len(subscripts)}"
            )
        offset = sum(p * s for p, s in zip(self.pitches, subscripts))
        return self.base + self.element_size * offset

    def extent_bytes(self, dims: Sequence[int]) -> int:
        """Bytes from ``base`` to one past the last element of ``dims``."""
        last = sum(p * (d - 1) for p, d in zip(self.pitches, dims))
        return self.element_size * (last + 1)


@dataclass(frozen=True)
class DataLayout:
    """Off-chip placement of every array of a nest."""

    placements: Tuple[Tuple[str, ArrayPlacement], ...]

    @staticmethod
    def from_dict(placements: Mapping[str, ArrayPlacement]) -> "DataLayout":
        """Build a layout from a ``name -> placement`` mapping."""
        return DataLayout(tuple(sorted(placements.items())))

    def placement(self, array: str) -> ArrayPlacement:
        """Placement of the named array."""
        for name, placement in self.placements:
            if name == array:
                return placement
        raise KeyError(f"layout has no placement for array {array!r}")

    def as_dict(self) -> Dict[str, ArrayPlacement]:
        """The placements as a plain dictionary."""
        return dict(self.placements)

    def address_of(self, array: str, subscripts: Sequence[int]) -> int:
        """Byte address of ``array[subscripts]`` under this layout."""
        return self.placement(array).address_of(subscripts)


def default_layout(nest: "LoopNest", align: int = 1) -> DataLayout:
    """Dense row-major layout with arrays placed back to back.

    This is the *unoptimized* placement the paper compares against: no
    padding anywhere, each array starting right after the previous one
    (optionally rounded up to ``align`` bytes).
    """
    if align <= 0:
        raise ValueError("alignment must be positive")
    placements: Dict[str, ArrayPlacement] = {}
    cursor = 0
    for decl in nest.arrays:
        cursor = -(-cursor // align) * align
        placements[decl.name] = ArrayPlacement(
            base=cursor,
            pitches=decl.row_major_strides(),
            element_size=decl.element_size,
        )
        cursor += decl.size_bytes
    return DataLayout.from_dict(placements)


def cache_line_of(address: int, line_size: int) -> int:
    """Global line number (address divided by line size)."""
    if line_size <= 0:
        raise ValueError("line size must be positive")
    return address // line_size


def cache_set_of(address: int, line_size: int, num_sets: int) -> int:
    """Cache set index of a byte address for the given geometry."""
    if num_sets <= 0:
        raise ValueError("number of sets must be positive")
    return (address // line_size) % num_sets


def _array_span(decl: "ArrayDecl", placement: ArrayPlacement) -> Tuple[int, int]:
    """Inclusive byte span ``(first, last)`` occupied by the array."""
    first = placement.base
    last = placement.base + placement.extent_bytes(decl.dims) - 1
    return first, last


def layouts_overlap(nest: "LoopNest", layout: DataLayout) -> bool:
    """True when any two arrays' byte spans intersect under ``layout``.

    Padding moves arrays around; this check guards against an assignment
    accidentally folding two arrays onto the same memory.
    """
    spans = sorted(
        _array_span(decl, layout.placement(decl.name)) for decl in nest.arrays
    )
    for (_, last), (first, _) in zip(spans, spans[1:]):
        if first <= last:
            return True
    return False
