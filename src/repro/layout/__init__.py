"""Off-chip data placement substrate (Section 4.1 of the paper).

:mod:`repro.layout.address_map` defines :class:`DataLayout` -- the mapping
from array subscripts to main-memory byte addresses (base address plus
per-dimension pitches, allowing padding) -- and small helpers for mapping
addresses to cache lines and sets.

:mod:`repro.layout.assignment` implements the paper's off-chip memory
assignment: choose bases and row pitches so that references belonging to
different equivalence classes/cases never collide in the cache, eliminating
conflict misses for compatible access patterns.
"""

from repro.layout.address_map import (
    ArrayPlacement,
    DataLayout,
    cache_line_of,
    cache_set_of,
    default_layout,
)
from repro.layout.assignment import (
    AssignmentResult,
    assign_offchip_layout,
)

__all__ = [
    "ArrayPlacement",
    "AssignmentResult",
    "DataLayout",
    "assign_offchip_layout",
    "cache_line_of",
    "cache_set_of",
    "default_layout",
]
