"""Loop fusion: merging producer/consumer nests.

Embedded pipelines are chains of loop nests (the MPEG decoder's Dequant ->
IDCT -> Plus); running them separately streams every intermediate array
through the cache twice.  Fusing nests with identical iteration spaces
executes both bodies per iteration point, so a value produced at (i, j) is
consumed while its line is still resident -- the intermediate array's
traffic collapses from "whole-array write + whole-array read with a
full-sweep reuse distance" to back-to-back touches.

Legality here is the conservative textbook condition: the nests must share
the exact loop structure, and for every array both nests touch, the
consumer at iteration ``p`` may only read what the producer wrote at the
*same* ``p`` or earlier points already executed (non-negative dependence
distances); :func:`fusion_is_safe` checks it with the same machinery as
loop interchange.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.loops.interchange import _dependence_distances, _lex_sign
from repro.loops.ir import ArrayDecl, LoopNest

__all__ = ["fuse", "fusion_is_safe"]


def _merged_arrays(a: LoopNest, b: LoopNest) -> Tuple[ArrayDecl, ...]:
    merged: Dict[str, ArrayDecl] = {}
    for decl in a.arrays + b.arrays:
        existing = merged.get(decl.name)
        if existing is None:
            merged[decl.name] = decl
        elif existing != decl:
            raise ValueError(
                f"array {decl.name!r} declared differently in the two nests"
            )
    return tuple(merged.values())


def fusion_is_safe(producer: LoopNest, consumer: LoopNest) -> bool:
    """Conservative legality: fusing must not read values not yet written.

    For every array written by the producer and read by the consumer, the
    consumer at iteration ``p`` may only touch elements the producer wrote
    at iterations ``q <= p``.  The uniform-dependence solver returns
    ``d = q - p`` (the write-iteration offset), so legality is
    ``lex_sign(d) <= 0``.  Non-uniform pairs are rejected outright.
    """
    if producer.index_order != consumer.index_order:
        return False
    if tuple(lp for lp in producer.loops) != tuple(lp for lp in consumer.loops):
        return False
    written = {ref.array for ref in producer.writes}
    for write in producer.writes:
        for read in consumer.refs:
            if read.array != write.array or read.array not in written:
                continue
            try:
                distances = _dependence_distances(producer, write, read)
            except ValueError:
                return False
            for distance in distances:
                if _lex_sign(distance) > 0:
                    return False
    return True


def fuse(producer: LoopNest, consumer: LoopNest, name: str = "") -> LoopNest:
    """The fused nest: both bodies at every iteration point, producer first.

    Raises when :func:`fusion_is_safe` rejects the pair.
    """
    if not fusion_is_safe(producer, consumer):
        raise ValueError(
            f"fusing {producer.name!r} and {consumer.name!r} is not legal"
        )
    return LoopNest(
        name=name or f"{producer.name}_{consumer.name}_fused",
        loops=producer.loops,
        refs=producer.refs + consumer.refs,
        arrays=_merged_arrays(producer, consumer),
        description=(
            f"fusion of {producer.name} and {consumer.name}"
        ),
    )
