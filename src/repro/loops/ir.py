"""Intermediate representation for affine loop nests.

The benchmark kernels in the paper are perfectly nested loops whose array
subscripts are affine functions of the loop indices, e.g. the Compress
kernel::

    int a[32][32];
    for i = 1, 31:
        for j = 1, 31:
            a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1];

Following Wolf and Lam's terminology (reference [9] of the paper), every
reference ``a[f(i)]`` with ``f(i) = H @ i + c`` is described by a linear part
``H`` (one row per array dimension, one column per loop index) and a constant
vector ``c``.  Two references are *uniformly generated* when they share the
same ``H``.  All of the Section 3 and Section 4.1 analyses operate on this
``(H, c)`` decomposition, so the IR stores subscripts symbolically as
:class:`AffineExpr` objects from which ``H`` and ``c`` are recovered exactly.

Loop bounds are *inclusive* on both ends, matching the paper's
``for i = 1, 31`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple, Union

__all__ = [
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "const",
    "var",
]

#: Anything accepted where an affine expression is expected.
ExprLike = Union["AffineExpr", int, str]


@dataclass(frozen=True)
class AffineExpr:
    """An affine expression ``sum(coeff_k * index_k) + constant``.

    ``coeffs`` maps loop-index names to integer coefficients; indices with a
    zero coefficient are never stored.  Instances are immutable and support
    ``+``, ``-`` and multiplication by integers, so subscripts can be written
    naturally::

        i, j = var("i"), var("j")
        expr = 2 * i - j + 3
    """

    coeffs: Tuple[Tuple[str, int], ...] = ()
    constant: int = 0

    @staticmethod
    def coerce(value: ExprLike) -> "AffineExpr":
        """Convert an int (constant) or str (index name) to an expression."""
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, int):
            return AffineExpr((), value)
        if isinstance(value, str):
            return AffineExpr(((value, 1),), 0)
        raise TypeError(f"cannot interpret {value!r} as an affine expression")

    @staticmethod
    def _normalize(coeffs: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted((k, v) for k, v in coeffs.items() if v != 0))

    def coeff(self, index: str) -> int:
        """Coefficient of loop index ``index`` (0 if absent)."""
        return dict(self.coeffs).get(index, 0)

    @property
    def indices(self) -> Tuple[str, ...]:
        """Names of the loop indices appearing with non-zero coefficient."""
        return tuple(name for name, _ in self.coeffs)

    def is_constant(self) -> bool:
        """True when the expression does not depend on any loop index."""
        return not self.coeffs

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate at a concrete iteration point ``env``."""
        return self.constant + sum(c * env[name] for name, c in self.coeffs)

    def row(self, index_order: Sequence[str]) -> Tuple[int, ...]:
        """The row of the ``H`` matrix for this subscript dimension."""
        lookup = dict(self.coeffs)
        return tuple(lookup.get(name, 0) for name in index_order)

    def __add__(self, other: ExprLike) -> "AffineExpr":
        other = AffineExpr.coerce(other)
        merged: Dict[str, int] = dict(self.coeffs)
        for name, c in other.coeffs:
            merged[name] = merged.get(name, 0) + c
        return AffineExpr(self._normalize(merged), self.constant + other.constant)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(
            tuple((name, -c) for name, c in self.coeffs), -self.constant
        )

    def __sub__(self, other: ExprLike) -> "AffineExpr":
        return self + (-AffineExpr.coerce(other))

    def __rsub__(self, other: ExprLike) -> "AffineExpr":
        return AffineExpr.coerce(other) + (-self)

    def __mul__(self, scalar: int) -> "AffineExpr":
        if not isinstance(scalar, int):
            raise TypeError("affine expressions only scale by integers")
        return AffineExpr(
            self._normalize({name: c * scalar for name, c in self.coeffs}),
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __str__(self) -> str:
        parts = [f"{c}*{name}" if c != 1 else name for name, c in self.coeffs]
        if self.constant or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts).replace("+ -", "- ")


def var(name: str) -> AffineExpr:
    """A loop-index variable as an affine expression."""
    return AffineExpr(((name, 1),), 0)


def const(value: int) -> AffineExpr:
    """An integer constant as an affine expression."""
    return AffineExpr((), value)


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of a multi-dimensional array.

    ``dims`` are the logical extents (row-major), ``element_size`` the size of
    one element in bytes.  The paper's examples address arrays at byte
    granularity with 1-byte elements (``a[1][0]`` of a 32-wide array sits at
    address 32), which we keep as the default.
    """

    name: str
    dims: Tuple[int, ...]
    element_size: int = 1

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError(f"array {self.name!r} needs at least one dimension")
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"array {self.name!r} has non-positive extent")
        if self.element_size <= 0:
            raise ValueError(f"array {self.name!r} has non-positive element size")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def size_elements(self) -> int:
        """Total number of elements."""
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def size_bytes(self) -> int:
        """Total footprint in bytes with a dense row-major layout."""
        return self.size_elements * self.element_size

    def row_major_strides(self) -> Tuple[int, ...]:
        """Element strides of a dense row-major layout, one per dimension."""
        strides = [1] * self.rank
        for d in range(self.rank - 2, -1, -1):
            strides[d] = strides[d + 1] * self.dims[d + 1]
        return tuple(strides)


@dataclass(frozen=True)
class ArrayRef:
    """A single array reference ``array[e_0][e_1]...`` inside the nest body.

    ``is_write`` distinguishes stores from loads.  The energy model of the
    paper only charges READ traffic ("reads dominate processor cache
    accesses"), but the cache simulator tracks both.
    """

    array: str
    indices: Tuple[AffineExpr, ...]
    is_write: bool = False

    def __post_init__(self) -> None:
        coerced = tuple(AffineExpr.coerce(e) for e in self.indices)
        object.__setattr__(self, "indices", coerced)

    @property
    def rank(self) -> int:
        """Number of subscript dimensions."""
        return len(self.indices)

    def linear_matrix(self, index_order: Sequence[str]) -> Tuple[Tuple[int, ...], ...]:
        """The ``H`` matrix of the reference for the given loop-index order."""
        return tuple(expr.row(index_order) for expr in self.indices)

    def constant_vector(self) -> Tuple[int, ...]:
        """The constant vector ``c`` of the reference."""
        return tuple(expr.constant for expr in self.indices)

    def evaluate(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        """Concrete subscripts at iteration point ``env``."""
        return tuple(expr.evaluate(env) for expr in self.indices)

    def __str__(self) -> str:
        subs = "".join(f"[{e}]" for e in self.indices)
        tag = " (write)" if self.is_write else ""
        return f"{self.array}{subs}{tag}"


@dataclass(frozen=True)
class Loop:
    """One loop level with inclusive bounds: ``for index = lower, upper``."""

    index: str
    lower: int
    upper: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"loop {self.index!r}: step must be positive")
        if self.upper < self.lower:
            raise ValueError(
                f"loop {self.index!r}: empty range {self.lower}..{self.upper}"
            )

    @property
    def trip_count(self) -> int:
        """Number of iterations of this level."""
        return (self.upper - self.lower) // self.step + 1

    def values(self) -> range:
        """The iteration values as a :class:`range` (upper bound inclusive)."""
        return range(self.lower, self.upper + 1, self.step)


@dataclass(frozen=True)
class LoopNest:
    """A perfectly nested affine loop with a flat body of array references.

    ``refs`` are listed in program order; one "iteration" of the nest touches
    each reference once, so the total number of memory accesses is
    ``iterations * len(refs)``.
    """

    name: str
    loops: Tuple[Loop, ...]
    refs: Tuple[ArrayRef, ...]
    arrays: Tuple[ArrayDecl, ...]
    description: str = ""

    def __post_init__(self) -> None:
        names = [loop.index for loop in self.loops]
        if len(set(names)) != len(names):
            raise ValueError(f"nest {self.name!r}: duplicate loop index names")
        decls = {a.name for a in self.arrays}
        if len(decls) != len(self.arrays):
            raise ValueError(f"nest {self.name!r}: duplicate array declarations")
        for ref in self.refs:
            if ref.array not in decls:
                raise ValueError(
                    f"nest {self.name!r}: reference to undeclared array {ref.array!r}"
                )
            decl = self.array(ref.array)
            if ref.rank != decl.rank:
                raise ValueError(
                    f"nest {self.name!r}: {ref} has rank {ref.rank}, "
                    f"array {decl.name!r} has rank {decl.rank}"
                )
            for expr in ref.indices:
                unknown = set(expr.indices) - set(names)
                if unknown:
                    raise ValueError(
                        f"nest {self.name!r}: {ref} uses unknown indices {unknown}"
                    )

    @property
    def index_order(self) -> Tuple[str, ...]:
        """Loop-index names, outermost first."""
        return tuple(loop.index for loop in self.loops)

    @property
    def iterations(self) -> int:
        """Total number of iterations of the innermost body."""
        n = 1
        for loop in self.loops:
            n *= loop.trip_count
        return n

    @property
    def accesses(self) -> int:
        """Total memory accesses performed by one execution of the nest."""
        return self.iterations * len(self.refs)

    def array(self, name: str) -> ArrayDecl:
        """Look up an array declaration by name."""
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(f"nest {self.name!r} declares no array {name!r}")

    @property
    def reads(self) -> Tuple[ArrayRef, ...]:
        """The read references, in program order."""
        return tuple(ref for ref in self.refs if not ref.is_write)

    @property
    def writes(self) -> Tuple[ArrayRef, ...]:
        """The write references, in program order."""
        return tuple(ref for ref in self.refs if ref.is_write)

    def loop(self, index: str) -> Loop:
        """Look up a loop level by its index name."""
        for lp in self.loops:
            if lp.index == index:
                return lp
        raise KeyError(f"nest {self.name!r} has no loop index {index!r}")

    def __str__(self) -> str:
        header = ", ".join(
            f"{lp.index}={lp.lower}..{lp.upper}" for lp in self.loops
        )
        body = "; ".join(str(ref) for ref in self.refs)
        return f"{self.name}: for [{header}] {{ {body} }}"
