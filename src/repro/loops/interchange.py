"""Loop interchange (the transformation the paper's Example 3 rules out).

"With the loop innermost, access to array b[] is stride-1, while access to
array a[] is stride-n.  Interchanging does not help, since it makes access
to array b[] stride-n" -- which is why the paper reaches for tiling.  This
module implements interchange so that claim can be *measured*: permute the
loop order of a nest (the body is order-independent for the addressing
the exploration cares about) and re-run the metrics.

Interchange is only valid when it preserves the nest's data dependences;
:func:`interchange_is_safe` implements the standard direction-vector test
for the affine references the IR can express (a conservative check: any
pair of accesses to the same array with a write involved must not have its
dependence direction reversed by the permutation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.loops.ir import ArrayRef, Loop, LoopNest

__all__ = [
    "interchange",
    "interchange_is_safe",
    "stride_profile",
]


def interchange(nest: LoopNest, order: Sequence[str]) -> LoopNest:
    """A new nest with its loops permuted into ``order`` (outermost first).

    The references are untouched -- only the traversal order changes, so
    the generated trace visits the same multiset of addresses in a
    different sequence (asserted by the property tests).
    """
    if sorted(order) != sorted(nest.index_order):
        raise ValueError(
            f"order {tuple(order)} is not a permutation of {nest.index_order}"
        )
    loops = tuple(nest.loop(index) for index in order)
    return LoopNest(
        name=f"{nest.name}_ic_{'_'.join(order)}",
        loops=loops,
        refs=nest.refs,
        arrays=nest.arrays,
        description=f"{nest.description} (interchanged to {tuple(order)})",
    )


def _dependence_distances(
    nest: LoopNest, ref_a: ArrayRef, ref_b: ArrayRef
) -> List[Tuple[int, ...]]:
    """Constant dependence distance vectors between two uniform references.

    For uniformly generated references (same ``H``) the iteration-space
    distance of a dependence is the constant vector solving
    ``H d = c_b - c_a`` -- for the bundled kernels ``H`` is a permutation
    of the identity on the used indices, so the solution is read off
    directly.  Returns an empty list when the references cannot alias, and
    ``None``-like sentinel handling is avoided by raising for non-uniform
    pairs (the caller treats those conservatively).
    """
    order = nest.index_order
    h_a = ref_a.linear_matrix(order)
    h_b = ref_b.linear_matrix(order)
    if h_a != h_b:
        raise ValueError("non-uniform reference pair")
    delta = [cb - ca for ca, cb in zip(ref_a.constant_vector(), ref_b.constant_vector())]
    # Solve H d = delta for integer d assuming H has full column support on
    # the indices it uses (true for the affine kernels here): each index
    # appears in at least one subscript row with a non-zero coefficient.
    distance: List[Optional[int]] = [None] * len(order)
    for row, rhs in zip(h_a, delta):
        nonzero = [(k, coeff) for k, coeff in enumerate(row) if coeff]
        if len(nonzero) == 1:
            k, coeff = nonzero[0]
            if rhs % coeff:
                return []  # no integer dependence
            value = rhs // coeff
            if distance[k] is not None and distance[k] != value:
                return []  # inconsistent: references never alias
            distance[k] = value
    return [tuple(0 if d is None else d for d in distance)]


def interchange_is_safe(nest: LoopNest, order: Sequence[str]) -> bool:
    """Conservative dependence test for permuting ``nest`` into ``order``.

    A permutation is safe when every (write involved) dependence distance
    vector stays lexicographically non-negative after permutation.  Pairs
    whose dependence cannot be expressed as a constant distance (different
    linear parts) are treated as unsafe unless they can never alias.
    """
    if sorted(order) != sorted(nest.index_order):
        raise ValueError("order must be a permutation of the nest's indices")
    positions = [nest.index_order.index(index) for index in order]
    for i, ref_a in enumerate(nest.refs):
        for ref_b in nest.refs[i:]:
            if ref_a.array != ref_b.array:
                continue
            if not (ref_a.is_write or ref_b.is_write):
                continue
            try:
                distances = _dependence_distances(nest, ref_a, ref_b)
            except ValueError:
                return False  # non-uniform pair: be conservative
            for distance in distances:
                permuted = tuple(distance[p] for p in positions)
                original_dir = _lex_sign(distance)
                if original_dir == 0:
                    continue  # loop-independent dependence: any order works
                if _lex_sign(permuted) != original_dir:
                    return False
    return True


def _lex_sign(vector: Tuple[int, ...]) -> int:
    for value in vector:
        if value > 0:
            return 1
        if value < 0:
            return -1
    return 0


def stride_profile(nest: LoopNest) -> List[Tuple[str, int]]:
    """Innermost-loop byte stride of each reference (the Example 3 lens).

    Returns ``(reference, stride_bytes)`` in program order; stride-1
    references exploit spatial locality, stride-n references defeat it.
    """
    if not nest.loops:
        return [(str(ref), 0) for ref in nest.refs]
    innermost = nest.loops[-1].index
    profile = []
    for ref in nest.refs:
        decl = nest.array(ref.array)
        strides = decl.row_major_strides()
        elements = sum(
            stride * expr.coeff(innermost)
            for stride, expr in zip(strides, ref.indices)
        )
        profile.append((str(ref), elements * decl.element_size))
    return profile
