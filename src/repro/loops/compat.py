"""Section 4.1: compatibility of array access patterns.

The paper calls two access patterns *compatible* "if the difference in the
accesses is independent of the loop index": ``a[i]`` and ``a[i-2]`` are
compatible, ``a[i]`` and ``a[b[i]]`` are not.  For affine references this is
exactly "same linear part ``H``" -- the difference of two affine accesses
``(H i + c1) - (H i + c2) = c1 - c2`` is index-independent iff the linear
parts cancel.

When *all* accesses of a nest are pairwise compatible (one shared ``H``, as
in Compress and Matrix Addition), a suitable off-chip layout eliminates
conflict misses completely; when they are not (Matrix Multiplication mixes
``[i,k]``, ``[k,j]`` and ``[i,j]``), layout can only reduce conflicts.
"""

from __future__ import annotations

from typing import Sequence

from repro.loops.ir import ArrayRef, LoopNest

__all__ = ["are_compatible", "nest_is_compatible"]


def are_compatible(
    ref_a: ArrayRef, ref_b: ArrayRef, index_order: Sequence[str]
) -> bool:
    """True when the two references share the same linear part ``H``.

    References of different rank (arrays of different dimensionality) are
    never compatible: their access differences are not even comparable.
    """
    if ref_a.rank != ref_b.rank:
        return False
    return ref_a.linear_matrix(index_order) == ref_b.linear_matrix(index_order)


def nest_is_compatible(nest: LoopNest) -> bool:
    """True when every pair of references in the nest is compatible.

    This is the precondition under which the Section 4.1 assignment
    guarantees *complete* elimination of conflict misses (verified by an
    integration test against the simulator's 3C classification).
    """
    refs = nest.refs
    if len(refs) <= 1:
        return True
    order = nest.index_order
    first = refs[0]
    return all(are_compatible(first, ref, order) for ref in refs[1:])
