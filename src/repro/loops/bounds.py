"""Static bounds checking for loop nests.

Array subscripts are affine, so their extrema over the rectangular
iteration space follow from interval arithmetic: a coefficient contributes
its loop's lower bound when negative and upper bound when positive.  The
checker reports every reference/dimension pair that can fall outside the
declared extents -- the guard that keeps trace generation honest (an
out-of-bounds subscript would silently alias another row under row-major
addressing, exactly the kind of artefact that would corrupt a miss-rate
study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.loops.ir import AffineExpr, LoopNest

__all__ = ["BoundsViolation", "check_bounds", "subscript_range"]


@dataclass(frozen=True)
class BoundsViolation:
    """One reference dimension that can leave its declared extent."""

    ref_index: int
    dimension: int
    lowest: int
    highest: int
    extent: int

    def __str__(self) -> str:
        return (
            f"reference #{self.ref_index} dimension {self.dimension}: "
            f"subscript range [{self.lowest}, {self.highest}] outside "
            f"[0, {self.extent - 1}]"
        )


def subscript_range(nest: LoopNest, expr: AffineExpr) -> Tuple[int, int]:
    """Inclusive (min, max) of an affine subscript over the iteration box."""
    low = high = expr.constant
    for loop in nest.loops:
        coeff = expr.coeff(loop.index)
        if coeff > 0:
            low += coeff * loop.lower
            high += coeff * loop.upper
        elif coeff < 0:
            low += coeff * loop.upper
            high += coeff * loop.lower
    return low, high


def check_bounds(nest: LoopNest) -> List[BoundsViolation]:
    """All reference dimensions that can index outside their array.

    An empty list certifies that every address the nest generates lies
    within its array's declared footprint.
    """
    violations: List[BoundsViolation] = []
    for ref_index, ref in enumerate(nest.refs):
        decl = nest.array(ref.array)
        for dimension, expr in enumerate(ref.indices):
            low, high = subscript_range(nest, expr)
            extent = decl.dims[dimension]
            if low < 0 or high >= extent:
                violations.append(
                    BoundsViolation(
                        ref_index=ref_index,
                        dimension=dimension,
                        lowest=low,
                        highest=high,
                        extent=extent,
                    )
                )
    return violations
