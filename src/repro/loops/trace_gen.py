"""Exact address-trace generation from a loop nest.

One execution of the nest visits every iteration point in order and, at each
point, touches every :class:`~repro.loops.ir.ArrayRef` in program order.  The
byte address of a reference at iteration ``i`` under a
:class:`~repro.layout.address_map.DataLayout` is::

    base + element_size * sum_d pitch_d * (H[d] @ i + c_d)

Because everything is affine, the whole trace is computed with one
matrix-vector product per reference: the per-dimension pitches fold ``H``
into a single coefficient vector over the loop indices.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cache.trace import MemoryTrace
from repro.layout.address_map import DataLayout, default_layout
from repro.loops.ir import Loop, LoopNest
from repro.loops.tiling import tiled_iteration_space

__all__ = ["generate_trace", "iteration_space", "ref_addresses"]


def iteration_space(loops: Sequence[Loop]) -> np.ndarray:
    """Sequential iteration order as an ``(iterations, depth)`` int matrix."""
    if not loops:
        return np.zeros((1, 0), dtype=np.int64)
    axes = [np.arange(lp.lower, lp.upper + 1, lp.step, dtype=np.int64) for lp in loops]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.reshape(-1) for g in grids], axis=1)


def ref_addresses(
    nest: LoopNest,
    ref_index: int,
    layout: DataLayout,
    iterations: np.ndarray,
) -> np.ndarray:
    """Byte addresses touched by one reference across ``iterations``."""
    ref = nest.refs[ref_index]
    placement = layout.placement(ref.array)
    index_order = nest.index_order
    h_matrix = np.asarray(ref.linear_matrix(index_order), dtype=np.int64)
    c_vector = np.asarray(ref.constant_vector(), dtype=np.int64)
    pitches = np.asarray(placement.pitches, dtype=np.int64)
    coeffs = pitches @ h_matrix  # one coefficient per loop index
    offset = int(pitches @ c_vector)
    element_offsets = iterations @ coeffs + offset
    return placement.base + placement.element_size * element_offsets


def generate_trace(
    nest: LoopNest,
    layout: Optional[DataLayout] = None,
    tile: int = 1,
    n_tiled: Optional[int] = None,
    repeat: int = 1,
) -> MemoryTrace:
    """The full access trace of ``repeat`` executions of ``nest``.

    Parameters
    ----------
    layout:
        Off-chip placement; defaults to the unoptimized dense layout.
    tile:
        Tiling size ``B`` (1 = untiled); ``n_tiled`` selects how many of the
        innermost loops are tiled (all by default).
    repeat:
        Number of back-to-back executions (kernel invocation count in the
        Section 5 composite-program model).
    """
    if repeat <= 0:
        raise ValueError("repeat count must be positive")
    if layout is None:
        layout = default_layout(nest)
    if tile == 1:
        iterations = iteration_space(nest.loops)
    else:
        iterations = tiled_iteration_space(nest.loops, tile, n_tiled)

    n_iter = iterations.shape[0]
    n_refs = len(nest.refs)
    columns = [
        ref_addresses(nest, r, layout, iterations) for r in range(n_refs)
    ]
    addresses = np.stack(columns, axis=1).reshape(-1)
    is_write = np.tile(
        np.asarray([ref.is_write for ref in nest.refs], dtype=bool), n_iter
    )
    ref_ids = np.tile(np.arange(n_refs, dtype=np.int32), n_iter)
    if repeat > 1:
        addresses = np.tile(addresses, repeat)
        is_write = np.tile(is_write, repeat)
        ref_ids = np.tile(ref_ids, repeat)
    if addresses.size and addresses.min() < 0:
        raise ValueError(
            f"nest {nest.name!r}: negative address generated -- check loop "
            "bounds against array extents"
        )
    return MemoryTrace(addresses, is_write, ref_ids)
