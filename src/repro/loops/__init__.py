"""Affine loop-nest substrate.

The paper's workloads are small affine loop kernels (Compress, Matrix
Multiplication, PDE, SOR, Dequant, and the MPEG decoder kernels).  This
subpackage provides:

* :mod:`repro.loops.ir` -- a tiny intermediate representation for perfectly
  nested affine loops over multi-dimensional arrays,
* :mod:`repro.loops.trace_gen` -- exact address-trace generation from a nest,
* :mod:`repro.loops.tiling` -- the Section 4.2 tiling transformation,
* :mod:`repro.loops.reuse` -- the Section 3 equivalence-class analysis and
  minimum-cache-size procedure,
* :mod:`repro.loops.compat` -- the Section 4.1 compatibility test for array
  access patterns.
"""

from repro.loops.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Loop,
    LoopNest,
    const,
    var,
)
from repro.loops.tiling import tile_nest
from repro.loops.trace_gen import generate_trace, iteration_space
from repro.loops.reuse import (
    ReferenceGroup,
    group_references,
    min_cache_lines,
    min_cache_size,
)
from repro.loops.bounds import BoundsViolation, check_bounds
from repro.loops.codegen import generate_c, generate_python
from repro.loops.compat import are_compatible, nest_is_compatible
from repro.loops.fusion import fuse, fusion_is_safe
from repro.loops.interchange import interchange, interchange_is_safe, stride_profile
from repro.loops.normalize import is_normalized, normalize

__all__ = [
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "ReferenceGroup",
    "BoundsViolation",
    "are_compatible",
    "check_bounds",
    "const",
    "generate_c",
    "generate_python",
    "generate_trace",
    "fuse",
    "fusion_is_safe",
    "interchange",
    "interchange_is_safe",
    "is_normalized",
    "normalize",
    "group_references",
    "iteration_space",
    "min_cache_lines",
    "min_cache_size",
    "nest_is_compatible",
    "stride_profile",
    "tile_nest",
    "var",
]
