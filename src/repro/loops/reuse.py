"""Section 3: equivalence classes, cases, and the minimum cache size.

Following Wolf and Lam, two references ``a[f(i)]`` and ``a[g(i)]`` are
*uniformly generated* when ``f(i) = H i + c_f`` and ``g(i) = H i + c_g`` for
the same linear transformation ``H``.  The paper partitions the references
of a loop nest into:

* **classes** -- references with the same ``H`` operating on the *same*
  array (Compress has two: ``{a[i-1][j-1], a[i-1][j]}`` and
  ``{a[i][j-1], a[i][j]}``), and
* **cases** -- references with the same ``H`` on *different* arrays (the
  three arrays of Matrix Addition are three cases of one ``H``).

Members of one class travel together: as the innermost loop advances they
walk the same stretch of memory a constant distance apart (Compress class 1
stays on row ``i-1``, class 2 on row ``i``).  References that differ in an
*outer* dimension belong to different classes even on the same array.
Operationally a group is keyed by ``(array, H, constants of the subscript
dimensions not driven by the innermost loop)``; "case" describes the
relation between groups that share ``H`` across arrays.  Each group needs a
number of private cache lines computed by the paper's distance formula::

    distance = floor(|difference of constant vectors| / loop stride) + 1
    lines    = floor(distance / L) + 1   if distance mod L in {0, 1}
               floor(distance / L) + 2   otherwise

and the minimum conflict-free cache size is ``L * sum(lines over groups)``
(4 lines, hence ``4L`` bytes, for Compress).

The "difference of constant vectors" is measured along the memory layout:
constant vectors are linearized with the array's row-major strides so that
multi-dimensional references reduce to a one-dimensional span, exactly as in
the paper's worked examples.  Distances count *elements* (the paper's
1-byte-element examples make elements and bytes coincide); for wider
elements the line size is converted to elements before the formula is
applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.loops.ir import ArrayRef, LoopNest

__all__ = [
    "ReferenceGroup",
    "group_references",
    "groups_by_linear_part",
    "min_cache_lines",
    "min_cache_size",
]


@dataclass(frozen=True)
class ReferenceGroup:
    """References sharing one class/case key.

    ``ref_indices`` point into ``nest.refs``; ``offsets`` are the
    row-major-linearized constant vectors (in elements) of each reference;
    ``element_size`` is the array's element width in bytes.
    """

    array: str
    h_matrix: Tuple[Tuple[int, ...], ...]
    ref_indices: Tuple[int, ...]
    offsets: Tuple[int, ...]
    element_size: int = 1

    @property
    def span(self) -> int:
        """Element distance between the extreme references of the group."""
        return max(self.offsets) - min(self.offsets)

    def distance(self, loop_stride: int = 1) -> int:
        """The paper's ``distance`` quantity for this group (elements)."""
        if loop_stride <= 0:
            raise ValueError("loop stride must be positive")
        return abs(self.span) // loop_stride + 1

    def cache_lines(self, line_size: int, loop_stride: int = 1) -> int:
        """Number of cache lines the group needs to be conflict-free.

        ``line_size`` is in bytes; the distance formula operates on the line
        capacity in *elements* (at least one element per line).
        """
        if line_size <= 0:
            raise ValueError("line size must be positive")
        line_elements = max(1, line_size // self.element_size)
        distance = self.distance(loop_stride)
        remainder = distance % line_elements
        base = distance // line_elements
        if remainder in (0, 1):
            return base + 1
        return base + 2


def _innermost_stride(nest: LoopNest, refs: List[ArrayRef]) -> int:
    """Step of the innermost loop index used by the group's subscripts.

    The paper's formula divides by "the stride of the loop"; for the bundled
    kernels this is the step of the innermost loop whose index appears in
    the references (1 in every paper example).  Groups that use no loop
    index at all (pure constants) default to stride 1.
    """
    used = set()
    for ref in refs:
        for expr in ref.indices:
            used.update(expr.indices)
    for loop in reversed(nest.loops):
        if loop.index in used:
            return loop.step
    return 1


def _outer_constants(nest: LoopNest, ref_index: int) -> Tuple[int, ...]:
    """Constants of the subscript dimensions not driven by the innermost loop.

    These identify the class: Compress's ``a[i-1][j]`` and ``a[i-1][j-1]``
    share the row constant ``-1`` (their column subscripts are the ones the
    ``j`` loop drives), while ``a[i][...]`` references carry ``0``.
    """
    ref = nest.refs[ref_index]
    if not nest.loops:
        return ref.constant_vector()
    innermost = nest.loops[-1].index
    return tuple(
        expr.constant for expr in ref.indices if expr.coeff(innermost) == 0
    )


def group_references(nest: LoopNest) -> List[ReferenceGroup]:
    """Partition ``nest.refs`` into classes/cases, in program order.

    The key is ``(array, H, outer-dimension constants)``: uniformly
    generated references on one array that differ only along the
    innermost-driven dimension travel together and form one class.
    """
    index_order = nest.index_order
    Key = Tuple[str, Tuple[Tuple[int, ...], ...], Tuple[int, ...]]
    buckets: Dict[Key, List[int]] = {}
    order: List[Key] = []
    for i, ref in enumerate(nest.refs):
        key = (ref.array, ref.linear_matrix(index_order), _outer_constants(nest, i))
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(i)

    groups = []
    for array, h_matrix, _ in order:
        indices = buckets[(array, h_matrix, _)]
        decl = nest.array(array)
        strides = decl.row_major_strides()
        offsets = []
        for i in indices:
            c = nest.refs[i].constant_vector()
            offsets.append(sum(s * v for s, v in zip(strides, c)))
        groups.append(
            ReferenceGroup(
                array=array,
                h_matrix=h_matrix,
                ref_indices=tuple(indices),
                offsets=tuple(offsets),
                element_size=decl.element_size,
            )
        )
    return groups


def groups_by_linear_part(
    nest: LoopNest,
) -> Dict[Tuple[Tuple[int, ...], ...], List[ReferenceGroup]]:
    """Groups bucketed by ``H``; buckets with >1 array are the paper's cases."""
    result: Dict[Tuple[Tuple[int, ...], ...], List[ReferenceGroup]] = {}
    for group in group_references(nest):
        result.setdefault(group.h_matrix, []).append(group)
    return result


def min_cache_lines(nest: LoopNest, line_size: int) -> int:
    """Total cache lines needed so no two groups conflict (Section 3)."""
    total = 0
    for group in group_references(nest):
        refs = [nest.refs[i] for i in group.ref_indices]
        stride = _innermost_stride(nest, refs)
        total += group.cache_lines(line_size, stride)
    return total


def min_cache_size(nest: LoopNest, line_size: int) -> int:
    """Minimum conflict-free cache size in bytes (``lines * L``)."""
    return min_cache_lines(nest, line_size) * line_size
