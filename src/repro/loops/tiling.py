"""Tiling of the iteration space (Section 4.2).

Tiling "divides the iteration space into tiles and transforms the loop nest
to iterate over them" (Wolf & Lam).  The paper's Example 3 turns::

    for i = 1, n:               for ti = 1, n, 64:
        for j = 1, n:    into       for tj = 1, n, 64:
            a[i,j] = b[j,i]             for i = ti, min(ti+63, n):
                                            for j = tj, min(tj+63, n):
                                                a[i,j] = b[j,i]

Only the *order* of iterations changes -- the set of iteration points (and
hence the multiset of addresses referenced) is identical, which the property
tests assert.  This module produces the tiled iteration order; the tiling
size ``B`` is the paper's MemExplore parameter, with ``B = 1`` meaning "no
tiling".
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.loops.ir import Loop, LoopNest

__all__ = ["tile_nest", "tiled_iteration_points", "tiled_iteration_space"]


def tiled_iteration_points(
    loops: Sequence[Loop],
    tile: int,
    n_tiled: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield iteration points of ``loops`` in tiled order.

    ``tile`` is the tile edge length in iterations (the paper's ``B``);
    ``n_tiled`` selects how many of the *innermost* loops are tiled (all of
    them by default).  ``tile = 1`` degenerates to the original sequential
    order, and partial tiles at the upper bounds are clipped exactly as the
    ``min(ti+63, n)`` in the paper's example.
    """
    if tile <= 0:
        raise ValueError("tiling size must be positive")
    if n_tiled is None:
        n_tiled = len(loops)
    if not 0 <= n_tiled <= len(loops):
        raise ValueError(f"cannot tile {n_tiled} of {len(loops)} loops")
    outer = loops[: len(loops) - n_tiled]
    tiled = loops[len(loops) - n_tiled:]

    outer_values = [list(lp.values()) for lp in outer]
    tile_starts = [
        list(range(lp.lower, lp.upper + 1, tile * lp.step)) for lp in tiled
    ]
    for outer_point in product(*outer_values):
        for starts in product(*tile_starts):
            intra = [
                range(
                    start,
                    min(start + (tile - 1) * lp.step, lp.upper) + 1,
                    lp.step,
                )
                for start, lp in zip(starts, tiled)
            ]
            for inner_point in product(*intra):
                yield outer_point + inner_point


def tiled_iteration_space(
    loops: Sequence[Loop],
    tile: int,
    n_tiled: Optional[int] = None,
) -> np.ndarray:
    """The tiled iteration order as an ``(iterations, depth)`` int matrix."""
    points = list(tiled_iteration_points(loops, tile, n_tiled))
    if not points:
        return np.zeros((0, len(loops)), dtype=np.int64)
    return np.asarray(points, dtype=np.int64)


def tile_nest(nest: LoopNest, tile: int, n_tiled: Optional[int] = None) -> np.ndarray:
    """Tiled iteration order of a whole nest (see :func:`tiled_iteration_space`)."""
    return tiled_iteration_space(nest.loops, tile, n_tiled)
