"""Loop normalization: zero-based, unit-step nests.

Transformations (tiling, interchange, fusion) and analyses are simplest on
*normalized* loops -- lower bound 0, step 1.  Normalizing ``for i = L, U
step S`` introduces ``i' = (i - L) / S`` and rewrites every subscript
``a*i + c`` as ``a*S*i' + (a*L + c)``: the linear part absorbs the step,
the constant absorbs the base.  The trace is unchanged by construction
(asserted in the tests by address-for-address comparison), so normalized
and original nests are interchangeable everywhere in the library.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.loops.ir import AffineExpr, ArrayRef, Loop, LoopNest

__all__ = ["is_normalized", "normalize"]


def is_normalized(nest: LoopNest) -> bool:
    """True when every loop starts at 0 with step 1."""
    return all(loop.lower == 0 and loop.step == 1 for loop in nest.loops)


def _rewrite(expr: AffineExpr, loops: Dict[str, Loop]) -> AffineExpr:
    coeffs: Dict[str, int] = {}
    constant = expr.constant
    for name, coeff in expr.coeffs:
        loop = loops.get(name)
        if loop is None:
            coeffs[name] = coeffs.get(name, 0) + coeff
            continue
        # i = lower + step * i'  =>  coeff*i = coeff*step*i' + coeff*lower
        coeffs[name] = coeffs.get(name, 0) + coeff * loop.step
        constant += coeff * loop.lower
    normalized = tuple(sorted((k, v) for k, v in coeffs.items() if v))
    return AffineExpr(normalized, constant)


def normalize(nest: LoopNest) -> LoopNest:
    """The equivalent nest with all loops zero-based and unit-step.

    Index names are preserved (the new index ranges over the normalized
    trip count), so downstream code that names loops keeps working.
    """
    if is_normalized(nest):
        return nest
    loops = {loop.index: loop for loop in nest.loops}
    new_loops = tuple(
        Loop(loop.index, 0, loop.trip_count - 1, 1) for loop in nest.loops
    )
    new_refs: Tuple[ArrayRef, ...] = tuple(
        ArrayRef(
            ref.array,
            tuple(_rewrite(expr, loops) for expr in ref.indices),
            is_write=ref.is_write,
        )
        for ref in nest.refs
    )
    return LoopNest(
        name=f"{nest.name}_norm",
        loops=new_loops,
        refs=new_refs,
        arrays=nest.arrays,
        description=f"{nest.description} (normalized)",
    )
