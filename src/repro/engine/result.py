"""Ordered exploration results (moved here from ``repro.core.explorer``).

The class predates the engine; it lives here now so that every consumer --
the legacy explorers, the engine's sweeps, the CLI -- shares one result
type without import cycles.  ``repro.core.explorer`` re-exports it under
its historical name.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig
from repro.core.metrics import PerformanceEstimate

__all__ = ["ExplorationResult"]


class ExplorationResult:
    """Ordered collection of estimates with selection helpers."""

    def __init__(self, estimates: Sequence[PerformanceEstimate]) -> None:
        self.estimates: List[PerformanceEstimate] = list(estimates)

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(self.estimates)

    def __getitem__(self, i: int) -> PerformanceEstimate:
        return self.estimates[i]

    def min_energy(
        self, cycle_bound: Optional[float] = None
    ) -> Optional[PerformanceEstimate]:
        """Minimum-energy configuration, optionally under a cycle bound."""
        candidates = [
            e
            for e in self.estimates
            if cycle_bound is None or e.cycles <= cycle_bound
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.energy_nj, e.cycles))

    def min_cycles(
        self, energy_bound: Optional[float] = None
    ) -> Optional[PerformanceEstimate]:
        """Minimum-time configuration, optionally under an energy bound."""
        candidates = [
            e
            for e in self.estimates
            if energy_bound is None or e.energy_nj <= energy_bound
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.cycles, e.energy_nj))

    def for_config(self, config: CacheConfig) -> PerformanceEstimate:
        """The estimate recorded for an exact configuration."""
        for estimate in self.estimates:
            if estimate.config == config:
                return estimate
        raise KeyError(f"no estimate for configuration {config}")

    def to_rows(self) -> List[Tuple[str, float, float, float]]:
        """(label, miss rate, cycles, energy) rows for tabular output."""
        return [
            (e.config.label(full=True), e.miss_rate, e.cycles, e.energy_nj)
            for e in self.estimates
        ]
