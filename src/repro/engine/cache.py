"""Process-wide, size-bounded memoisation for the evaluation engine.

Every exploration layer runs the same pipeline -- trace generation, miss
measurement, metric assembly -- and its two expensive stages are pure
functions of small keys:

* an address trace depends only on ``(workload, T, L, B)`` (the
  associativity sweep reuses it);
* a miss vector depends only on ``(trace, line size, sets, ways)`` and the
  measuring backend.

:class:`EvalCache` memoises both behind one bounded LRU store so that
repeated sweeps -- within one explorer, across explorers sharing a kernel,
or across CLI invocations in one process -- never recompute.  The cache is
deliberately dependency-free (numpy and :mod:`repro.obs` only) so
low-level call sites such as :func:`repro.energy.dram.miss_stream_energy`
can use it without import cycles.

Each store also feeds the :mod:`repro.obs` metrics registry
(``evalcache.<store>.hits`` / ``.misses`` / ``.evictions``), and
:meth:`EvalCache.merge_remote` lets
:class:`~repro.engine.parallel.ParallelSweep` fold worker-side counter
deltas back in, so :meth:`EvalCache.stats` stays truthful after a
multi-process run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

from repro.obs.metrics import get_metrics

__all__ = ["CacheStats", "EvalCache", "configure_eval_cache", "get_eval_cache"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`EvalCache` store.

    After a parallel sweep the counts include merged worker activity (see
    :meth:`EvalCache.merge_remote`).
    """

    trace_hits: int
    trace_misses: int
    miss_hits: int
    miss_misses: int
    trace_evictions: int = 0
    miss_evictions: int = 0

    @property
    def trace_hit_rate(self) -> float:
        """Fraction of trace requests served from the cache."""
        total = self.trace_hits + self.trace_misses
        return self.trace_hits / total if total else 0.0

    @property
    def miss_hit_rate(self) -> float:
        """Fraction of miss-measurement requests served from the cache."""
        total = self.miss_hits + self.miss_misses
        return self.miss_hits / total if total else 0.0


class _LruStore:
    """A bounded, thread-safe LRU map with get-or-compute semantics.

    ``metric_prefix`` names the registry counters the store feeds
    (``<prefix>.hits`` etc.); instrument references are resolved once so
    the hot path pays one locked integer add per event.
    """

    def __init__(
        self, max_entries: int, metric_prefix: str = "evalcache"
    ) -> None:
        if max_entries <= 0:
            raise ValueError("cache capacity must be positive")
        self.max_entries = max_entries
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        metrics = get_metrics()
        self._hit_counter = metrics.counter(f"{metric_prefix}.hits")
        self._miss_counter = metrics.counter(f"{metric_prefix}.misses")
        self._eviction_counter = metrics.counter(f"{metric_prefix}.evictions")

    def get_or_compute(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._data:
                self.hits += 1
                self._data.move_to_end(key)
                value = self._data[key]
                self._hit_counter.inc()
                return value
        # Compute outside the lock: builders can be slow (trace generation,
        # reference simulation) and must not serialise unrelated lookups.
        value = builder()
        with self._lock:
            if key in self._data:
                self.hits += 1  # someone else computed it meanwhile
                self._data.move_to_end(key)
                value = self._data[key]
                self._hit_counter.inc()
                return value
            self.misses += 1
            self._data[key] = value
            evicted = 0
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        self._miss_counter.inc()
        if evicted:
            self._eviction_counter.inc(evicted)
        return value

    def get_or_compute_many(
        self,
        keys: "list[Hashable]",
        builder: Callable[["list[Hashable]"], Dict[Hashable, Any]],
    ) -> Dict[Hashable, Any]:
        """Batch get-or-compute: ``builder`` sees only the missing keys.

        The batch analogue of :meth:`get_or_compute`, for callers whose
        builder can amortise work across misses (the one-pass grid
        backend).  Hit/miss/eviction accounting is per key, identical to
        ``len(keys)`` single calls; the builder runs outside the lock and
        races resolve first-writer-wins, with late duplicates counted as
        hits just like the single-key path.
        """
        results: Dict[Hashable, Any] = {}
        missing: "list[Hashable]" = []
        with self._lock:
            for key in keys:
                if key in results or key in missing:
                    continue
                if key in self._data:
                    self.hits += 1
                    self._data.move_to_end(key)
                    results[key] = self._data[key]
                    self._hit_counter.inc()
                else:
                    missing.append(key)
        if not missing:
            return results
        computed = builder(missing)
        hit_late = 0
        fresh = 0
        evicted = 0
        with self._lock:
            for key in missing:
                if key in self._data:
                    self.hits += 1  # someone else computed it meanwhile
                    self._data.move_to_end(key)
                    results[key] = self._data[key]
                    hit_late += 1
                    continue
                self.misses += 1
                self._data[key] = computed[key]
                results[key] = computed[key]
                fresh += 1
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if hit_late:
            self._hit_counter.inc(hit_late)
        if fresh:
            self._miss_counter.inc(fresh)
        if evicted:
            self._eviction_counter.inc(evicted)
        return results

    def counters(self) -> Dict[str, int]:
        """Consistent copy of the raw counters (no remote contributions)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._data),
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class EvalCache:
    """Two-level evaluation cache: traces and miss measurements.

    Parameters
    ----------
    max_traces:
        Bound on retained traces.  Traces are the large objects (one numpy
        row per access), so the bound is small by default.
    max_miss_entries:
        Bound on retained miss vectors / measurements, which are one bool
        per access (or a tiny record for sampled estimates).
    """

    _STORES = ("trace", "miss")

    def __init__(self, max_traces: int = 64, max_miss_entries: int = 1024) -> None:
        self._traces = _LruStore(max_traces, metric_prefix="evalcache.trace")
        self._miss = _LruStore(max_miss_entries, metric_prefix="evalcache.miss")
        # Worker-side counter deltas merged in by ParallelSweep; guarded by
        # its own lock because merges race with snapshot() readers.
        self._remote_lock = threading.Lock()
        self._remote: Dict[str, Dict[str, int]] = {
            store: {"hits": 0, "misses": 0, "evictions": 0}
            for store in self._STORES
        }

    def trace(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The trace bundle for ``key``, computing it on first use."""
        return self._traces.get_or_compute(key, builder)

    def miss(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The miss measurement for ``key``, computing it on first use."""
        return self._miss.get_or_compute(key, builder)

    def miss_many(
        self,
        keys: "list[Hashable]",
        builder: Callable[["list[Hashable]"], Dict[Hashable, Any]],
    ) -> Dict[Hashable, Any]:
        """Batch miss-measurement lookup; ``builder(missing)`` fills holes.

        Lets a grid-capable backend measure all cold keys of a sweep
        group in one pass while warm keys still count as cache hits --
        the counter semantics match ``len(keys)`` :meth:`miss` calls.
        """
        return self._miss.get_or_compute_many(keys, builder)

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Raw per-store counters of **this process only**.

        The baseline/delta primitive :class:`~repro.engine.parallel.ParallelSweep`
        workers use; remote contributions are deliberately excluded so a
        worker forked from an already-merged parent cannot re-export them.
        """
        return {
            "trace": self._traces.counters(),
            "miss": self._miss.counters(),
        }

    def merge_remote(self, delta: Dict[str, Dict[str, int]]) -> None:
        """Fold a worker's counter delta (``counters`` diff) into this cache.

        The delta is validated before anything is accumulated: a worker
        payload that survived the executor's structural checks but still
        carries garbage here (the fault-injection harness's corrupt-payload
        mode, or a genuinely mangled pickle) must not poison the stats.
        ``ValueError`` is raised *before* any mutation, so a rejected merge
        leaves the counters untouched.
        """
        if not isinstance(delta, dict):
            raise ValueError("cache delta must be a dict of per-store dicts")
        for store in self._STORES:
            row = delta.get(store, {})
            if not isinstance(row, dict) or any(
                isinstance(value, bool) or not isinstance(value, int)
                for value in row.values()
            ):
                raise ValueError(
                    f"cache delta for store {store!r} is malformed"
                )
        with self._remote_lock:
            for store in self._STORES:
                accumulated = self._remote[store]
                for field, value in delta.get(store, {}).items():
                    if field in accumulated:
                        accumulated[field] += value

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Consistent, JSON-compatible view including merged worker counts.

        Safe to call concurrently from any thread or from ParallelSweep
        workers: every store is read under its lock and the result is a
        plain dict detached from live state.
        """
        local = self.counters()
        with self._remote_lock:
            remote = {store: dict(self._remote[store]) for store in self._STORES}
        combined: Dict[str, Dict[str, Any]] = {}
        for store in self._STORES:
            row: Dict[str, Any] = dict(local[store])
            for field, value in remote[store].items():
                row[field] += value
            total = row["hits"] + row["misses"]
            row["hit_rate"] = row["hits"] / total if total else 0.0
            combined[store] = row
        return combined

    def stats(self) -> CacheStats:
        """Current counters (including merged worker activity)."""
        view = self.snapshot()
        return CacheStats(
            trace_hits=view["trace"]["hits"],
            trace_misses=view["trace"]["misses"],
            miss_hits=view["miss"]["hits"],
            miss_misses=view["miss"]["misses"],
            trace_evictions=view["trace"]["evictions"],
            miss_evictions=view["miss"]["evictions"],
        )

    def clear(self) -> None:
        """Drop all entries and zero the counters (local and remote)."""
        self._traces.clear()
        self._miss.clear()
        self._traces.hits = self._traces.misses = self._traces.evictions = 0
        self._miss.hits = self._miss.misses = self._miss.evictions = 0
        with self._remote_lock:
            for store in self._STORES:
                for field in self._remote[store]:
                    self._remote[store][field] = 0

    @property
    def trace_entries(self) -> int:
        """Number of traces currently retained."""
        return len(self._traces)

    @property
    def miss_entries(self) -> int:
        """Number of miss measurements currently retained."""
        return len(self._miss)


_global_cache = EvalCache()
_global_lock = threading.Lock()


def get_eval_cache() -> EvalCache:
    """The process-wide cache shared by every engine consumer."""
    return _global_cache


def configure_eval_cache(
    max_traces: Optional[int] = None, max_miss_entries: Optional[int] = None
) -> EvalCache:
    """Replace the process-wide cache with a freshly sized one."""
    global _global_cache
    with _global_lock:
        _global_cache = EvalCache(
            max_traces=max_traces if max_traces is not None else 64,
            max_miss_entries=(
                max_miss_entries if max_miss_entries is not None else 1024
            ),
        )
        return _global_cache
