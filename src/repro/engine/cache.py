"""Process-wide, size-bounded memoisation for the evaluation engine.

Every exploration layer runs the same pipeline -- trace generation, miss
measurement, metric assembly -- and its two expensive stages are pure
functions of small keys:

* an address trace depends only on ``(workload, T, L, B)`` (the
  associativity sweep reuses it);
* a miss vector depends only on ``(trace, line size, sets, ways)`` and the
  measuring backend.

:class:`EvalCache` memoises both behind one bounded LRU store so that
repeated sweeps -- within one explorer, across explorers sharing a kernel,
or across CLI invocations in one process -- never recompute.  The cache is
deliberately dependency-free (numpy only) so low-level call sites such as
:func:`repro.energy.dram.miss_stream_energy` can use it without import
cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

__all__ = ["CacheStats", "EvalCache", "configure_eval_cache", "get_eval_cache"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`EvalCache` store."""

    trace_hits: int
    trace_misses: int
    miss_hits: int
    miss_misses: int

    @property
    def trace_hit_rate(self) -> float:
        """Fraction of trace requests served from the cache."""
        total = self.trace_hits + self.trace_misses
        return self.trace_hits / total if total else 0.0

    @property
    def miss_hit_rate(self) -> float:
        """Fraction of miss-measurement requests served from the cache."""
        total = self.miss_hits + self.miss_misses
        return self.miss_hits / total if total else 0.0


class _LruStore:
    """A bounded, thread-safe LRU map with get-or-compute semantics."""

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError("cache capacity must be positive")
        self.max_entries = max_entries
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._data:
                self.hits += 1
                self._data.move_to_end(key)
                return self._data[key]
        # Compute outside the lock: builders can be slow (trace generation,
        # reference simulation) and must not serialise unrelated lookups.
        value = builder()
        with self._lock:
            if key in self._data:
                self.hits += 1  # someone else computed it meanwhile
                self._data.move_to_end(key)
                return self._data[key]
            self.misses += 1
            self._data[key] = value
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class EvalCache:
    """Two-level evaluation cache: traces and miss measurements.

    Parameters
    ----------
    max_traces:
        Bound on retained traces.  Traces are the large objects (one numpy
        row per access), so the bound is small by default.
    max_miss_entries:
        Bound on retained miss vectors / measurements, which are one bool
        per access (or a tiny record for sampled estimates).
    """

    def __init__(self, max_traces: int = 64, max_miss_entries: int = 1024) -> None:
        self._traces = _LruStore(max_traces)
        self._miss = _LruStore(max_miss_entries)

    def trace(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The trace bundle for ``key``, computing it on first use."""
        return self._traces.get_or_compute(key, builder)

    def miss(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The miss measurement for ``key``, computing it on first use."""
        return self._miss.get_or_compute(key, builder)

    def stats(self) -> CacheStats:
        """Current hit/miss counters."""
        return CacheStats(
            trace_hits=self._traces.hits,
            trace_misses=self._traces.misses,
            miss_hits=self._miss.hits,
            miss_misses=self._miss.misses,
        )

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._traces.clear()
        self._miss.clear()
        self._traces.hits = self._traces.misses = 0
        self._miss.hits = self._miss.misses = 0

    @property
    def trace_entries(self) -> int:
        """Number of traces currently retained."""
        return len(self._traces)

    @property
    def miss_entries(self) -> int:
        """Number of miss measurements currently retained."""
        return len(self._miss)


_global_cache = EvalCache()
_global_lock = threading.Lock()


def get_eval_cache() -> EvalCache:
    """The process-wide cache shared by every engine consumer."""
    return _global_cache


def configure_eval_cache(
    max_traces: Optional[int] = None, max_miss_entries: Optional[int] = None
) -> EvalCache:
    """Replace the process-wide cache with a freshly sized one."""
    global _global_cache
    with _global_lock:
        _global_cache = EvalCache(
            max_traces=max_traces if max_traces is not None else 64,
            max_miss_entries=(
                max_miss_entries if max_miss_entries is not None else 1024
            ),
        )
        return _global_cache
