"""Pluggable miss-measurement backends.

Every explorer needs the same fact about a (trace, geometry) pair -- how
often the cache misses -- but there are four ways to obtain it, trading
accuracy for speed:

``fastsim``
    The vectorized LRU fast path (:mod:`repro.cache.fastsim`); exact, the
    default.
``reference``
    The object-oriented Dinero-style simulator
    (:mod:`repro.cache.simulator`); exact, slow, the ground truth the fast
    path is validated against.
``sampled``
    Set sampling (:mod:`repro.cache.sampling`): simulate every ``k``-th set
    and scale, the classic trick for industrial-size traces.
``analytic``
    The paper's own closed-form model (:mod:`repro.core.analytic`);
    simulation-free, only defined for loop-nest kernels.

Backends are selected by name through :func:`get_backend`, which resolves
through the :mod:`repro.registry` plugin registry -- the built-ins above
are registered there alongside any ``repro.plugins`` entry points, so
every explorer and the CLI can swap in third-party backends without
touching the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Optional, Union

import numpy as np

from repro.cache.fastsim import fast_miss_vector
from repro.cache.sampling import sampled_miss_rate
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.trace import MemoryTrace
from repro.engine.cache import EvalCache, get_eval_cache
from repro.obs.metrics import get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import CacheConfig

__all__ = [
    "AnalyticBackend",
    "Backend",
    "FastSimBackend",
    "MissMeasurement",
    "ReferenceBackend",
    "SampledBackend",
    "available_backends",
    "cached_miss_vector",
    "get_backend",
]


@dataclass(frozen=True)
class MissMeasurement:
    """Miss behaviour of one (trace, geometry) pair.

    ``exact`` backends also report the integer miss count; estimating
    backends only report rates.
    """

    accesses: int
    reads: int
    miss_rate: float
    read_miss_rate: float
    misses: Optional[int] = None
    exact: bool = True


def _count_simulation(backend_name: str, trace: MemoryTrace) -> None:
    """Record one actual simulation (not a cache hit) in the registry.

    Called from the measuring methods themselves, so counts reflect work
    performed: memoised re-requests never reach these methods.
    """
    metrics = get_metrics()
    metrics.counter(f"backend.{backend_name}.simulations").inc()
    metrics.counter(f"backend.{backend_name}.addresses_simulated").inc(
        len(trace)
    )


def _measurement_from_vector(
    trace: MemoryTrace, miss: np.ndarray
) -> MissMeasurement:
    accesses = len(trace)
    misses = int(miss.sum())
    read_mask = ~trace.is_write
    reads = int(read_mask.sum())
    read_misses = int((miss & read_mask).sum())
    return MissMeasurement(
        accesses=accesses,
        reads=reads,
        miss_rate=misses / accesses if accesses else 0.0,
        read_miss_rate=read_misses / reads if reads else 0.0,
        misses=misses,
        exact=True,
    )


class Backend:
    """Protocol: measure the miss behaviour of a trace on a geometry.

    ``provides_vector`` backends implement :meth:`miss_vector` (a bool per
    access) from which :meth:`measure` is derived; estimating backends
    implement :meth:`measure` directly.  ``params`` must make the
    measurement's cache key unique (e.g. the sampling stride).
    """

    name: str = "?"
    provides_vector: bool = False
    requires_kernel: bool = False

    @property
    def params(self) -> Hashable:
        """Hashable configuration of the backend (part of cache keys)."""
        return ()

    def miss_vector(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> np.ndarray:
        raise NotImplementedError(f"backend {self.name!r} has no miss vector")

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        return _measurement_from_vector(trace, self.miss_vector(trace, config))


class FastSimBackend(Backend):
    """Exact vectorized LRU measurement (the default)."""

    name = "fastsim"
    provides_vector = True

    def miss_vector(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> np.ndarray:
        _count_simulation(self.name, trace)
        line_ids = trace.line_ids(config.line_size)
        return fast_miss_vector(line_ids, config.num_sets, config.ways)


class ReferenceBackend(Backend):
    """Exact measurement through the object-oriented reference simulator.

    Slow (one Python-level call per access) but the ground truth; the
    cross-backend equivalence tests assert it matches ``fastsim`` bit for
    bit under LRU.
    """

    name = "reference"
    provides_vector = True

    def miss_vector(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> np.ndarray:
        _count_simulation(self.name, trace)
        geometry = CacheGeometry(config.size, config.line_size, config.ways)
        simulator = CacheSimulator(geometry, policy="lru")
        access = simulator.access
        miss = np.empty(len(trace), dtype=bool)
        for i, (addr, wr) in enumerate(
            zip(trace.addresses.tolist(), trace.is_write.tolist())
        ):
            miss[i] = not access(addr, wr)
        return miss


class SampledBackend(Backend):
    """Set-sampled estimate: simulate every ``sample_every``-th set.

    Exact when a geometry has fewer sets than the stride would skip (the
    estimate degenerates to the full computation for ``num_sets == 1``).
    The read-miss rate is estimated on the same sampled subset.
    """

    name = "sampled"
    provides_vector = False

    def __init__(self, sample_every: int = 4, offset: int = 0) -> None:
        if sample_every < 1:
            raise ValueError("sampling stride must be at least 1")
        self.sample_every = sample_every
        self.offset = offset % sample_every

    @property
    def params(self) -> Hashable:
        return (self.sample_every, self.offset)

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        _count_simulation(self.name, trace)
        accesses = len(trace)
        read_mask = ~trace.is_write
        reads = int(read_mask.sum())
        if accesses == 0:
            return MissMeasurement(0, 0, 0.0, 0.0, misses=0, exact=True)
        line_ids = trace.line_ids(config.line_size)
        num_sets = config.num_sets
        stride = min(self.sample_every, num_sets)
        estimate = sampled_miss_rate(
            line_ids,
            num_sets,
            config.ways,
            sample_every=stride,
            offset=self.offset % stride,
        )
        # Read-miss rate from the same sampled sets.
        mask = (line_ids % num_sets) % stride == self.offset % stride
        sampled_reads = mask & read_mask
        if int(sampled_reads.sum()):
            miss = fast_miss_vector(line_ids[mask], num_sets, config.ways)
            read_sub = read_mask[mask]
            read_miss_rate = float(miss[read_sub].mean())
        else:
            read_miss_rate = estimate.miss_rate
        exact = stride == 1
        return MissMeasurement(
            accesses=accesses,
            reads=reads,
            miss_rate=estimate.miss_rate,
            read_miss_rate=read_miss_rate,
            misses=(
                int(round(estimate.miss_rate * accesses)) if exact else None
            ),
            exact=exact,
        )


class AnalyticBackend(Backend):
    """The paper's closed-form model; needs a loop nest, not a trace.

    Handled specially by the :class:`~repro.engine.evaluator.Evaluator`:
    workloads that carry a kernel are routed through
    :class:`~repro.core.analytic.AnalyticExplorer`, anything else is
    rejected.
    """

    name = "analytic"
    provides_vector = False
    requires_kernel = True

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        raise ValueError(
            "the analytic backend evaluates loop nests, not traces; "
            "use a kernel workload"
        )


def available_backends() -> "tuple[str, ...]":
    """Names accepted by :func:`get_backend` (and the CLI ``--backend``).

    Sourced from the plugin registry: the four built-ins plus every
    backend an installed ``repro.plugins`` entry point registered.
    """
    from repro.registry import get_registry

    return get_registry().names("backend")


def get_backend(backend: Union[str, Backend, None], **kwargs) -> Backend:
    """Resolve a backend name through the registry (instances pass through)."""
    if backend is None:
        return FastSimBackend()
    if isinstance(backend, Backend):
        return backend
    from repro.registry import UnknownPluginError, get_registry

    try:
        return get_registry().create("backend", backend, **kwargs)
    except UnknownPluginError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        ) from None


def cached_miss_vector(
    trace: MemoryTrace,
    line_size: int,
    num_sets: int,
    ways: int,
    trace_key: Optional[Hashable] = None,
    cache: Optional[EvalCache] = None,
) -> np.ndarray:
    """Exact LRU miss vector for a raw trace, memoised process-wide.

    The low-level entry point for call sites outside the explorer pipeline
    (e.g. :func:`repro.energy.dram.miss_stream_energy`).  ``trace_key``
    overrides the content fingerprint when the caller already has a stable
    identity for the trace.
    """
    from repro.engine.workload import trace_fingerprint

    store = cache if cache is not None else get_eval_cache()
    key = (
        "vec",
        trace_key if trace_key is not None else trace_fingerprint(trace),
        line_size,
        num_sets,
        ways,
        FastSimBackend.name,
    )
    def _build() -> np.ndarray:
        _count_simulation(FastSimBackend.name, trace)
        return fast_miss_vector(trace.line_ids(line_size), num_sets, ways)

    return store.miss(key, _build)
