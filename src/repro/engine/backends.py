"""Pluggable miss-measurement backends.

Every explorer needs the same fact about a (trace, geometry) pair -- how
often the cache misses -- but there are four ways to obtain it, trading
accuracy for speed:

``fastsim``
    The vectorized LRU fast path (:mod:`repro.cache.fastsim`); exact, the
    default.
``reference``
    The object-oriented Dinero-style simulator
    (:mod:`repro.cache.simulator`); exact, slow, the ground truth the fast
    path is validated against.
``sampled``
    Set sampling (:mod:`repro.cache.sampling`): simulate every ``k``-th set
    and scale, the classic trick for industrial-size traces.
``analytic``
    The paper's own closed-form model (:mod:`repro.core.analytic`);
    simulation-free, only defined for loop-nest kernels.
``onepass``
    The Mattson-style stack filter (:mod:`repro.cache.stackdist`): one
    vectorized trace pass per distinct set count prices *every*
    associativity at once, so a whole (sets, ways) grid costs a handful
    of passes instead of one simulation per point.  Exact (bit-identical
    to ``fastsim``, property-tested) and the fast cold path for sweeps.
``auto``
    An alias for ``onepass``: what ``explore`` and ``serve`` use unless
    a backend is named explicitly.  It resolves at construction time, so
    fingerprints, checkpoints and store rows always record ``onepass``.

Backends are selected by name through :func:`get_backend`, which resolves
through the :mod:`repro.registry` plugin registry -- the built-ins above
are registered there alongside any ``repro.plugins`` entry points, so
every explorer and the CLI can swap in third-party backends without
touching the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Sequence, Union

import numpy as np

from repro.cache.fastsim import fast_miss_vector
from repro.cache.sampling import sampled_miss_rate
from repro.cache.simulator import CacheGeometry, CacheSimulator
from repro.cache.stackdist import grid_miss_counts
from repro.cache.trace import MemoryTrace
from repro.engine.cache import EvalCache, get_eval_cache
from repro.obs.metrics import get_metrics
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import CacheConfig

__all__ = [
    "AnalyticBackend",
    "Backend",
    "FastSimBackend",
    "MissMeasurement",
    "OnePassBackend",
    "ReferenceBackend",
    "SampledBackend",
    "available_backends",
    "cached_miss_vector",
    "get_backend",
]


@dataclass(frozen=True)
class MissMeasurement:
    """Miss behaviour of one (trace, geometry) pair.

    ``exact`` backends also report the integer miss count; estimating
    backends only report rates.
    """

    accesses: int
    reads: int
    miss_rate: float
    read_miss_rate: float
    misses: Optional[int] = None
    exact: bool = True


def _count_simulation(backend_name: str, trace: MemoryTrace) -> None:
    """Record one actual simulation (not a cache hit) in the registry.

    Called from the measuring methods themselves, so counts reflect work
    performed: memoised re-requests never reach these methods.
    """
    metrics = get_metrics()
    metrics.counter(f"backend.{backend_name}.simulations").inc()
    metrics.counter(f"backend.{backend_name}.addresses_simulated").inc(
        len(trace)
    )


def _measurement_from_vector(
    trace: MemoryTrace, miss: np.ndarray
) -> MissMeasurement:
    accesses = len(trace)
    misses = int(miss.sum())
    read_mask = ~trace.is_write
    reads = int(read_mask.sum())
    read_misses = int((miss & read_mask).sum())
    return MissMeasurement(
        accesses=accesses,
        reads=reads,
        miss_rate=misses / accesses if accesses else 0.0,
        read_miss_rate=read_misses / reads if reads else 0.0,
        misses=misses,
        exact=True,
    )


class Backend:
    """Protocol: measure the miss behaviour of a trace on a geometry.

    ``provides_vector`` backends implement :meth:`miss_vector` (a bool per
    access) from which :meth:`measure` is derived; estimating backends
    implement :meth:`measure` directly.  ``provides_grid`` backends also
    implement :meth:`measure_grid`, pricing a whole batch of same-trace,
    same-line-size geometries in one go -- the evaluator and the parallel
    executor group cold configurations and hand each group over at once.
    ``params`` must make the measurement's cache key unique (e.g. the
    sampling stride).
    """

    name: str = "?"
    provides_vector: bool = False
    provides_grid: bool = False
    requires_kernel: bool = False

    @property
    def params(self) -> Hashable:
        """Hashable configuration of the backend (part of cache keys)."""
        return ()

    def miss_vector(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> np.ndarray:
        raise NotImplementedError(f"backend {self.name!r} has no miss vector")

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        return _measurement_from_vector(trace, self.miss_vector(trace, config))

    def measure_grid(
        self, trace: MemoryTrace, configs: Sequence["CacheConfig"]
    ) -> "Dict[CacheConfig, MissMeasurement]":
        """Measure many same-trace, same-line-size geometries at once."""
        raise NotImplementedError(
            f"backend {self.name!r} has no batch grid measurement"
        )


class FastSimBackend(Backend):
    """Exact vectorized LRU measurement (the default)."""

    name = "fastsim"
    provides_vector = True

    def miss_vector(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> np.ndarray:
        _count_simulation(self.name, trace)
        line_ids = trace.line_ids(config.line_size)
        return fast_miss_vector(line_ids, config.num_sets, config.ways)


class ReferenceBackend(Backend):
    """Exact measurement through the object-oriented reference simulator.

    Slow (one Python-level call per access) but the ground truth; the
    cross-backend equivalence tests assert it matches ``fastsim`` bit for
    bit under LRU.
    """

    name = "reference"
    provides_vector = True

    def miss_vector(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> np.ndarray:
        _count_simulation(self.name, trace)
        geometry = CacheGeometry(config.size, config.line_size, config.ways)
        simulator = CacheSimulator(geometry, policy="lru")
        access = simulator.access
        miss = np.empty(len(trace), dtype=bool)
        for i, (addr, wr) in enumerate(
            zip(trace.addresses.tolist(), trace.is_write.tolist())
        ):
            miss[i] = not access(addr, wr)
        return miss


class SampledBackend(Backend):
    """Set-sampled estimate: simulate every ``sample_every``-th set.

    Exact when a geometry has fewer sets than the stride would skip (the
    estimate degenerates to the full computation for ``num_sets == 1``).
    The read-miss rate is estimated on the same sampled subset.
    """

    name = "sampled"
    provides_vector = False

    def __init__(self, sample_every: int = 4, offset: int = 0) -> None:
        if sample_every < 1:
            raise ValueError("sampling stride must be at least 1")
        self.sample_every = sample_every
        self.offset = offset % sample_every

    @property
    def params(self) -> Hashable:
        return (self.sample_every, self.offset)

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        _count_simulation(self.name, trace)
        accesses = len(trace)
        read_mask = ~trace.is_write
        reads = int(read_mask.sum())
        if accesses == 0:
            return MissMeasurement(0, 0, 0.0, 0.0, misses=0, exact=True)
        line_ids = trace.line_ids(config.line_size)
        num_sets = config.num_sets
        stride = min(self.sample_every, num_sets)
        estimate = sampled_miss_rate(
            line_ids,
            num_sets,
            config.ways,
            sample_every=stride,
            offset=self.offset % stride,
        )
        # Read-miss rate from the same sampled sets.
        mask = (line_ids % num_sets) % stride == self.offset % stride
        sampled_reads = mask & read_mask
        if int(sampled_reads.sum()):
            miss = fast_miss_vector(line_ids[mask], num_sets, config.ways)
            read_sub = read_mask[mask]
            read_miss_rate = float(miss[read_sub].mean())
        else:
            read_miss_rate = estimate.miss_rate
        exact = stride == 1
        return MissMeasurement(
            accesses=accesses,
            reads=reads,
            miss_rate=estimate.miss_rate,
            read_miss_rate=read_miss_rate,
            misses=(
                int(round(estimate.miss_rate * accesses)) if exact else None
            ),
            exact=exact,
        )


class AnalyticBackend(Backend):
    """The paper's closed-form model; needs a loop nest, not a trace.

    Handled specially by the :class:`~repro.engine.evaluator.Evaluator`:
    workloads that carry a kernel are routed through
    :class:`~repro.core.analytic.AnalyticExplorer`, anything else is
    rejected.
    """

    name = "analytic"
    provides_vector = False
    requires_kernel = True

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        raise ValueError(
            "the analytic backend evaluates loop nests, not traces; "
            "use a kernel workload"
        )


class OnePassBackend(Backend):
    """All configurations of a line size from one stack-filter pass.

    Built on :func:`repro.cache.stackdist.grid_miss_counts`: for each
    distinct set count in the batch, one vectorized pass computes the
    exact per-depth hit histogram, from which the miss count of every
    requested associativity is read in O(1).  ``measure`` is the
    degenerate one-point batch, so single-config evaluation stays exact
    too; the win comes from :meth:`measure_grid`, which the evaluator
    feeds whole cold (trace, line size) groups.

    Emits ``onepass.passes`` / ``onepass.configs_measured`` /
    ``onepass.set_counts`` counters and one ``onepass_pass`` span per
    batch (see docs/OBSERVABILITY.md).
    """

    name = "onepass"
    provides_vector = False
    provides_grid = True

    def measure(
        self, trace: MemoryTrace, config: "CacheConfig"
    ) -> MissMeasurement:
        return self.measure_grid(trace, [config])[config]

    def measure_grid(
        self, trace: MemoryTrace, configs: Sequence["CacheConfig"]
    ) -> "Dict[CacheConfig, MissMeasurement]":
        if not configs:
            return {}
        line_size = configs[0].line_size
        for config in configs:
            if config.line_size != line_size:
                raise ValueError(
                    "a one-pass batch must share one line size; got "
                    f"{line_size} and {config.line_size}"
                )
        _count_simulation(self.name, trace)
        points = {(c.num_sets, c.ways) for c in configs}
        set_counts = {num_sets for num_sets, _ in points}
        with span(
            "onepass_pass",
            line_size=line_size,
            configs=len(configs),
            set_counts=len(set_counts),
        ):
            line_ids = trace.line_ids(line_size)
            counts = grid_miss_counts(line_ids, trace.is_write, points)
        metrics = get_metrics()
        metrics.counter("onepass.passes").inc()
        metrics.counter("onepass.configs_measured").inc(len(configs))
        metrics.counter("onepass.set_counts").inc(len(set_counts))
        out: "Dict[CacheConfig, MissMeasurement]" = {}
        for config in configs:
            grid = counts[(config.num_sets, config.ways)]
            out[config] = MissMeasurement(
                accesses=grid.accesses,
                reads=grid.reads,
                miss_rate=(
                    grid.misses / grid.accesses if grid.accesses else 0.0
                ),
                read_miss_rate=(
                    grid.read_misses / grid.reads if grid.reads else 0.0
                ),
                misses=grid.misses,
                exact=True,
            )
        return out


def available_backends() -> "tuple[str, ...]":
    """Names accepted by :func:`get_backend` (and the CLI ``--backend``).

    Sourced from the plugin registry: the built-ins above plus every
    backend an installed ``repro.plugins`` entry point registered.
    """
    from repro.registry import get_registry

    return get_registry().names("backend")


def get_backend(backend: Union[str, Backend, None], **kwargs) -> Backend:
    """Resolve a backend name through the registry (instances pass through)."""
    if backend is None:
        return FastSimBackend()
    if isinstance(backend, Backend):
        return backend
    from repro.registry import UnknownPluginError, get_registry

    try:
        return get_registry().create("backend", backend, **kwargs)
    except UnknownPluginError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        ) from None


def cached_miss_vector(
    trace: MemoryTrace,
    line_size: int,
    num_sets: int,
    ways: int,
    trace_key: Optional[Hashable] = None,
    cache: Optional[EvalCache] = None,
) -> np.ndarray:
    """Exact LRU miss vector for a raw trace, memoised process-wide.

    The low-level entry point for call sites outside the explorer pipeline
    (e.g. :func:`repro.energy.dram.miss_stream_energy`).  ``trace_key``
    overrides the content fingerprint when the caller already has a stable
    identity for the trace.
    """
    from repro.engine.workload import trace_fingerprint

    store = cache if cache is not None else get_eval_cache()
    key = (
        "vec",
        trace_key if trace_key is not None else trace_fingerprint(trace),
        line_size,
        num_sets,
        ways,
        FastSimBackend.name,
    )
    def _build() -> np.ndarray:
        _count_simulation(FastSimBackend.name, trace)
        return fast_miss_vector(trace.line_ids(line_size), num_sets, ways)

    return store.miss(key, _build)
